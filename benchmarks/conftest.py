"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables (or an ablation from
DESIGN.md) and prints the rows; run with ``pytest benchmarks/
--benchmark-only -s`` to see them.  Benches use the ``quick`` run-length
preset so the whole suite stays in the minutes range; use the
``repro-experiments`` CLI with ``--scale paper`` for publication-quality
numbers.
"""

import pytest

from repro.experiments.runconfig import QUICK


@pytest.fixture(scope="session")
def quick_settings():
    """The quick run-length preset shared by all simulation benches."""
    return QUICK
