"""Measure the disabled-telemetry overhead of the event-bus instrumentation.

The telemetry subsystem promises to be *zero-cost when disabled*: with no
subscribers, every instrumented emission site costs one ``bus.active``
attribute test and never constructs an event.  This script quantifies
that promise by timing a fixed simulation workload:

* **current tree** with telemetry disabled (the default — nothing
  subscribes), versus
* a **baseline checkout** (``--baseline <path-to-src>``, e.g. a git
  worktree of the pre-telemetry commit) running the identical workload
  through the same public API.

Each measurement is best-of-N in a fresh subprocess (imports excluded —
the child times only the simulation), so results are robust to warm
caches and CI jitter.  Exit status is 1 when the overhead exceeds the
threshold (default 3%), making the check scriptable; CI runs it
non-blocking and posts the number in the job summary.

Without ``--baseline`` the script still reports the absolute timing of
the current tree plus the *enabled*-tracing cost.  The enabled cost is
itself gated: a tracing session (query-lifecycle spans + allocation
decision audit) must keep the simulation loop within
``--threshold-enabled`` percent (default 10%) of the disabled run, so
new instrumentation can't quietly make observability expensive.  The
collectors defer span pairing and regret scoring until results are
read, so the gate measures exactly what tracing adds to the run itself;
the post-run assembly/export cost is proportional to the trace size,
like any other export.

Usage::

    python benchmarks/telemetry_overhead.py                  # enabled gate only
    git worktree add /tmp/base HEAD^
    python benchmarks/telemetry_overhead.py --baseline /tmp/base/src
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
from typing import List, Optional, Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: The timed workload: the paper's default system, shortened horizons.
#: Uses only the public API that exists both before and after the
#: telemetry subsystem (DistributedDatabase.run), so the identical
#: snippet runs against the baseline checkout.
WORKLOAD = """
import time
from repro.model.config import paper_defaults
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy

config = paper_defaults()
started = time.perf_counter()
system = DistributedDatabase(config, make_policy("LERT"), seed=11)
system.run(warmup={warmup}, duration={duration})
print(time.perf_counter() - started)
"""

#: Same workload with tracing attached (current tree only): the
#: query-lifecycle span collector plus the allocation decision audit.
#: ``events=False`` keeps the catch-all log out of the measurement —
#: the gate isolates what *tracing* adds to the simulation loop.
WORKLOAD_ENABLED = """
import time
from repro.model.config import paper_defaults
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.telemetry.session import TelemetryConfig, TelemetrySession

config = paper_defaults()
started = time.perf_counter()
system = DistributedDatabase(config, make_policy("LERT"), seed=11)
session = TelemetrySession(
    system, TelemetryConfig(events=False, spans=True, decisions=True)
)
system.run(warmup={warmup}, duration={duration})
session.close()
print(time.perf_counter() - started)
"""


def time_once(src_dir: pathlib.Path, snippet: str) -> float:
    """One subprocess run; returns the child-measured simulation seconds."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_dir)  # shadow any installed repro package
    completed = subprocess.run(
        [sys.executable, "-c", snippet],
        env=env,
        capture_output=True,
        text=True,
        check=False,
        cwd=str(REPO_ROOT),
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"workload failed under {src_dir}:\n{completed.stderr.strip()}"
        )
    return float(completed.stdout.strip().splitlines()[-1])


def best_of(src_dir: pathlib.Path, snippet: str, repeats: int) -> float:
    """Minimum of *repeats* runs — the standard noise-robust estimator."""
    return min(time_once(src_dir, snippet) for _ in range(repeats))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        metavar="SRC_DIR",
        default=None,
        help="src/ directory of a baseline checkout to compare against",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="runs per measurement (default 5)"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        help="maximum tolerated disabled-telemetry overhead in %% (default 3)",
    )
    parser.add_argument(
        "--threshold-enabled",
        type=float,
        default=10.0,
        help=(
            "maximum tolerated simulation-loop overhead in %% with spans "
            "+ decision audit enabled (default 10)"
        ),
    )
    parser.add_argument(
        "--warmup", type=float, default=500.0, help="simulated warmup time"
    )
    parser.add_argument(
        "--duration", type=float, default=4000.0, help="simulated measured time"
    )
    parser.add_argument(
        "--summary",
        metavar="FILE",
        default=None,
        help="append a Markdown summary line (e.g. $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    snippet = WORKLOAD.format(warmup=args.warmup, duration=args.duration)
    current_src = REPO_ROOT / "src"
    lines: List[str] = []

    current = best_of(current_src, snippet, args.repeats)
    lines.append(f"current tree (telemetry disabled): {current:.3f}s")

    enabled_snippet = WORKLOAD_ENABLED.format(
        warmup=args.warmup, duration=args.duration
    )
    enabled = best_of(current_src, enabled_snippet, args.repeats)
    enabled_pct = 100.0 * (enabled - current) / current
    enabled_verdict = "OK" if enabled_pct <= args.threshold_enabled else "FAIL"
    lines.append(
        f"current tree (spans + decision audit): {enabled:.3f}s "
        f"({enabled_pct:+.1f}%; threshold {args.threshold_enabled:.1f}%) "
        f"[{enabled_verdict}]"
    )

    failed = enabled_verdict == "FAIL"
    if args.baseline is not None:
        baseline_src = pathlib.Path(args.baseline)
        baseline = best_of(baseline_src, snippet, args.repeats)
        overhead_pct = 100.0 * (current - baseline) / baseline
        verdict = "OK" if overhead_pct <= args.threshold else "FAIL"
        failed = failed or verdict == "FAIL"
        lines.append(f"baseline checkout:                      {baseline:.3f}s")
        lines.append(
            f"disabled-telemetry overhead:            {overhead_pct:+.2f}% "
            f"(threshold {args.threshold:.1f}%) [{verdict}]"
        )
        summary_line = (
            f"**Disabled-telemetry overhead:** {overhead_pct:+.2f}% "
            f"(current {current:.3f}s vs baseline {baseline:.3f}s, "
            f"best of {args.repeats}; threshold {args.threshold:.1f}%) — {verdict}. "
            f"**Tracing (spans+audit) overhead:** {enabled_pct:+.1f}% "
            f"(threshold {args.threshold_enabled:.1f}%) — {enabled_verdict}"
        )
    else:
        lines.append("no --baseline given: skipping the disabled-overhead gate")
        summary_line = (
            f"**Telemetry timings:** disabled {current:.3f}s, "
            f"spans+audit {enabled:.3f}s ({enabled_pct:+.1f}%, "
            f"threshold {args.threshold_enabled:.1f}%) — {enabled_verdict}; "
            f"no baseline compared"
        )

    print("\n".join(lines))
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(summary_line + "\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
