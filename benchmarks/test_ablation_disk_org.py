"""Ablation A1 — disk organization: per-disk queues vs one shared queue.

DESIGN.md models the disks as independent per-disk FCFS queues with random
routing (matching Figure 2); the alternative is a single queue feeding both
disks (M/G/c style).  The shared queue can never be worse (no random
collisions while a disk idles), so the bench quantifies how much the
paper's organization costs and confirms policy rankings are insensitive
to it.
"""

import dataclasses

from repro.experiments.common import simulate
from repro.model.config import DISK_PER_DISK, DISK_SHARED, paper_defaults


def _run(settings):
    results = {}
    for organization in (DISK_PER_DISK, DISK_SHARED):
        config = dataclasses.replace(
            paper_defaults(), disk_organization=organization
        )
        results[organization] = {
            policy: simulate(config, policy, settings)
            for policy in ("LOCAL", "LERT")
        }
    return results


def test_ablation_disk_organization(benchmark, quick_settings):
    results = benchmark.pedantic(
        _run, args=(quick_settings,), rounds=1, iterations=1
    )
    print()
    print("disk organization ablation (W = mean waiting time):")
    for organization, by_policy in results.items():
        for policy, r in by_policy.items():
            print(f"  {organization:9s} {policy:6s} W={r.mean_waiting_time:6.2f}")

    for policy in ("LOCAL", "LERT"):
        per_disk = results[DISK_PER_DISK][policy].mean_waiting_time
        shared = results[DISK_SHARED][policy].mean_waiting_time
        assert shared <= per_disk * 1.05, (
            f"{policy}: shared queue should not be materially worse "
            f"({shared:.2f} vs {per_disk:.2f})"
        )

    # The policy ranking survives the organization change.
    for organization in (DISK_PER_DISK, DISK_SHARED):
        assert (
            results[organization]["LERT"].mean_waiting_time
            < results[organization]["LOCAL"].mean_waiting_time
        )
    benchmark.extra_info["shared_vs_per_disk_local"] = round(
        results[DISK_SHARED]["LOCAL"].mean_waiting_time
        / results[DISK_PER_DISK]["LOCAL"].mean_waiting_time,
        3,
    )
