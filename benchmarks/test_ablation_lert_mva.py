"""Ablation A3 — LERT's crude cost model vs a real MVA estimate.

Figure 6's response-time estimate makes three rough approximations (frozen
populations, PS disks, same-boundness competition only).  LERT-MVA keeps
LERT's decision rule but estimates response times with approximate Mean
Value Analysis of each site's two-station network.  If Figure 6 left much
on the table, LERT-MVA should win clearly; the paper's implicit claim —
that the simple formula captures what matters — predicts a near-tie.
"""

from repro.experiments.common import simulate
from repro.model.config import paper_defaults


def _run(settings):
    config = paper_defaults()
    return {
        policy: simulate(config, policy, settings)
        for policy in ("BNQ", "LERT", "LERT-MVA")
    }


def test_ablation_lert_mva(benchmark, quick_settings):
    results = benchmark.pedantic(_run, args=(quick_settings,), rounds=1, iterations=1)
    print()
    print("LERT cost-model ablation:")
    for policy, r in results.items():
        print(f"  {policy:9s} W={r.mean_waiting_time:6.2f}")

    bnq = results["BNQ"].mean_waiting_time
    lert = results["LERT"].mean_waiting_time
    lert_mva = results["LERT-MVA"].mean_waiting_time

    # Both estimate-based variants beat count balancing.
    assert lert < bnq
    assert lert_mva < bnq
    # And they land close together: Figure 6's approximations are adequate.
    assert abs(lert - lert_mva) / lert < 0.25, (
        f"LERT {lert:.2f} vs LERT-MVA {lert_mva:.2f} diverge more than expected"
    )
    benchmark.extra_info["w_lert"] = round(lert, 2)
    benchmark.extra_info["w_lert_mva"] = round(lert_mva, 2)
