"""Ablation A2 — load-information staleness.

The paper assumes free, always-current load information (§2) and defers the
exchange-policy design (§4.4).  This ablation quantifies what that
assumption is worth: LERT's waiting time as the load snapshot refresh
interval grows.  Expected shape: graceful degradation at first, then a
collapse past the system's natural time constant as every site herds onto
the same stale "least-loaded" victim (eventually worse than LOCAL).
"""

from repro.experiments.common import AveragedResults
from repro.extensions import StaleInfoDatabase
from repro.model.config import paper_defaults
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy

INTERVALS = (0.0, 10.0, 50.0, 200.0)


def _run(settings):
    config = paper_defaults()
    waits = {}
    local = DistributedDatabase(config, make_policy("LOCAL"), seed=settings.seed_for(0))
    waits["LOCAL"] = local.run(settings.warmup, settings.duration).mean_waiting_time
    for interval in INTERVALS:
        system = StaleInfoDatabase(
            config,
            make_policy("LERT"),
            seed=settings.seed_for(0),
            refresh_interval=interval,
        )
        result = system.run(settings.warmup, settings.duration)
        waits[interval] = result.mean_waiting_time
    return waits


def test_ablation_stale_info(benchmark, quick_settings):
    waits = benchmark.pedantic(_run, args=(quick_settings,), rounds=1, iterations=1)
    print()
    print("load-information staleness (LERT):")
    print(f"  LOCAL baseline        W={waits['LOCAL']:6.2f}")
    for interval in INTERVALS:
        print(f"  refresh {interval:6.1f}        W={waits[interval]:6.2f}")

    # Fresh information (interval 0) must beat LOCAL clearly.
    assert waits[0.0] < waits["LOCAL"]
    # Staleness monotonically costs performance across the sweep ends.
    assert waits[INTERVALS[-1]] > waits[0.0]
    # The herding collapse: very stale info is worse than no dynamic
    # allocation at all.
    assert waits[INTERVALS[-1]] > waits["LOCAL"], (
        "very stale load info should underperform LOCAL (herd effect)"
    )
    benchmark.extra_info["waits"] = {str(k): round(v, 2) for k, v in waits.items()}
