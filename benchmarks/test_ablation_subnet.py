"""Ablation bench — subnet topology (Table 11's mechanism, tested).

The paper blames channel congestion for the interior optimum in the number
of sites.  If true, replacing the shared ring with a point-to-point mesh
(aggregate capacity ∝ S·(S−1)) should remove the downturn.
"""

from repro.experiments import ablations

SITES = (2, 6, 10)


def test_ablation_subnet_scaling(benchmark, quick_settings):
    result = benchmark.pedantic(
        ablations.subnet_scaling_study,
        args=(quick_settings, SITES),
        rounds=1,
        iterations=1,
    )
    print()
    print(ablations.format_subnet_scaling(result))

    # The ring's channel utilization climbs steeply with sites; the mesh's
    # per-link utilization stays negligible.
    assert (
        result.subnet_utilization[("ring", SITES[-1])]
        > result.subnet_utilization[("ring", SITES[0])]
    )
    assert result.subnet_utilization[("mesh", SITES[-1])] < 0.10

    # On the mesh, more sites keep helping: the improvement at the largest
    # size is at least that of the smallest (no downturn).
    assert (
        result.improvements[("mesh", SITES[-1])]
        >= result.improvements[("mesh", SITES[0])] - 2.0
    )

    # And the mesh never does worse than the ring at the congested end.
    assert (
        result.improvements[("mesh", SITES[-1])]
        >= result.improvements[("ring", SITES[-1])] - 2.0
    )
    benchmark.extra_info["improvements"] = {
        f"{subnet}@{n}": round(result.improvements[(subnet, n)], 1)
        for subnet in ("ring", "mesh")
        for n in SITES
    }
