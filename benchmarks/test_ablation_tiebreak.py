"""Ablation A4 — BNQ tie-breaking in the analytic study.

The Table 5/6 comparison needs an assumption about which of several
equally loaded sites BNQ picks.  DESIGN.md adopts the expected-value
(average over ties) reading; this bench quantifies the spread between the
most charitable ("best") and least charitable ("worst") readings, bounding
how much the WIF conclusions depend on the assumption.
"""

from repro.analysis.improvement import improvement_grid


def _grids():
    return {
        rule: improvement_grid(tie_break=rule)
        for rule in ("average", "best", "worst")
    }


def _mean_wif(grid) -> float:
    cells = [cell.wif for row in grid for cell in row]
    return sum(cells) / len(cells)


def test_ablation_tiebreak(benchmark):
    grids = benchmark.pedantic(_grids, rounds=1, iterations=1)
    means = {rule: _mean_wif(grid) for rule, grid in grids.items()}
    print()
    print("BNQ tie-break ablation (mean WIF over the Table 5 grid):")
    for rule, mean in means.items():
        print(f"  {rule:8s} {mean:.4f}")

    # Orderings the definitions force: best <= average <= worst.
    assert means["best"] <= means["average"] + 1e-12
    assert means["average"] <= means["worst"] + 1e-12
    # The qualitative conclusion (information helps) survives even the
    # most charitable reading of BNQ.
    assert means["worst"] > 0.10
    assert means["average"] > 0.05
    benchmark.extra_info["mean_wif_by_rule"] = {
        k: round(v, 4) for k, v in means.items()
    }
