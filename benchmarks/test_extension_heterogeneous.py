"""Extension bench — heterogeneous CPU speeds.

Relaxes the paper's homogeneity assumption.  Expected shape: LOCAL
deteriorates badly on a mixed fleet (terminals chained to slow sites),
informed dynamic allocation recovers most of the loss, and the speed-aware
LERT-HET at least matches plain LERT.
"""

from repro.experiments import ablations

SPEEDS = (0.5, 0.5, 1.0, 1.0, 2.0, 2.0)


def test_extension_heterogeneous(benchmark, quick_settings):
    result = benchmark.pedantic(
        ablations.heterogeneity_study,
        args=(quick_settings, SPEEDS),
        rounds=1,
        iterations=1,
    )
    print()
    print(ablations.format_heterogeneity(result))

    rt = result.response_times
    # Dynamic allocation beats LOCAL decisively on a mixed fleet.
    assert rt["LERT"] < rt["LOCAL"]
    assert rt["BNQ"] < rt["LOCAL"]
    # The informed policies' advantage over LOCAL exceeds the homogeneous
    # case's typical ~20% response-time gain.
    assert result.informed_advantage() > 15.0
    # Speed awareness does not hurt relative to plain LERT.
    assert rt["LERT-HET"] < rt["LERT"] * 1.10
    benchmark.extra_info["response_times"] = {
        k: round(v, 2) for k, v in rt.items()
    }
