"""Extension bench — update transactions and replica propagation.

Tests the paper's footnote claim: because updates load every replica no
matter where the triggering query ran, update traffic *dilutes* the benefit
of dynamic allocation without changing the policy ranking.
"""

from repro.experiments import ablations


def test_extension_update_fraction(benchmark, quick_settings):
    fractions = (0.0, 0.2, 0.4)
    result = benchmark.pedantic(
        ablations.update_fraction_sweep,
        args=(quick_settings, fractions),
        rounds=1,
        iterations=1,
    )
    print()
    print(ablations.format_update_fraction(result))

    # LERT keeps winning while the ring has headroom; at 40% updates the
    # channel saturates (>90% utilization) and the advantage dissolves to
    # ~0 — allow noise around zero there rather than demanding a win.
    for fraction in fractions:
        if result.subnet[fraction] < 0.85:
            assert result.lert_improvement(fraction) > 0
        else:
            assert result.lert_improvement(fraction) > -12.0
    # The dilution trend itself: the advantage shrinks as updates grow.
    assert result.lert_improvement(fractions[-1]) < result.lert_improvement(
        fractions[0]
    )
    # ...and update propagation visibly loads the subnet.
    assert result.subnet[fractions[-1]] > result.subnet[0.0]
    # Everyone slows down as updates grow.
    assert (
        result.rows[fractions[-1]]["LOCAL"] > result.rows[0.0]["LOCAL"]
    )
    benchmark.extra_info["lert_gain_by_fraction"] = {
        str(f): round(result.lert_improvement(f), 1) for f in fractions
    }
