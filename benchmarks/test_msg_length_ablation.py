"""Bench E8 — message-length sensitivity (§5.2 text).

Paper: raising msg_length from 1 to 2 widens LERT's advantage over BNQRD
because only LERT charges communication cost in its estimates (16.43% vs
24.12% improvement over BNQ at msg_length 2).  The bench sweeps msg_length
and asserts the LERT-vs-BNQRD gap grows.
"""

from repro.experiments import msg_sensitivity


def test_msg_length_ablation(benchmark, quick_settings):
    lengths = (1.0, 2.0, 4.0)
    result = benchmark.pedantic(
        msg_sensitivity.run_experiment,
        args=(quick_settings, lengths),
        rounds=1,
        iterations=1,
    )
    print()
    print(msg_sensitivity.format_table(result))

    assert result.gap_widens_with_msg_length(), (
        "LERT's advantage over BNQRD should grow with message cost"
    )
    gaps = [row.lert_advantage for row in result.rows]
    benchmark.extra_info["lert_advantage_by_msg_length"] = [
        round(g, 2) for g in gaps
    ]
