"""Bench E5 — regenerate Table 10 (maximum mpl per response-time bound).

Shape check: at every bound, LERT sustains at least as many terminals as
LOCAL, and over the bound range the capacity gain lands in the paper's
20–50% band (evaluated loosely at quick scale).
"""

from repro.experiments import table10


def test_table10_capacity(benchmark, quick_settings):
    # A coarser mpl grid keeps the quick bench fast; the CLI uses the full one.
    grid = tuple(range(6, 41, 4))
    result = benchmark.pedantic(
        table10.run_experiment,
        args=(quick_settings, grid),
        rounds=1,
        iterations=1,
    )
    print()
    print(table10.format_table(result))

    gains = []
    for bound in table10.BOUNDS:
        local = result.max_mpl("LOCAL", bound)
        lert = result.max_mpl("LERT", bound)
        assert lert >= local, f"LERT capacity below LOCAL at bound {bound}"
        if local:
            gains.append((lert - local) / local)
    assert gains, "no bound was satisfiable on the grid"
    mean_gain = sum(gains) / len(gains)
    assert mean_gain > 0.05, f"expected a clear capacity gain, got {mean_gain:.1%}"
    benchmark.extra_info["mean_capacity_gain_pct"] = round(100 * mean_gain, 1)
