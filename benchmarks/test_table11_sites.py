"""Bench E6 — regenerate Table 11 (waiting time and subnet util vs sites).

Shape checks:
* subnet utilization rises monotonically with the number of sites
  (paper: 6% at 2 sites to ~70% at 10);
* the improvement over LOCAL has an interior maximum — more copies help
  until the shared channel congests (paper: optimum at 6-8 sites);
* dynamic allocation helps at every size.
"""

from repro.experiments import table11


def test_table11_sites(benchmark, quick_settings):
    result = benchmark.pedantic(
        table11.run_experiment, args=(quick_settings,), rounds=1, iterations=1
    )
    print()
    print(table11.format_table(result))

    utils = [row.subnet_utilization("LERT") for row in result.rows]
    assert all(b > a for a, b in zip(utils, utils[1:])), (
        f"subnet utilization must rise with sites, got {utils}"
    )

    for row in result.rows:
        assert row.vs_local("BNQ") > 0
        assert row.vs_local("LERT") > 0

    # Interior maximum: the best site count is neither the smallest nor
    # the largest swept value.
    peak = result.peak_improvement_sites("LERT")
    assert result.rows[0].num_sites < peak <= result.rows[-1].num_sites
    benchmark.extra_info["peak_sites"] = peak
    benchmark.extra_info["subnet_util_range"] = (
        round(utils[0], 1),
        round(utils[-1], 1),
    )
