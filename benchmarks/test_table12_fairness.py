"""Bench E7 — regenerate Table 12 (W̄ and fairness F vs class_io_prob).

Shape checks:
* F_LOCAL crosses zero as the class mix shifts from CPU-heavy to I/O-heavy
  (paper: −0.377 at prob 0.3 rising to +0.224 at 0.8);
* dynamic allocation improves W̄ at every mix;
* away from the F≈0 crossover, dynamic allocation shrinks |F|.
"""

from repro.experiments import table12


def test_table12_fairness(benchmark, quick_settings):
    result = benchmark.pedantic(
        table12.run_experiment, args=(quick_settings,), rounds=1, iterations=1
    )
    print()
    print(table12.format_table(result))

    assert result.f_local_crosses_zero(), "F_LOCAL should change sign across the mix"

    f_values = [row.f_local for row in result.rows]
    assert f_values[0] < 0 < f_values[-1], (
        f"F_LOCAL should go from negative to positive, got {f_values}"
    )

    for row in result.rows:
        assert row.vs_local("BNQ") > 0
        assert row.vs_local("LERT") > 0

    # Fairness improves where the baseline is clearly unfair (|F| large).
    biased_rows = [row for row in result.rows if abs(row.f_local) > 0.1]
    assert biased_rows, "expected some clearly biased mixes"
    improved = sum(1 for row in biased_rows if row.fairness_improvement("LERT") > 0)
    assert improved >= len(biased_rows) / 2
    benchmark.extra_info["f_local_range"] = (
        round(f_values[0], 3),
        round(f_values[-1], 3),
    )
