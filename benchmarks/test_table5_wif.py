"""Bench E1 — regenerate Table 5 (Waiting Improvement Factor grid).

Analytic: exact MVA over the paper's 6 CPU pairs × 6 arrival conditions ×
2 arrival classes.  Checks the headline claims: improvements exceeding 10%
are typical, the best cases exceed 30%, and the first four CPU-ratio rows
rise with the demand ratio.
"""

from repro.analysis.improvement import improvement_grid, grid_summary
from repro.experiments import table5


def test_table5_wif(benchmark):
    result = benchmark.pedantic(table5.run_experiment, rounds=1, iterations=1)
    print()
    print(table5.format_table(result))

    grid = result.grid
    summary = grid_summary([list(row) for row in grid])
    # Paper: "In most of the cases ... the improvement ... exceeds 10%".
    assert summary["wif_over_10pct"] >= 0.5
    # Paper: "For some arrivals, waiting time can be reduced by more than 30%".
    assert summary["wif_max"] > 0.30
    benchmark.extra_info["wif_mean"] = round(summary["wif_mean"], 4)
    benchmark.extra_info["wif_max"] = round(summary["wif_max"], 4)
