"""Bench E2 — regenerate Table 6 (Fairness Improvement Factor grid).

Analytic.  Checks the paper's claim that "in all cases a significant
improvement in the fairness of the system can be achieved", and that our
reproduction tracks the published grid closely (it is near-exact for most
rows — see EXPERIMENTS.md).
"""

from repro.experiments import table6
from repro.analysis.improvement import PAPER_CPU_PAIRS


def test_table6_fif(benchmark):
    result = benchmark.pedantic(table6.run_experiment, rounds=1, iterations=1)
    print()
    print(table6.format_table(result))

    fifs = [cell.fif for row in result.grid for cell in row]
    # Paper: significant fairness improvement in all cases (grid mean is
    # large even though a few individual cells are small).
    assert sum(fifs) / len(fifs) > 0.30
    assert max(fifs) > 0.90

    # Reproduction quality: most rows match the published table closely.
    close_rows = sum(
        1 for pair in PAPER_CPU_PAIRS if result.mean_absolute_deviation(pair) < 0.10
    )
    assert close_rows >= 4
    benchmark.extra_info["fif_mean"] = round(sum(fifs) / len(fifs), 4)
    benchmark.extra_info["close_rows"] = close_rows
