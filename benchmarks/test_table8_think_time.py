"""Bench E3 — regenerate Table 8 (waiting time versus think time).

Shape checks mirror the paper's findings:
* every dynamic policy beats LOCAL at every think time;
* the information-based policies (BNQRD, LERT) beat BNQ;
* improvement over LOCAL grows as utilization falls (think time rises).
"""

from repro.experiments import table8
from repro.experiments.runconfig import QUICK


def test_table8_think_time(benchmark, quick_settings):
    result = benchmark.pedantic(
        table8.run_experiment, args=(quick_settings,), rounds=1, iterations=1
    )
    print()
    print(table8.format_table(result))

    for row in result.rows:
        for policy in ("BNQ", "BNQRD", "LERT"):
            assert row.vs_local(policy) > 0, (
                f"{policy} should beat LOCAL at think={row.think_time}"
            )
        # Information-based policies beat count-balancing.
        assert row.vs_bnq("BNQRD") > -3.0
        assert row.vs_bnq("LERT") > -3.0

    # Averaged over the sweep, the information advantage is positive.
    mean_bnqrd_gain = sum(r.vs_bnq("BNQRD") for r in result.rows) / len(result.rows)
    mean_lert_gain = sum(r.vs_bnq("LERT") for r in result.rows) / len(result.rows)
    assert mean_bnqrd_gain > 2.0
    assert mean_lert_gain > 2.0

    # Low utilization end shows larger improvement than the high end.
    first, last = result.rows[0], result.rows[-1]
    assert last.vs_local("LERT") > first.vs_local("LERT")
    benchmark.extra_info["lert_gain_over_bnq_pct"] = round(mean_lert_gain, 2)
