"""Bench E4 — regenerate Table 9 (waiting time versus mpl).

Shape checks: dynamic allocation always helps; W̄_LOCAL rises steeply with
the multiprogramming level; the relative improvement over LOCAL shrinks at
the heavy-load end (paper: 36.9% at mpl 15 down to 11% at mpl 35 for BNQ).
"""

from repro.experiments import table9


def test_table9_mpl(benchmark, quick_settings):
    result = benchmark.pedantic(
        table9.run_experiment, args=(quick_settings,), rounds=1, iterations=1
    )
    print()
    print(table9.format_table(result))

    waits = [row.w_local for row in result.rows]
    assert waits == sorted(waits), "W_LOCAL must rise with mpl"

    for row in result.rows:
        for policy in ("BNQ", "BNQRD", "LERT"):
            assert row.vs_local(policy) > 0

    light, heavy = result.rows[0], result.rows[-1]
    assert light.vs_local("BNQ") > heavy.vs_local("BNQ"), (
        "BNQ's improvement should shrink under heavy load"
    )
    # Utilization rises across the sweep (paper: 0.41 -> 0.83).
    assert heavy.rho_c > light.rho_c + 0.2
    benchmark.extra_info["w_local_range"] = (round(waits[0], 2), round(waits[-1], 2))
