"""Capacity planning: how many terminals can each site support?

The paper's Table 10 observation, as a planning tool: given a response-time
target, find the largest per-site terminal population (mpl) the system
sustains under each allocation policy.  Dynamic allocation buys capacity —
the same hardware supports 20-50% more terminals at the same response-time
target.

Run:  python examples/capacity_planning.py
"""

from repro import DistributedDatabase, make_policy, paper_defaults
from repro.analysis.capacity import local_response_time
from repro.experiments.common import TextTable

POLICIES = ("LOCAL", "BNQ", "LERT")
RESPONSE_TARGET = 60.0
MPL_GRID = range(8, 41, 4)
WARMUP = 1500.0
DURATION = 6000.0
SEED = 3


def response_time(policy: str, mpl: int) -> float:
    config = paper_defaults(mpl=mpl)
    system = DistributedDatabase(config, make_policy(policy), seed=SEED)
    return system.run(warmup=WARMUP, duration=DURATION).mean_response_time


def main() -> None:
    print(f"Target: mean response time <= {RESPONSE_TARGET:.0f} time units\n")
    table = TextTable(
        ["policy"] + [f"mpl {m}" for m in MPL_GRID] + ["max mpl"],
        title="Mean response time vs per-site terminals",
    )
    capacities = {}
    for policy in POLICIES:
        cells = []
        best = 0
        worst_so_far = 0.0
        for mpl in MPL_GRID:
            rt = response_time(policy, mpl)
            worst_so_far = max(worst_so_far, rt)  # enforce monotone reading
            cells.append(f"{rt:.1f}")
            if worst_so_far <= RESPONSE_TARGET:
                best = mpl
        capacities[policy] = best
        table.add_row(policy, *cells, str(best))
    # The LOCAL column is also available analytically (approximate MVA,
    # microseconds instead of simulation) — show it for comparison.
    analytic_cells = []
    analytic_best = 0
    for mpl in MPL_GRID:
        rt = local_response_time(paper_defaults(), mpl)
        analytic_cells.append(f"{rt:.1f}")
        if rt <= RESPONSE_TARGET:
            analytic_best = mpl
    table.add_row("LOCAL*", *analytic_cells, str(analytic_best))
    print(table.render())
    print("(* analytic, no simulation)")
    print()
    local = capacities["LOCAL"]
    lert = capacities["LERT"]
    if local:
        print(
            f"LERT supports {lert} terminals/site vs {local} for LOCAL "
            f"(+{100 * (lert - local) / local:.0f}% capacity on identical hardware)."
        )


if __name__ == "__main__":
    main()
