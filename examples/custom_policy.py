"""Writing your own allocation policy against the public API.

Implements WEIGHTED — a policy between BNQ and LERT in sophistication: it
sums each site's committed queries weighted by their class's mean service
demand (so a CPU-bound query "weighs" more than an I/O-bound one on the
CPU axis), without estimating response times.  Registering it by name makes
it usable everywhere policies are referenced, including the experiment CLI.

Run:  python examples/custom_policy.py
"""

from repro import DistributedDatabase, make_policy, paper_defaults
from repro.model.query import Query
from repro.policies import CostBasedPolicy, register


class WeightedLoadPolicy(CostBasedPolicy):
    """Balance demand-weighted load in two dimensions.

    Site cost is the estimated residual work committed to the site, as the
    max of its I/O and CPU backlogs — the bottleneck dimension — computed
    from class-mean demands.
    """

    name = "WEIGHTED"

    def site_cost(self, query: Query, site: int) -> float:
        config = self.system.config
        spec = config.site
        loads = self.loads
        # Approximate each committed query by its boundness class's demand.
        io_backlog = loads.num_io_queries(site) * spec.disk_time / spec.num_disks
        cpu_means = [
            c.page_cpu_time
            for c in config.classes
            if not config.is_io_bound(c.page_cpu_time)
        ]
        mean_cpu = sum(cpu_means) / len(cpu_means) if cpu_means else 0.0
        cpu_backlog = loads.num_cpu_queries(site) * mean_cpu
        # The arriving query loads whichever dimension it stresses more.
        own_io = query.estimated_io_demand(spec.disk_time) / spec.num_disks
        own_cpu = query.estimated_cpu_demand
        return max(io_backlog + own_io, cpu_backlog + own_cpu)


def main() -> None:
    register("WEIGHTED", WeightedLoadPolicy)
    config = paper_defaults()
    print("policy     W       RT      remote%")
    for name in ("BNQ", "WEIGHTED", "LERT"):
        system = DistributedDatabase(config, make_policy(name), seed=5)
        result = system.run(warmup=2000, duration=8000)
        print(
            f"{name:9s}  {result.mean_waiting_time:6.2f}  "
            f"{result.mean_response_time:6.2f}  {result.remote_fraction:7.1%}"
        )


if __name__ == "__main__":
    main()
