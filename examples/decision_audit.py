"""Decision audit: how stale load information erodes allocation quality.

Runs the paper's default system under BNQRD three ways — with the
paper's free load-information oracle, then with periodically broadcast
(i.e. stale) load snapshots at two refresh intervals — auditing every
allocation decision along the way.  For each run it reports the audit's
staleness/regret roll-up and an ASCII histogram of per-decision regret,
then writes the oracle run's decision log (JSONL) and query-lifecycle
trace (Chrome trace-event JSON, loadable in ``chrome://tracing`` or
Perfetto) next to this script.

The point the numbers make: with fresh information most decisions are
ex-post optimal and regret hugs zero; as the snapshots age, the policy
increasingly "herds" toward sites that were idle a refresh ago, and the
regret tail stretches.

Run:

    python examples/decision_audit.py
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro import DecisionRecord, RunSpec, TelemetryConfig, paper_defaults, run
from repro.extensions.stale_info import StaleInfoDatabase
from repro.policies.registry import make_policy
from repro.telemetry.session import TelemetrySession

POLICY = "BNQRD"
SEED = 7
WARMUP = 1000.0
DURATION = 5000.0
REFRESH_INTERVALS = (25.0, 100.0)

#: Regret histogram buckets (upper edges, in estimated-response units).
BUCKETS = (0.0, 5.0, 15.0, 30.0, 60.0, float("inf"))


def regret_histogram(records: Sequence[DecisionRecord]) -> str:
    """One bar per bucket; '0' means exactly optimal decisions."""
    counts = [0] * len(BUCKETS)
    for record in records:
        for position, edge in enumerate(BUCKETS):
            if record.regret <= edge:
                counts[position] += 1
                break
    peak = max(counts) or 1
    labels = ["      0", "   <= 5", "  <= 15", "  <= 30", "  <= 60", "   > 60"]
    lines = []
    for label, count in zip(labels, counts):
        bar = "#" * round(40 * count / peak)
        lines.append(f"  regret {label} |{bar} {count}")
    return "\n".join(lines)


def audit_stale_run(refresh_interval: float) -> Tuple[object, Sequence[DecisionRecord]]:
    """One stale-information run with a decision audit attached."""
    system = StaleInfoDatabase(
        paper_defaults(),
        make_policy(POLICY),
        seed=SEED,
        refresh_interval=refresh_interval,
    )
    session = TelemetrySession(
        system, TelemetryConfig(events=False, decisions=True)
    )
    system.run(warmup=WARMUP, duration=DURATION)
    records = session.decisions
    summary = session.decision_audit.summary()
    session.close()
    return summary, records


def main() -> None:
    # --- the oracle run, through the standard runner -------------------
    spec = RunSpec(
        warmup=WARMUP,
        duration=DURATION,
        seed=SEED,
        telemetry=TelemetryConfig(events=False, spans=True, decisions=True),
    )
    report = run(paper_defaults(), POLICY, spec)
    summary = report.results.decisions
    assert summary is not None
    print(f"{POLICY}, paper oracle (always-fresh loads):")
    print(
        f"  decisions={summary.count}  optimal={summary.optimal_fraction:.1%}  "
        f"mean regret={summary.mean_regret:.2f}  max={summary.max_regret:.1f}"
    )
    print(regret_histogram(report.decisions))
    trace_path = report.write_spans("decision_audit_trace.json")
    decisions_path = report.write_decisions("decision_audit.jsonl")
    print(f"  artifacts: {trace_path}, {decisions_path}\n")

    # --- the stale-information runs ------------------------------------
    for interval in REFRESH_INTERVALS:
        stale_summary, records = audit_stale_run(interval)
        print(f"{POLICY}, loads rebroadcast every {interval:.0f} time units:")
        print(
            f"  decisions={stale_summary.count}  "
            f"optimal={stale_summary.optimal_fraction:.1%}  "
            f"mean regret={stale_summary.mean_regret:.2f}  "
            f"max={stale_summary.max_regret:.1f}  "
            f"mean staleness={stale_summary.mean_staleness:.1f}"
        )
        print(regret_histogram(records))
        print()

    print(
        "Fresh information keeps most decisions ex-post optimal; as the "
        "snapshots age the regret tail stretches — the audit quantifies "
        "exactly how much allocation quality the information-exchange "
        "policy is giving away."
    )


if __name__ == "__main__":
    main()
