"""Failover study: what do sites crashing do to each allocation policy?

Three scenes, all byte-replayable from the same seed (see docs/faults.md):

1. **A planned outage** — one site goes down for a fixed window; watch
   queries abort, retry at the survivors, and drain back after recovery.
2. **Random failures** — every site runs an exponential crash/repair
   process (MTBF 1500, MTTR 40); compare W-bar and availability metrics
   across policies.
3. **A flaky subnet** — 2% message loss; load-sharing policies pay for
   every remote transfer twice when the ring misbehaves.

Run:  python examples/failover_study.py
"""

from repro import (
    DistributedDatabase,
    FaultPlan,
    MessageFaults,
    RandomOutages,
    SiteOutage,
    make_policy,
    paper_defaults,
)
from repro.experiments.common import TextTable

POLICIES = ("LOCAL", "BNQ", "BNQRD", "LERT")
WARMUP = 2000.0
DURATION = 8000.0
SEED = 23


def run_under(plan):
    """One row of numbers per policy under *plan* (None = faultless)."""
    config = paper_defaults()
    rows = {}
    for name in POLICIES:
        system = DistributedDatabase(
            config, make_policy(name), seed=SEED, faults=plan
        )
        rows[name] = system.run(warmup=WARMUP, duration=DURATION)
    return rows


def scene_planned_outage() -> None:
    plan = FaultPlan(
        site_outages=(SiteOutage(site=0, at=4000.0, duration=800.0),),
        max_retries=10,
        retry_backoff=5.0,
    )
    table = TextTable(
        ["policy", "W-bar", "aborted", "retried", "lost", "degraded RT"],
        title="Scene 1: site 0 down for t=4000..4800",
    )
    for name, results in run_under(plan).items():
        a = results.availability
        table.add_row(
            name,
            f"{results.mean_waiting_time:.2f}",
            str(a.queries_aborted),
            str(a.queries_retried),
            str(a.queries_lost),
            f"{a.degraded_response_time:.1f}",
        )
    print(table.render())
    print()


def scene_random_failures() -> None:
    plan = FaultPlan(
        random_outages=(RandomOutages(mtbf=1500.0, mttr=40.0),),
        max_retries=10,
        retry_backoff=5.0,
    )
    baseline = run_under(None)
    faulted = run_under(plan)
    table = TextTable(
        ["policy", "W-bar clean", "W-bar faulted", "downtime", "crashes"],
        title="Scene 2: MTBF 1500 / MTTR 40 at every site",
    )
    for name in POLICIES:
        a = faulted[name].availability
        table.add_row(
            name,
            f"{baseline[name].mean_waiting_time:.2f}",
            f"{faulted[name].mean_waiting_time:.2f}",
            f"{a.total_downtime:.0f}",
            str(a.crashes),
        )
    print(table.render())
    print(
        "Load sharing keeps its edge under failures: survivors absorb the\n"
        "retried queries instead of letting them pile up at a dead site.\n"
    )


def scene_flaky_subnet() -> None:
    plan = FaultPlan(
        messages=MessageFaults(loss_prob=0.02, retransmit_timeout=5.0)
    )
    table = TextTable(
        ["policy", "W-bar", "remote %", "drops", "degraded"],
        title="Scene 3: 2% message loss on the ring",
    )
    for name, results in run_under(plan).items():
        a = results.availability
        table.add_row(
            name,
            f"{results.mean_waiting_time:.2f}",
            f"{results.remote_fraction:.1%}",
            str(a.messages_dropped),
            str(a.degraded_completions),
        )
    print(table.render())
    print(
        "LOCAL never transfers, so it never drops a message; the sharing\n"
        "policies trade retransmission stalls for shorter queues."
    )


def main() -> None:
    scene_planned_outage()
    scene_random_failures()
    scene_flaky_subnet()


if __name__ == "__main__":
    main()
