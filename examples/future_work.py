"""The paper's future-work directions, running.

Four extensions built on the same model:

1. **Stale load information** — the paper assumes free, always-current load
   state; here information refreshes periodically, and the example shows
   how LERT degrades (and eventually herds: with very stale state every
   site routes to the same "least loaded" victim and performance falls
   below LOCAL).
2. **Query migration** — partially executed queries re-evaluate their
   placement between read cycles and may move.
3. **Partial replication** — data items live on k of the S sites and the
   allocator chooses among holders only.
4. **Subquery pipelines** — distributed queries decomposed into
   per-stage-allocated subqueries with intermediate-result data moves
   (the paper's stated end goal).

Run:  python examples/future_work.py
"""

from repro import DistributedDatabase, make_policy, paper_defaults
from repro.extensions import (
    MigratingDatabase,
    PartialReplicationDatabase,
    ReplicationMap,
    StaleInfoDatabase,
    SubqueryDatabase,
)

WARMUP = 1500.0
DURATION = 6000.0
SEED = 13


def main() -> None:
    config = paper_defaults()

    base = DistributedDatabase(config, make_policy("LERT"), seed=SEED)
    base_result = base.run(warmup=WARMUP, duration=DURATION)
    print(f"baseline LERT (fresh info, no migration): W={base_result.mean_waiting_time:.2f}")
    print()

    print("1) Load-information staleness (refresh interval sweep):")
    for interval in (5.0, 25.0, 100.0, 400.0):
        system = StaleInfoDatabase(
            config, make_policy("LERT"), seed=SEED, refresh_interval=interval
        )
        result = system.run(warmup=WARMUP, duration=DURATION)
        print(f"   refresh {interval:6.1f}: W={result.mean_waiting_time:6.2f}")
    print()

    print("2) Query migration between read cycles:")
    for threshold in (1.25, 1.5, 2.0):
        system = MigratingDatabase(
            config, make_policy("LERT"), seed=SEED, threshold=threshold
        )
        result = system.run(warmup=WARMUP, duration=DURATION)
        print(
            f"   threshold {threshold:.2f}: W={result.mean_waiting_time:6.2f} "
            f"({system.total_migrations} migrations)"
        )
    print()

    print("3) Partial replication (copies per data item):")
    for copies in (1, 2, 3, 6):
        replication = ReplicationMap.round_robin_k(
            config.num_sites, num_items=24, copies=copies
        )
        system = PartialReplicationDatabase(
            config, make_policy("LERT"), replication, seed=SEED
        )
        result = system.run(warmup=WARMUP, duration=DURATION)
        print(
            f"   {copies} copies: W={result.mean_waiting_time:6.2f} "
            f"(remote {result.remote_fraction:.0%})"
        )
    print()
    print(
        "Note the paper's Table 11 message in new clothes: more copies give "
        "the allocator more freedom, but 1 copy removes all freedom and "
        "full replication maximizes it."
    )
    print()

    print("4) Subquery pipelines (per-stage allocation + data moves):")
    replication = ReplicationMap.round_robin_k(
        config.num_sites, num_items=24, copies=3
    )
    for name in ("LOCAL", "LERT"):
        system = SubqueryDatabase(
            config,
            make_policy(name),
            replication,
            seed=SEED,
            multi_prob=0.5,
            subquery_count=3,
        )
        result = system.run(warmup=WARMUP, duration=DURATION)
        print(
            f"   {name:6s}: W={result.mean_waiting_time:6.2f} "
            f"({system.distributed_queries} distributed queries, "
            f"{system.data_moves} data moves)"
        )


if __name__ == "__main__":
    main()
