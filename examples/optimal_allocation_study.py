"""Analytic study of a single allocation decision (the paper's §3).

Uses exact Mean Value Analysis — no simulation — to answer: given the
current load distribution, where should one arriving query go, and how much
does knowing its class buy over blind count-balancing?

The example walks one concrete arrival in detail, then prints the full
Table 5/6 reproduction.

Run:  python examples/optimal_allocation_study.py
"""

from repro.analysis import SiteModel, study_arrival
from repro.experiments import table5, table6


def walk_one_arrival() -> None:
    # Four sites; class 1 is I/O-bound (0.05 CPU/page), class 2 CPU-bound
    # (1.0 CPU/page).  Sites 1-2 each hold an I/O query, sites 3-4 a CPU
    # query.  A new I/O-bound query arrives.
    model = SiteModel(cpu_means=(0.05, 1.0), disk_time=1.0, num_disks=2)
    load = ((1, 1, 0, 0), (0, 0, 1, 1))
    study = study_arrival(model, load, class_index=0)

    print("Arrival: I/O-bound query; load matrix (classes x sites):")
    for k, row in enumerate(load):
        print(f"  class {k + 1}: {row}")
    print()
    print("Expected waiting per cycle for the arrival, by chosen site:")
    for j, wait in enumerate(study.waiting):
        tags = []
        if j in study.bnq_sites:
            tags.append("BNQ-candidate")
        if j == study.opt_wait_site:
            tags.append("OPT")
        print(f"  site {j + 1}: {wait:.4f}  {' '.join(tags)}")
    print()
    print(
        f"BNQ cannot distinguish the tied sites; its expected wait is "
        f"{study.waiting_bnq:.4f}.  The optimum is {study.waiting_opt:.4f} "
        f"(pair the I/O query with a CPU-bound one)."
    )
    print(f"Waiting Improvement Factor: {study.wif:.2f}")
    print(f"Fairness Improvement Factor: {study.fif:.2f}")
    print()


def main() -> None:
    walk_one_arrival()
    print(table5.format_table(table5.run_experiment()))
    print()
    print(table6.format_table(table6.run_experiment()))


if __name__ == "__main__":
    main()
