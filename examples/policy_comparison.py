"""Compare all six allocation policies across a range of system loads.

Sweeps terminal think time (shorter think = heavier load) and prints mean
waiting time per policy, including the two policies that are not in the
paper: RANDOM (spreads load with zero information) and LERT-MVA (LERT's
decision rule with a real queueing-model cost estimate).

Run:  python examples/policy_comparison.py
"""

from repro import DistributedDatabase, make_policy, paper_defaults
from repro.experiments.common import TextTable, improvement_pct

POLICIES = ("LOCAL", "RANDOM", "BNQ", "BNQRD", "LERT", "LERT-MVA")
THINK_TIMES = (200.0, 350.0, 500.0)
WARMUP = 2000.0
DURATION = 8000.0
SEED = 11


def main() -> None:
    table = TextTable(
        ["think"] + [f"W {p}" for p in POLICIES] + ["best vs LOCAL %"],
        title="Mean waiting time by policy and load",
    )
    for think in THINK_TIMES:
        config = paper_defaults(think_time=think)
        waits = {}
        for name in POLICIES:
            system = DistributedDatabase(config, make_policy(name), seed=SEED)
            result = system.run(warmup=WARMUP, duration=DURATION)
            waits[name] = result.mean_waiting_time
        best = min(waits, key=waits.get)
        table.add_row(
            f"{think:.0f}",
            *[f"{waits[p]:.2f}" for p in POLICIES],
            f"{best}: {improvement_pct(waits[best], waits['LOCAL']):.1f}",
        )
    print(table.render())
    print()
    print(
        "Expected ordering: RANDOM is worst (in a homogeneous closed system "
        "arrivals are already spread, so blind transfers only add message "
        "cost); LOCAL next; BNQ adds load state; BNQRD/LERT/LERT-MVA add "
        "resource-demand knowledge."
    )


if __name__ == "__main__":
    main()
