"""Quickstart: simulate the paper's default system under two policies.

Builds the Table 7 default configuration (6 sites, 2 disks/site, 20
terminals/site, two query classes), runs it once with no dynamic allocation
(LOCAL) and once with the paper's best heuristic (LERT), and prints the
comparison the whole paper is about.

Run:  python examples/quickstart.py
"""

from repro import DistributedDatabase, make_policy, paper_defaults

WARMUP = 2000.0
DURATION = 10000.0
SEED = 7


def main() -> None:
    config = paper_defaults()
    print(
        f"System: {config.num_sites} sites, {config.site.num_disks} disks/site, "
        f"mpl {config.site.mpl}, think {config.site.think_time:.0f}"
    )
    print(
        "Classes: "
        + ", ".join(
            f"{spec.name} (cpu/page {spec.page_cpu_time}, reads {spec.num_reads:.0f})"
            for spec in config.classes
        )
    )
    print()

    results = {}
    for name in ("LOCAL", "LERT"):
        system = DistributedDatabase(config, make_policy(name), seed=SEED)
        results[name] = system.run(warmup=WARMUP, duration=DURATION)
        print(results[name])

    local_w = results["LOCAL"].mean_waiting_time
    lert_w = results["LERT"].mean_waiting_time
    print()
    print(
        f"Dynamic allocation cut mean waiting time by "
        f"{100 * (local_w - lert_w) / local_w:.1f}% "
        f"({local_w:.2f} -> {lert_w:.2f})."
    )
    print(
        f"Fairness |F|: {abs(results['LOCAL'].fairness):.3f} -> "
        f"{abs(results['LERT'].fairness):.3f}"
    )


if __name__ == "__main__":
    main()
