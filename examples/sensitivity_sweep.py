"""Custom sensitivity analysis with the sweep framework.

The paper fixes disk_time = 1.0 and num_reads = 20; this example asks a
question the paper doesn't: *how does the value of dynamic allocation
change when queries get shorter?*  Short queries mean the (fixed)
msg_length is a larger fraction of the work — transfers should pay off
less, and LERT's network-awareness should matter more relative to BNQ.

Also demonstrates CSV export for downstream analysis.

Run:  python examples/sensitivity_sweep.py
"""

import dataclasses
import tempfile

from repro import paper_defaults
from repro.experiments import RunSettings, SweepSpec, run_sweep, write_csv
from repro.experiments.common import TextTable, improvement_pct
from repro.model.config import QueryClassSpec

SETTINGS = RunSettings(warmup=1000.0, duration=5000.0, replications=1, base_seed=17)


def config_with_reads(num_reads: float):
    base = paper_defaults()
    classes = tuple(
        dataclasses.replace(spec, num_reads=num_reads) for spec in base.classes
    )
    return dataclasses.replace(base, classes=classes)


def main() -> None:
    table = TextTable(
        ["num_reads", "W LOCAL", "W BNQ", "W LERT", "dBNQ%", "dLERT%", "LERT-BNQ gap"],
        title="Query length sensitivity (shorter queries, relatively pricier transfers)",
    )
    for num_reads in (5.0, 10.0, 20.0, 40.0):
        spec = SweepSpec(
            name=f"reads-{num_reads:g}",
            base=config_with_reads(num_reads),
            parameter="site.think_time",  # degenerate single-value sweep
            values=(350.0,),
            policies=("LOCAL", "BNQ", "LERT"),
        )
        result = run_sweep(spec, SETTINGS)
        local = result.result(350.0, "LOCAL").mean_waiting_time
        bnq = result.result(350.0, "BNQ").mean_waiting_time
        lert = result.result(350.0, "LERT").mean_waiting_time
        table.add_row(
            f"{num_reads:g}",
            f"{local:.2f}",
            f"{bnq:.2f}",
            f"{lert:.2f}",
            f"{improvement_pct(bnq, local):.1f}",
            f"{improvement_pct(lert, local):.1f}",
            f"{improvement_pct(lert, bnq):+.1f}",
        )
    print(table.render())
    print()

    # A proper one-dimensional sweep with CSV export.
    spec = SweepSpec(
        name="msg-length",
        base=paper_defaults(),
        parameter="network.msg_length",
        values=(0.5, 1.0, 2.0),
        policies=("BNQ", "LERT"),
    )
    result = run_sweep(spec, SETTINGS)
    with tempfile.NamedTemporaryFile(
        suffix=".csv", delete=False, mode="w"
    ) as handle:
        path = handle.name
    write_csv(result, path)
    print(f"msg_length sweep exported to {path}")
    print("  LERT W series:", [round(w, 2) for w in result.series("LERT")])
    print("  BNQ  W series:", [round(w, 2) for w in result.series("BNQ")])


if __name__ == "__main__":
    main()
