"""Telemetry timeline: watch per-site queue lengths evolve over a run.

Runs one Table-8-style cell (the paper's default system at think time
200) under LOCAL and LERT with the telemetry subsystem enabled, exports
each run's sampled timeline to CSV, and plots an ASCII queue-length
timeline per site — making the paper's core claim *visible*: under
LOCAL, per-site backlogs drift apart (the lucky sites idle while the
unlucky ones queue); under LERT the dynamic allocation keeps them
tracking each other.

No plotting dependencies: the chart is plain text. Run:

    python examples/telemetry_timeline.py
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro import RunSpec, TelemetryConfig, paper_defaults, run
from repro.telemetry.sampler import TimelineSample

WARMUP = 1000.0
DURATION = 5000.0
SAMPLE_INTERVAL = 100.0
SEED = 7
THINK_TIME = 200.0

#: Glyphs from idle to deeply queued.
SHADES = " .:-=+*#%@"


def queue_series(
    timeline: Sequence[TimelineSample],
) -> Dict[int, List[Tuple[float, int]]]:
    """Per-site (time, total queue length) series from a sampled timeline."""
    series: Dict[int, List[Tuple[float, int]]] = {}
    for sample in timeline:
        total = sample.cpu_queue + sample.disk_queue
        series.setdefault(sample.site, []).append((sample.time, total))
    return series


def ascii_timeline(series: Dict[int, List[Tuple[float, int]]]) -> str:
    """One shaded row per site; darker glyph = longer queue."""
    peak = max((q for rows in series.values() for _, q in rows), default=0)
    scale = max(peak, 1)
    lines = []
    for site in sorted(series):
        cells = []
        for _, queue in series[site]:
            shade = SHADES[min(len(SHADES) - 1, queue * (len(SHADES) - 1) // scale)]
            cells.append(shade)
        lines.append(f"  site {site}  |{''.join(cells)}|")
    times = [t for t, _ in next(iter(series.values()))]
    lines.append(
        f"           t={times[0]:.0f} .. {times[-1]:.0f} "
        f"(one column per {SAMPLE_INTERVAL:.0f} time units; peak queue {peak})"
    )
    return "\n".join(lines)


def imbalance(series: Dict[int, List[Tuple[float, int]]]) -> float:
    """Mean over time of (max - min) queue length across sites."""
    columns = zip(*(rows for rows in series.values()))
    gaps = [max(q for _, q in col) - min(q for _, q in col) for col in columns]
    return sum(gaps) / len(gaps) if gaps else 0.0


def main() -> None:
    config = dataclasses.replace(
        paper_defaults(),
        site=dataclasses.replace(paper_defaults().site, think_time=THINK_TIME),
    )
    spec = RunSpec(
        warmup=WARMUP,
        duration=DURATION,
        seed=SEED,
        telemetry=TelemetryConfig(events=False, sample_interval=SAMPLE_INTERVAL),
    )
    print(
        f"Default system, think time {THINK_TIME:.0f}, "
        f"sampled every {SAMPLE_INTERVAL:.0f} time units\n"
    )
    for policy in ("LOCAL", "LERT"):
        report = run(config, policy, spec)
        series = queue_series(report.timeline)
        csv_path = report.write_timeline(f"timeline_{policy.lower()}.csv")
        print(f"{policy}: W = {report.results.mean_waiting_time:.2f}")
        print(ascii_timeline(series))
        print(
            f"  mean cross-site queue gap: {imbalance(series):.2f}  "
            f"(timeline written to {csv_path})\n"
        )
    print(
        "LERT's shading stays even across the site rows while LOCAL's "
        "streaks — dynamic allocation converts cross-site imbalance into "
        "lower waiting time."
    )


if __name__ == "__main__":
    main()
