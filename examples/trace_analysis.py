"""Drilling into a run with the query tracer.

The aggregate metrics say *how well* a policy did; the tracer says *why*.
This example runs LERT on the paper's defaults, then uses
:class:`repro.sim.trace.QueryTracer` to answer questions the summary
cannot: which queries waited longest and where, how remote execution's
transfer delays break down, and how the two classes' waits compare per
site.

Run:  python examples/trace_analysis.py
"""

from collections import Counter

from repro import DistributedDatabase, make_policy, paper_defaults
from repro.sim.trace import QueryTracer


def main() -> None:
    config = paper_defaults()
    system = DistributedDatabase(config, make_policy("LERT"), seed=21)
    tracer = QueryTracer()
    tracer.attach(system)
    results = system.run(warmup=1000.0, duration=6000.0)
    print(results)
    print(f"traced {len(tracer)} query records\n")

    print("Ten slowest queries:")
    print(" qid      class  home->exec   waited   service  reads-equiv")
    for record in tracer.slowest(10):
        route = f"{record.home_site}->{record.execution_site}"
        print(
            f" {record.qid:7d}  {record.class_name:5s}  {route:10s} "
            f"{record.waiting:8.2f}  {record.service:8.2f}"
            f"  {record.service / (1 + 0.5):10.1f}"
        )
    print()

    print("Mean waiting by class and execution site:")
    for class_name in ("io", "cpu"):
        row = []
        for site in range(config.num_sites):
            records = [
                r for r in tracer.by_site(site) if r.class_name == class_name
            ]
            mean = (
                sum(r.waiting for r in records) / len(records) if records else 0.0
            )
            row.append(f"{mean:6.2f}")
        print(f"  {class_name:4s} " + " ".join(row))
    print()

    remote = tracer.remote_records()
    if remote:
        out = sum(r.transfer_out_delay for r in remote) / len(remote)
        back = sum(r.return_delay for r in remote) / len(remote)
        print(
            f"Remote queries: {len(remote)} "
            f"(avg outbound delay {out:.2f}, avg return delay {back:.2f})"
        )
    moves = Counter(
        (r.home_site, r.execution_site) for r in remote
    ).most_common(5)
    print("Most common transfer routes:", moves)


if __name__ == "__main__":
    main()
