"""Setup shim so the package installs on environments without PEP 660 support."""
from setuptools import setup

setup()
