"""repro — Dynamic Task Allocation in a Distributed Database System.

A complete reproduction of Carey, Livny & Lu's ICDCS 1985 paper
(UW–Madison TR #556): a discrete-event simulation of a fully-replicated
distributed database system, the four query-allocation policies the paper
studies (LOCAL, BNQ, BNQRD, LERT), an exact multiclass Mean Value Analysis
substrate for the optimal-allocation study, and a harness that regenerates
every table of the paper's evaluation.

Quick start::

    from repro import RunSpec, TelemetryConfig, run, paper_defaults

    report = run(
        paper_defaults(),
        "LERT",
        RunSpec(seed=7, telemetry=TelemetryConfig(sample_interval=100.0)),
    )
    print(report.results)
    report.write_timeline("timeline.csv")

or, driving the system object directly::

    from repro import DistributedDatabase, paper_defaults, make_policy

    system = DistributedDatabase(paper_defaults(), make_policy("LERT"), seed=7)
    results = system.run(warmup=3000, duration=15000)
    print(results)

Subpackages:

* :mod:`repro.sim` — discrete-event simulation kernel (DISS-equivalent).
* :mod:`repro.queueing` — closed multiclass queueing networks and MVA.
* :mod:`repro.model` — the distributed database system model.
* :mod:`repro.policies` — the allocation policies.
* :mod:`repro.analysis` — the §3 optimal-allocation study (WIF/FIF).
* :mod:`repro.experiments` — table-regeneration harness.
* :mod:`repro.extensions` — future-work features (stale load info,
  query migration, partial replication).
* :mod:`repro.telemetry` — typed event bus, metrics registry, timeline
  sampler, exporters, query-lifecycle tracing, and the allocation
  decision audit (see ``docs/telemetry.md``).
* :mod:`repro.faults` — deterministic fault injection: declarative
  :class:`FaultPlan`, degraded-mode query life cycle, availability
  metrics (see ``docs/faults.md``).
* :mod:`repro.runner` — the :func:`run`/:func:`execute` facade shared by
  the library API and the experiment harness.
* :mod:`repro.workloads` — pluggable workloads: the paper's closed
  terminals (the default) plus open arrival processes with admission
  control (see ``docs/workloads.md``).

Fault-injection quick start::

    from repro import FaultPlan, RandomOutages, RunSpec, run, paper_defaults

    plan = FaultPlan(random_outages=(RandomOutages(mtbf=2000.0, mttr=50.0),))
    report = run(paper_defaults(), "BNQ", RunSpec(seed=7, faults=plan))
    print(report.availability)

Open-workload quick start::

    from repro import AdmissionControl, PoissonOpen, RunSpec, WorkloadSpec
    from repro import run, paper_defaults

    spec = WorkloadSpec(
        arrivals=PoissonOpen(rate=0.08),
        admission=AdmissionControl(max_pending=32),
    )
    report = run(paper_defaults(), "LERT", RunSpec(seed=7, workload=spec))
    print(report.results.workload)

Tracing quick start::

    from repro import RunSpec, TelemetryConfig, run, paper_defaults

    spec = RunSpec(seed=7, telemetry=TelemetryConfig(spans=True, decisions=True))
    report = run(paper_defaults(), "BNQRD", spec)
    report.write_spans("trace.json")        # Chrome trace-event JSON
    report.write_decisions("decisions.jsonl")
    print(report.results.decisions)         # staleness/regret summary
"""

from repro.faults.plan import (
    FaultPlan,
    LoadBoardOutage,
    MessageFaults,
    RandomOutages,
    SiteOutage,
)
from repro.model.config import (
    NetworkSpec,
    QueryClassSpec,
    SiteSpec,
    SystemConfig,
    paper_classes,
    paper_defaults,
)
from repro.model.metrics import (
    AvailabilitySummary,
    SystemResults,
    WorkloadSummary,
)
from repro.model.serialization import (
    load_fault_plan,
    load_workload_spec,
    save_fault_plan,
    save_workload_spec,
)
from repro.model.system import DistributedDatabase
from repro.model.view import SystemView
from repro.policies.base import AllocationPolicy, LegacyPolicyAdapter
from repro.policies.registry import available_policies, make_policy
from repro.runner import RunReport, RunSpec, execute, run
from repro.telemetry import (
    DecisionAudit,
    DecisionRecord,
    DecisionSummary,
    EventBus,
    EventLog,
    KernelProfiler,
    Span,
    SpanCollector,
    SpanSummary,
    TelemetryConfig,
    TelemetrySession,
)
from repro.workloads import (
    AdmissionControl,
    ArrivalProcess,
    ClosedTerminals,
    DiurnalRate,
    MMPP,
    PoissonOpen,
    TraceDriven,
    WorkloadError,
    WorkloadSpec,
)

__version__ = "1.4.0"

__all__ = [
    "DistributedDatabase",
    "SystemConfig",
    "SiteSpec",
    "NetworkSpec",
    "QueryClassSpec",
    "SystemResults",
    "AvailabilitySummary",
    "paper_classes",
    "paper_defaults",
    "AllocationPolicy",
    "LegacyPolicyAdapter",
    "SystemView",
    "make_policy",
    "available_policies",
    "FaultPlan",
    "SiteOutage",
    "RandomOutages",
    "MessageFaults",
    "LoadBoardOutage",
    "save_fault_plan",
    "load_fault_plan",
    "WorkloadSpec",
    "WorkloadSummary",
    "WorkloadError",
    "AdmissionControl",
    "ArrivalProcess",
    "ClosedTerminals",
    "PoissonOpen",
    "MMPP",
    "DiurnalRate",
    "TraceDriven",
    "save_workload_spec",
    "load_workload_spec",
    "RunSpec",
    "RunReport",
    "run",
    "execute",
    "EventBus",
    "EventLog",
    "TelemetryConfig",
    "TelemetrySession",
    "Span",
    "SpanCollector",
    "SpanSummary",
    "DecisionAudit",
    "DecisionRecord",
    "DecisionSummary",
    "KernelProfiler",
    "__version__",
]
