"""Single-run CLI: ``python -m repro`` runs one scenario and exports it.

The experiment CLI (``repro-experiments``) regenerates whole tables;
this entry point runs *one* configured system once and writes whatever
observability artifacts were requested — the typed event stream, the
sampled timeline, the query-lifecycle trace (Chrome trace-event JSON,
loadable in Perfetto), and the allocation decision audit (JSONL)::

    python -m repro --policy BNQRD --seed 7 \\
        --trace-spans trace.json --decision-audit decisions.jsonl
    python -m repro --policy LERT --faults plan.json --events run.jsonl
    python -m repro --policy RANDOM --workload open.json \\
        --sample-interval 50 --timeline timeline.csv

All exports are byte-deterministic: the same invocation writes the same
bytes, and ``--jobs``-parallel experiment replays of the same seed
produce the same streams (see ``docs/telemetry.md``).

The run summary (one :class:`~repro.model.metrics.SystemResults` line)
goes to stdout; everything else goes to the files you name.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.model.config import paper_defaults
from repro.model.serialization import load_fault_plan, load_workload_spec
from repro.runner import RunSpec, run
from repro.telemetry.session import TelemetryConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Run the paper's distributed-database model once under a "
            "chosen allocation policy and export its telemetry."
        ),
    )
    parser.add_argument(
        "--policy", default="BNQRD", help="allocation policy name (default: BNQRD)"
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--warmup", type=float, default=3000.0, help="warmup time discarded"
    )
    parser.add_argument(
        "--duration", type=float, default=15000.0, help="measurement window"
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help="install a fault plan (written by repro.save_fault_plan)",
    )
    parser.add_argument(
        "--workload",
        default=None,
        metavar="PLAN.json",
        help="drive the run with a workload spec (repro.save_workload_spec)",
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="OUT.jsonl",
        help="write the typed event stream as JSONL",
    )
    parser.add_argument(
        "--timeline",
        default=None,
        metavar="OUT.csv",
        help="write the sampled timeline (requires --sample-interval > 0)",
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=0.0,
        metavar="DT",
        help="timeline sampling cadence in simulated time (0 disables)",
    )
    parser.add_argument(
        "--trace-spans",
        default=None,
        metavar="OUT.json",
        help=(
            "write the query-lifecycle trace as Chrome trace-event JSON "
            "(open it at https://ui.perfetto.dev)"
        ),
    )
    parser.add_argument(
        "--decision-audit",
        default=None,
        metavar="OUT.jsonl",
        help=(
            "write one JSONL record per allocation decision (staleness, "
            "seen vs true loads, ex-post regret)"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.timeline is not None and args.sample_interval <= 0:
        parser.error("--timeline requires --sample-interval > 0")

    wants_telemetry = (
        args.events is not None
        or args.sample_interval > 0
        or args.trace_spans is not None
        or args.decision_audit is not None
    )
    telemetry = (
        TelemetryConfig(
            events=args.events is not None,
            sample_interval=args.sample_interval,
            spans=args.trace_spans is not None,
            decisions=args.decision_audit is not None,
        )
        if wants_telemetry
        else None
    )
    spec = RunSpec(
        warmup=args.warmup,
        duration=args.duration,
        seed=args.seed,
        telemetry=telemetry,
        faults=None if args.faults is None else load_fault_plan(args.faults),
        workload=(
            None if args.workload is None else load_workload_spec(args.workload)
        ),
    )
    report = run(paper_defaults(), args.policy, spec)

    if args.events is not None:
        report.write_events(args.events)
    if args.timeline is not None:
        report.write_timeline(args.timeline)
    if args.trace_spans is not None:
        report.write_spans(args.trace_spans)
    if args.decision_audit is not None:
        report.write_decisions(args.decision_audit)

    print(report.results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
