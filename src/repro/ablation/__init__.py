"""Declarative ablation studies (ROADMAP item 3).

A *study* is a frozen :class:`~repro.ablation.spec.StudySpec`: one
baseline run (:class:`~repro.ablation.spec.BaselineRun`) plus a set of
*components*, each listing the variants that toggle or re-range that
component while everything else stays at baseline.  The spec expands
deterministically into a grid of content-addressed runs
(:func:`~repro.ablation.grid.expand`; run IDs are the parallel runner's
cache keys), executes through the parallel runner with byte-identical
serial vs ``--jobs N`` results (:func:`~repro.ablation.study.run_study`),
and renders a ranked per-component importance report
(:func:`~repro.ablation.report.render_study_report`).

Typical use::

    from repro.ablation import build_study, run_study, render_study_report
    from repro.experiments import STANDARD, StudyContext

    spec = build_study("core", STANDARD)
    outcome = run_study(spec, context=StudyContext(jobs=4))
    print(render_study_report(outcome))

or, from a committed spec file::

    repro-experiments study studies/core.json --jobs 4

See ``docs/ablation.md`` for the spec format, the run-ID scheme, and the
report columns.
"""

from repro.ablation.catalog import build_study, study_names
from repro.ablation.grid import BASELINE_LABEL, StudyCell, StudyGrid, expand
from repro.ablation.report import (
    ComponentImportance,
    VariantEffect,
    metric_delta_pct,
    rank_components,
    render_study_report,
    variant_effects,
)
from repro.ablation.spec import (
    BaselineRun,
    Component,
    StudySpec,
    Variant,
    load_study_spec,
    save_study_spec,
    study_spec_from_dict,
    study_spec_to_dict,
)
from repro.ablation.study import (
    CellOutcome,
    MetricSet,
    StudyOutcome,
    run_study,
)

__all__ = [
    "BaselineRun",
    "Variant",
    "Component",
    "StudySpec",
    "study_spec_to_dict",
    "study_spec_from_dict",
    "save_study_spec",
    "load_study_spec",
    "BASELINE_LABEL",
    "StudyCell",
    "StudyGrid",
    "expand",
    "MetricSet",
    "CellOutcome",
    "StudyOutcome",
    "run_study",
    "VariantEffect",
    "ComponentImportance",
    "metric_delta_pct",
    "variant_effects",
    "rank_components",
    "render_study_report",
    "build_study",
    "study_names",
]
