"""Built-in studies: the repository's ablations as committed specs.

Each builder returns a frozen :class:`~repro.ablation.spec.StudySpec`
parameterized only by run settings (and, for the legacy sweeps, their
original knobs), so the committed JSON under ``studies/`` is exactly
``build_study(name, settings_for(scale))`` — ``tools/gen_studies.py
--check`` pins that equivalence in CI.

* ``core`` — the A1–A4 component-importance study: one baseline (LERT on
  the paper's configuration) against the disk-organization toggle (A1),
  load-information staleness (A2), the MVA response-time estimator (A3),
  and the allocation-information ladder LOCAL → RANDOM → BNQ → BNQRD
  (the simulation-side counterpart of A4's tie-break question, whose
  exact tie-break comparison is analytic — see
  ``repro.analysis.improvement``).
* ``stale-info`` / ``disk-organization`` / ``update-fraction`` /
  ``heterogeneity`` / ``subnet-scaling`` — the legacy
  :mod:`repro.experiments.ablations` sweeps, re-expressed; the sweep
  functions now expand these specs instead of hand-assembling tasks.
* ``smoke`` — a seconds-long study (tiny runs; fault and open-workload
  variants included) for CI's cache-determinism check.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.ablation.spec import BaselineRun, Component, StudySpec, Variant
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.faults.plan import FaultPlan, SiteOutage
from repro.model.config import DISK_SHARED, paper_defaults
from repro.workloads.arrivals import PoissonOpen
from repro.workloads.spec import AdmissionControl, WorkloadSpec


def core_study(settings: RunSettings = STANDARD) -> StudySpec:
    """The A1–A4 component-importance study (committed as studies/core.json)."""
    return StudySpec(
        name="core",
        title="Core component importance (A1-A4)",
        description=(
            "One-at-a-time ablation of the reproduction's modeling "
            "choices against the LERT baseline: disk-queue organization "
            "(A1), load-information staleness (A2), the MVA estimator "
            "(A3), and how much allocation information the policy uses "
            "(the LOCAL/RANDOM/BNQ/BNQRD ladder; A4's exact tie-break "
            "comparison is analytic and lives in repro.analysis)."
        ),
        metric="response_time",
        config=paper_defaults(),
        baseline=BaselineRun(policy="LERT"),
        settings=settings,
        components=(
            Component(
                name="disk-organization",
                description="per-disk FCFS queues vs one shared queue (A1)",
                variants=(
                    Variant(
                        name="shared-queue",
                        config_patches=(("disk_organization", DISK_SHARED),),
                    ),
                ),
            ),
            Component(
                name="load-info-staleness",
                description="periodically refreshed load snapshots (A2)",
                variants=tuple(
                    Variant(
                        name=f"refresh-{interval:g}",
                        system_kind="stale",
                        system_kwargs=(("refresh_interval", interval),),
                    )
                    for interval in (25.0, 100.0, 400.0)
                ),
            ),
            Component(
                name="estimator",
                description="heuristic LERT estimate vs exact MVA (A3)",
                variants=(Variant(name="lert-mva", policy="LERT-MVA"),),
            ),
            Component(
                name="allocation-information",
                description=(
                    "how much load information the allocator uses "
                    "(none / random / queue depth / randomized depth)"
                ),
                variants=(
                    Variant(name="local", policy="LOCAL"),
                    Variant(name="random", policy="RANDOM"),
                    Variant(name="bnq", policy="BNQ"),
                    Variant(name="bnqrd", policy="BNQRD"),
                ),
            ),
        ),
    )


def stale_info_study(
    settings: RunSettings = STANDARD,
    intervals: Tuple[float, ...] = (0.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0),
    policy: str = "LERT",
) -> StudySpec:
    """The staleness sweep: informed policy vs LOCAL as snapshots age."""
    return StudySpec(
        name="stale-info",
        title="Load-information staleness (A2)",
        description=(
            f"{policy} on periodically refreshed load snapshots, against "
            "an uninformed LOCAL baseline; the collapse interval is the "
            "first refresh interval at which staleness costs more than "
            "the information is worth."
        ),
        metric="waiting_time",
        config=paper_defaults(),
        baseline=BaselineRun(policy="LOCAL"),
        settings=settings,
        components=(
            Component(
                name="load-information",
                description="snapshot refresh interval (0 = always current)",
                variants=tuple(
                    Variant(
                        name=f"refresh-{interval:g}",
                        policy=policy,
                        system_kind="stale",
                        system_kwargs=(("refresh_interval", interval),),
                    )
                    for interval in intervals
                ),
            ),
        ),
    )


def disk_organization_study_spec(
    settings: RunSettings = STANDARD,
    policies: Tuple[str, ...] = ("LOCAL", "BNQ", "LERT"),
) -> StudySpec:
    """The A1 sweep: every policy under both disk organizations."""
    variants = []
    for policy in policies[1:]:
        variants.append(Variant(name=f"per_disk-{policy}", policy=policy))
    for policy in policies:
        variants.append(
            Variant(
                name=f"shared-{policy}",
                policy=policy,
                config_patches=(("disk_organization", DISK_SHARED),),
            )
        )
    return StudySpec(
        name="disk-organization",
        title="Disk organization (A1)",
        description=(
            "Per-disk FCFS queues (the paper's Figure 2) vs one shared "
            "multi-server disk queue, for every policy."
        ),
        metric="waiting_time",
        config=paper_defaults(),
        baseline=BaselineRun(policy=policies[0]),
        settings=settings,
        components=(
            Component(
                name="disk-organization",
                description="disk-queue organization x policy grid",
                variants=tuple(variants),
            ),
        ),
    )


def update_fraction_study(
    settings: RunSettings = STANDARD,
    fractions: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.4),
) -> StudySpec:
    """The read-only-footnote sweep: update propagation vs the benefit."""
    variants = []
    for fraction in fractions:
        for policy in ("LOCAL", "LERT"):
            if fraction == fractions[0] and policy == "LOCAL":
                continue  # the baseline cell
            variants.append(
                Variant(
                    name=f"f{fraction:g}-{policy}",
                    policy=policy,
                    system_kind="updates",
                    system_kwargs=(("update_prob", fraction),),
                )
            )
    return StudySpec(
        name="update-fraction",
        title="Update fraction (read-only assumption relaxed)",
        description=(
            "LOCAL and LERT as a growing fraction of queries propagate "
            "asynchronous replica updates."
        ),
        metric="waiting_time",
        config=paper_defaults(),
        baseline=BaselineRun(
            policy="LOCAL",
            system_kind="updates",
            system_kwargs=(("update_prob", fractions[0]),),
        ),
        settings=settings,
        components=(
            Component(
                name="update-fraction",
                description="update probability x policy grid",
                variants=tuple(variants),
            ),
        ),
    )


def heterogeneity_study_spec(
    settings: RunSettings = STANDARD,
    speed_factors: Tuple[float, ...] = (0.5, 0.5, 1.0, 1.0, 2.0, 2.0),
) -> StudySpec:
    """The homogeneity-assumption sweep: policies on unequal CPUs."""
    factors = tuple(float(f) for f in speed_factors)
    return StudySpec(
        name="heterogeneity",
        title="Heterogeneous CPU speeds",
        description=(
            "Policies on a fleet with unequal CPU speeds; response time "
            "is compared because heterogeneity changes realized service "
            "times."
        ),
        metric="response_time",
        config=paper_defaults(num_sites=len(factors)),
        baseline=BaselineRun(
            policy="LOCAL",
            system_kind="heterogeneous",
            system_kwargs=(("cpu_speed_factors", factors),),
        ),
        settings=settings,
        components=(
            Component(
                name="allocation-policy",
                description="who knows about the speed difference",
                variants=(
                    Variant(name="bnq", policy="BNQ"),
                    Variant(name="lert", policy="LERT"),
                    Variant(name="lert-het", policy="LERT-HET"),
                ),
            ),
        ),
    )


def subnet_scaling_study(
    settings: RunSettings = STANDARD,
    site_counts: Tuple[int, ...] = (2, 4, 6, 8, 10),
) -> StudySpec:
    """Table 11's sweep on the shared ring vs a point-to-point mesh."""
    variants = []
    for subnet in ("ring", "mesh"):
        for num_sites in site_counts:
            for policy in ("LOCAL", "LERT"):
                if (
                    subnet == "ring"
                    and num_sites == site_counts[0]
                    and policy == "LOCAL"
                ):
                    continue  # the baseline cell
                variants.append(
                    Variant(
                        name=f"{subnet}-{num_sites}-{policy}",
                        policy=policy,
                        config_patches=(
                            ("num_sites", num_sites),
                            ("network.subnet_kind", subnet),
                        ),
                    )
                )
    return StudySpec(
        name="subnet-scaling",
        title="Subnet scaling (ring vs mesh)",
        description=(
            "Table 11's site-count sweep on the paper's shared ring and "
            "on a point-to-point mesh whose capacity grows with the "
            "fleet, separating channel congestion from the allocation "
            "benefit."
        ),
        metric="waiting_time",
        config=paper_defaults(num_sites=site_counts[0]).with_network(
            subnet_kind="ring"
        ),
        baseline=BaselineRun(policy="LOCAL"),
        settings=settings,
        components=(
            Component(
                name="subnet-scaling",
                description="subnet kind x site count x policy grid",
                variants=tuple(variants),
            ),
        ),
    )


#: Run settings of the CI smoke study: seconds, not minutes.
SMOKE_SETTINGS = RunSettings(warmup=100.0, duration=400.0, replications=1)


def smoke_study(settings: RunSettings = SMOKE_SETTINGS) -> StudySpec:
    """A seconds-long study exercising every cell flavor (CI smoke)."""
    config = paper_defaults(num_sites=3, mpl=5)
    return StudySpec(
        name="smoke",
        title="CI smoke study",
        description=(
            "Tiny runs covering the policy, fault, and open-workload "
            "cell flavors; CI runs it twice through the cache and "
            "asserts the second pass is all hits with a byte-identical "
            "report."
        ),
        metric="response_time",
        config=config,
        baseline=BaselineRun(policy="LERT"),
        settings=settings,
        components=(
            Component(
                name="allocation",
                description="uninformed allocation",
                variants=(Variant(name="local", policy="LOCAL"),),
            ),
            Component(
                name="faults",
                description="one mid-run site outage",
                variants=(
                    Variant(
                        name="site-outage",
                        faults=FaultPlan(
                            site_outages=(
                                SiteOutage(site=1, at=200.0, duration=100.0),
                            )
                        ),
                    ),
                ),
            ),
            Component(
                name="workload",
                description="open Poisson arrivals with admission control",
                variants=(
                    Variant(
                        name="open-poisson",
                        workload=WorkloadSpec(
                            arrivals=PoissonOpen(rate=0.03),
                            admission=AdmissionControl(max_pending=8),
                        ),
                    ),
                ),
            ),
        ),
    )


_BUILDERS: Dict[str, Callable[[RunSettings], StudySpec]] = {
    "core": core_study,
    "stale-info": stale_info_study,
    "disk-organization": disk_organization_study_spec,
    "update-fraction": update_fraction_study,
    "heterogeneity": heterogeneity_study_spec,
    "subnet-scaling": subnet_scaling_study,
    "smoke": smoke_study,
}


def study_names() -> Tuple[str, ...]:
    """Names of the built-in studies, in catalog order."""
    return tuple(_BUILDERS)


def build_study(name: str, settings: RunSettings = STANDARD) -> StudySpec:
    """Build one built-in study at the given run settings.

    The smoke study ignores *settings* scale conventions and always uses
    its own tiny :data:`SMOKE_SETTINGS` unless explicitly overridden —
    call ``smoke_study(settings)`` directly for that.
    """
    if name == "smoke":
        return smoke_study()
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown study {name!r}; choose from {', '.join(_BUILDERS)}"
        ) from None
    return builder(settings)


__all__ = [
    "SMOKE_SETTINGS",
    "core_study",
    "stale_info_study",
    "disk_organization_study_spec",
    "update_fraction_study",
    "heterogeneity_study_spec",
    "subnet_scaling_study",
    "smoke_study",
    "build_study",
    "study_names",
]
