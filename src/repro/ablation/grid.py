"""Deterministic expansion of a study spec into content-addressed runs.

:func:`expand` turns a :class:`~repro.ablation.spec.StudySpec` into a
:class:`StudyGrid`: one :class:`StudyCell` for the baseline plus one per
(component, variant), each holding the cell's
:class:`~repro.experiments.parallel.ReplicationTask` list — the same
task objects the parallel runner executes, so each cell's *run IDs* are
exactly the tasks' content-addressed cache keys
(:meth:`~repro.experiments.parallel.ReplicationTask.key`).  Two
consequences:

* Expansion is a pure function of the spec: the grid — including every
  run ID — is byte-identical across processes and machines (the golden
  snapshot test pins this).
* The result cache dedupes across studies for free: any cell whose
  (config, policy, seed, ...) matches a previous run, in *any* study or
  table experiment, is answered from cache.

Replication ``r`` of every cell uses ``settings.seed_for(r)``, so all
variants face an identical query stream (common random numbers) and the
report's deltas are CRN-paired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ablation.spec import Component, StudySpec, Variant
from repro.experiments.parallel import ReplicationTask
from repro.experiments.sweep import set_config_parameter

#: Label of the baseline cell (component/variant labels are
#: ``"<component>:<variant>"``, which cannot collide with this).
BASELINE_LABEL = "baseline"


@dataclass(frozen=True)
class StudyCell:
    """One grid cell: a labelled run with its replication tasks.

    Attributes:
        label: ``"baseline"`` or ``"<component>:<variant>"``.
        component: Owning component name (``None`` for the baseline).
        variant: Variant name (``None`` for the baseline).
        tasks: One :class:`~repro.experiments.parallel.ReplicationTask`
            per replication, in replication order.
    """

    label: str
    component: Optional[str]
    variant: Optional[str]
    tasks: Tuple[ReplicationTask, ...]

    @property
    def run_ids(self) -> Tuple[str, ...]:
        """Content-addressed run IDs, one per replication."""
        return tuple(task.key() for task in self.tasks)


@dataclass(frozen=True)
class StudyGrid:
    """The full expansion of one study."""

    spec: StudySpec
    baseline: StudyCell
    cells: Tuple[StudyCell, ...]

    def all_cells(self) -> Tuple[StudyCell, ...]:
        """Baseline first, then every variant cell in spec order."""
        return (self.baseline,) + self.cells

    def all_tasks(self) -> List[ReplicationTask]:
        """Every task of the grid, in cell order (runner input)."""
        return [task for cell in self.all_cells() for task in cell.tasks]

    def cell(self, label: str) -> StudyCell:
        """Look up one cell by label (including ``"baseline"``)."""
        for candidate in self.all_cells():
            if candidate.label == label:
                return candidate
        raise KeyError(f"study {self.spec.name!r} has no cell {label!r}")

    def run_ids(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """``(label, run IDs)`` for every cell — the snapshot surface."""
        return tuple(
            (cell.label, cell.run_ids) for cell in self.all_cells()
        )


def _cell_tasks(
    spec: StudySpec, variant: Optional[Variant]
) -> Tuple[ReplicationTask, ...]:
    """The replication tasks of one cell (baseline when *variant* is None)."""
    config = spec.config
    policy = spec.baseline.policy
    system_kind = spec.baseline.system_kind
    system_kwargs = spec.baseline.system_kwargs
    faults = spec.settings.faults
    workload = spec.settings.workload
    if variant is not None:
        for dotted_path, value in variant.config_patches:
            config = set_config_parameter(config, dotted_path, value)
        if variant.policy is not None:
            policy = variant.policy
        if variant.system_kind is not None:
            system_kind = variant.system_kind
            system_kwargs = variant.system_kwargs
        if variant.faults is not None:
            faults = variant.faults
        if variant.workload is not None:
            workload = variant.workload
    settings = spec.settings
    return tuple(
        ReplicationTask(
            config=config,
            policy=policy,
            seed=settings.seed_for(replication),
            warmup=settings.warmup,
            duration=settings.duration,
            system_kind=system_kind,
            system_kwargs=system_kwargs,
            faults=faults,
            workload=workload,
        )
        for replication in range(settings.replications)
    )


def _variant_cell(
    spec: StudySpec, component: Component, variant: Variant
) -> StudyCell:
    try:
        tasks = _cell_tasks(spec, variant)
    except ValueError as exc:
        # ReplicationTask rejects faults/workloads on extension system
        # kinds; point the error at the offending cell.
        raise ValueError(
            f"study {spec.name!r}, component {component.name!r}, "
            f"variant {variant.name!r}: {exc}"
        ) from exc
    return StudyCell(
        label=f"{component.name}:{variant.name}",
        component=component.name,
        variant=variant.name,
        tasks=tasks,
    )


def expand(spec: StudySpec) -> StudyGrid:
    """Expand *spec* into its grid (pure; no simulation happens here)."""
    baseline = StudyCell(
        label=BASELINE_LABEL,
        component=None,
        variant=None,
        tasks=_cell_tasks(spec, None),
    )
    cells = tuple(
        _variant_cell(spec, component, variant)
        for component in spec.components
        for variant in component.variants
    )
    return StudyGrid(spec=spec, baseline=baseline, cells=cells)


__all__ = ["BASELINE_LABEL", "StudyCell", "StudyGrid", "expand"]
