"""Ranked per-component importance reports for executed studies.

Every variant's metrics are compared against the study baseline with
CRN-paired seeds (the grid gives replication *r* of every cell the same
master seed), so the deltas here are paired differences, not noise
between independent runs.

Delta convention: positive Δ% means the variant *improves* on the
baseline for that metric.  Response time, waiting time, fairness
(max/min ratio — 1.0 is perfect), and shed rate improve downward, so
their delta is the paper's ΔW-style :func:`~repro.experiments.report.improvement_pct`;
availability improves upward, so its delta is the signed relative gain.

A component's *importance* is the largest absolute primary-metric delta
any of its variants produces — "how much can toggling this component
move the headline number".  Components are ranked by descending
importance with the component name as tie-break, which (with the
deterministic execution contract) makes the rendered report a pure
function of the spec: byte-identical serial vs parallel, run to run,
machine to machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ablation.study import CellOutcome, StudyOutcome
from repro.experiments.report import TextTable, improvement_pct

#: Metrics where a smaller value beats the baseline.
_LOWER_IS_BETTER = frozenset(
    {"response_time", "waiting_time", "fairness", "shed_rate"}
)


def metric_delta_pct(
    metric: str, value: Optional[float], base: Optional[float]
) -> Optional[float]:
    """Signed improvement of *value* over *base* (positive = better).

    ``None`` when either side is undefined (e.g. fairness without
    multiple query classes).
    """
    if value is None or base is None:
        return None
    if metric in _LOWER_IS_BETTER:
        return improvement_pct(value, base)
    # Higher is better (availability): signed relative gain, with the
    # same zero-baseline guard as improvement_pct.
    if base == 0:
        return 0.0
    return 100.0 * (value - base) / base


@dataclass(frozen=True)
class VariantEffect:
    """One variant's paired comparison against the baseline."""

    component: str
    variant: str
    label: str
    cell: CellOutcome
    delta_pct: Optional[float]  # primary metric; positive = better


@dataclass(frozen=True)
class ComponentImportance:
    """One component's ranked summary."""

    component: str
    description: str
    importance: float  # max |primary-metric delta| across variants
    largest_effect: VariantEffect


def variant_effects(outcome: StudyOutcome) -> Tuple[VariantEffect, ...]:
    """Every variant's effect vs baseline, in spec order."""
    metric = outcome.spec.metric
    base = outcome.baseline.metrics.value(metric)
    effects: List[VariantEffect] = []
    for cell in outcome.cells:
        assert cell.component is not None and cell.variant is not None
        effects.append(
            VariantEffect(
                component=cell.component,
                variant=cell.variant,
                label=cell.label,
                cell=cell,
                delta_pct=metric_delta_pct(
                    metric, cell.metrics.value(metric), base
                ),
            )
        )
    return tuple(effects)


def rank_components(outcome: StudyOutcome) -> Tuple[ComponentImportance, ...]:
    """Components ranked by descending importance (name tie-break)."""
    effects = variant_effects(outcome)
    ranked: List[ComponentImportance] = []
    for component in outcome.spec.components:
        component_effects = [
            e for e in effects if e.component == component.name
        ]
        largest = max(
            component_effects,
            key=lambda e: (
                abs(e.delta_pct) if e.delta_pct is not None else 0.0
            ),
        )
        importance = (
            abs(largest.delta_pct) if largest.delta_pct is not None else 0.0
        )
        ranked.append(
            ComponentImportance(
                component=component.name,
                description=component.description,
                importance=importance,
                largest_effect=largest,
            )
        )
    ranked.sort(key=lambda c: (-c.importance, c.component))
    return tuple(ranked)


def _fmt_optional(value: Optional[float], spec: str = ".2f") -> str:
    return "-" if value is None else format(value, spec)


def _fmt_delta(delta: Optional[float]) -> str:
    return "-" if delta is None else f"{delta:+.1f}"


def _metrics_line(cell: CellOutcome) -> str:
    m = cell.metrics
    return (
        f"response {m.response_time:.2f}  waiting {m.waiting_time:.2f}  "
        f"fairness {_fmt_optional(m.fairness)}  "
        f"availability {m.availability:.4f}  "
        f"shed {100.0 * m.shed_rate:.2f}%"
    )


def render_study_report(outcome: StudyOutcome, *, markdown: bool = False) -> str:
    """The full study report (ranking + per-variant table) as text.

    A pure function of *outcome*: identical outcomes render to identical
    bytes.  ``markdown=True`` renders the tables as GitHub-flavored
    Markdown through the same cell-formatting path.
    """
    spec = outcome.spec
    baseline = spec.baseline
    ranking = TextTable(
        ["rank", "component", "importance |d%|", "largest effect", "d%"],
        title=f"Ranked component importance (primary metric: {spec.metric})",
    )
    for rank, entry in enumerate(rank_components(outcome), start=1):
        ranking.add_row(
            str(rank),
            entry.component,
            f"{entry.importance:.1f}",
            entry.largest_effect.variant,
            _fmt_delta(entry.largest_effect.delta_pct),
        )

    variants = TextTable(
        [
            "component",
            "variant",
            "response",
            "d resp %",
            "waiting",
            "d wait %",
            "fairness",
            "avail",
            "shed %",
        ],
        title="Per-variant effects vs baseline (positive d% = better)",
    )
    base_metrics = outcome.baseline.metrics
    for effect in variant_effects(outcome):
        m = effect.cell.metrics
        variants.add_row(
            effect.component,
            effect.variant,
            f"{m.response_time:.2f}",
            _fmt_delta(
                metric_delta_pct(
                    "response_time",
                    m.response_time,
                    base_metrics.response_time,
                )
            ),
            f"{m.waiting_time:.2f}",
            _fmt_delta(
                metric_delta_pct(
                    "waiting_time", m.waiting_time, base_metrics.waiting_time
                )
            ),
            _fmt_optional(m.fairness),
            f"{m.availability:.4f}",
            f"{100.0 * m.shed_rate:.2f}",
        )

    render = (
        (lambda table: table.render_markdown())
        if markdown
        else (lambda table: table.render())
    )
    lines = [
        f"Study: {spec.title}",
        f"Cells: {1 + len(outcome.cells)} "
        f"({spec.settings.replications} replication(s) each, "
        f"base seed {spec.settings.base_seed})",
        f"Baseline: policy={baseline.policy} kind={baseline.system_kind}",
        f"Baseline metrics: {_metrics_line(outcome.baseline)}",
        "",
        render(ranking),
        "",
        render(variants),
    ]
    if spec.description:
        lines.insert(1, spec.description)
    return "\n".join(lines)


__all__ = [
    "VariantEffect",
    "ComponentImportance",
    "metric_delta_pct",
    "variant_effects",
    "rank_components",
    "render_study_report",
]
