"""Study specifications: the frozen, serializable *what* of an ablation.

A :class:`StudySpec` is a baseline run plus components:

* :class:`BaselineRun` — the reference point: a system config, a policy,
  and (for the extension systems) a system kind with its constructor
  kwargs.
* :class:`Variant` — one alternative setting of a component, expressed
  as a *delta* against the baseline: an optional policy override,
  optional system-kind override, dotted-path config patches (see
  :func:`~repro.experiments.sweep.set_config_parameter`), and optional
  fault-plan / workload overrides.
* :class:`Component` — a named dimension with one or more variants; the
  study runs each variant with every *other* component at baseline
  (one-at-a-time ablation).
* :class:`StudySpec` — name, title, primary metric, baseline,
  components, and the :class:`~repro.experiments.runconfig.RunSettings`
  that give every cell its CRN-paired replication seeds.

Everything is frozen and validated at construction, and round-trips
through JSON (:func:`study_spec_to_dict` / :func:`study_spec_from_dict`,
:func:`save_study_spec` / :func:`load_study_spec`) — the committed specs
under ``studies/`` are exactly this format.  This module is therefore in
reprolint's serialized-dataclass scope: every field of these dataclasses
must appear as a string literal below, so a new field cannot silently
stay out of the on-disk format.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from repro.experiments.parallel import SYSTEM_KINDS
from repro.experiments.runconfig import RunSettings
from repro.experiments.sweep import set_config_parameter
from repro.faults.plan import FaultPlan
from repro.model.config import SystemConfig
from repro.model.serialization import (
    config_from_dict,
    config_to_dict,
    fault_plan_from_dict,
    fault_plan_to_dict,
    workload_spec_from_dict,
    workload_spec_to_dict,
)
from repro.workloads.spec import WorkloadSpec

#: Version tag of the serialized study-spec format.
STUDY_FORMAT_VERSION = 1

#: Metrics a study may rank by (the report shows all of them).
STUDY_METRICS = (
    "response_time",
    "waiting_time",
    "fairness",
    "availability",
    "shed_rate",
)


def _freeze(value: Any) -> Any:
    """Recursively turn lists into tuples (JSON round-trip normalization)."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, tuple):
        return tuple(_freeze(item) for item in value)
    return value


def _frozen_pairs(pairs: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalize ``(name, value)`` pair sequences to a hashable tuple."""
    return tuple((str(name), _freeze(value)) for name, value in pairs)


@dataclass(frozen=True)
class BaselineRun:
    """The study's reference run (everything a variant deltas against).

    Attributes:
        policy: Registered allocation policy of the baseline.
        system_kind: Simulation system class
            (:data:`~repro.experiments.parallel.SYSTEM_KINDS`).
        system_kwargs: Extra constructor kwargs of the extension system,
            as sorted ``(name, value)`` pairs.
    """

    policy: str
    system_kind: str = "standard"
    system_kwargs: Tuple[Tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.system_kind not in SYSTEM_KINDS:
            raise ValueError(
                f"unknown system kind {self.system_kind!r}; "
                f"expected one of {SYSTEM_KINDS}"
            )
        object.__setattr__(
            self, "system_kwargs", tuple(sorted(_frozen_pairs(self.system_kwargs)))
        )


@dataclass(frozen=True)
class Variant:
    """One alternative setting of a component, as a delta vs baseline.

    Unset fields (``None`` / empty) inherit the baseline; set fields
    override it.  ``system_kind`` and ``system_kwargs`` override
    *together*: naming a kind replaces both the baseline kind and its
    kwargs.

    Attributes:
        name: Variant name, unique within its component.
        policy: Optional policy override.
        system_kind: Optional system-kind override.
        system_kwargs: Constructor kwargs of the overriding kind
            (ignored unless ``system_kind`` is set).
        config_patches: ``(dotted_path, value)`` pairs applied to the
            baseline config in order (see
            :func:`~repro.experiments.sweep.set_config_parameter`).
        faults: Optional fault-plan override for this variant's runs.
        workload: Optional workload override for this variant's runs.
    """

    name: str
    policy: Optional[str] = None
    system_kind: Optional[str] = None
    system_kwargs: Tuple[Tuple[str, Any], ...] = field(default=())
    config_patches: Tuple[Tuple[str, Any], ...] = field(default=())
    faults: Optional[FaultPlan] = None
    workload: Optional[WorkloadSpec] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a variant needs a non-empty name")
        if self.system_kind is not None and self.system_kind not in SYSTEM_KINDS:
            raise ValueError(
                f"unknown system kind {self.system_kind!r}; "
                f"expected one of {SYSTEM_KINDS}"
            )
        if self.system_kwargs and self.system_kind is None:
            raise ValueError(
                f"variant {self.name!r} sets system_kwargs without "
                "system_kind; kwargs only apply with an overriding kind"
            )
        object.__setattr__(
            self, "system_kwargs", tuple(sorted(_frozen_pairs(self.system_kwargs)))
        )
        object.__setattr__(
            self, "config_patches", _frozen_pairs(self.config_patches)
        )
        if (
            self.policy is None
            and self.system_kind is None
            and not self.config_patches
            and self.faults is None
            and self.workload is None
        ):
            raise ValueError(
                f"variant {self.name!r} is identical to the baseline; "
                "give it at least one override"
            )


@dataclass(frozen=True)
class Component:
    """One ablated dimension: a name and its alternative settings."""

    name: str
    description: str
    variants: Tuple[Variant, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a component needs a non-empty name")
        if not self.variants:
            raise ValueError(
                f"component {self.name!r} needs at least one variant"
            )
        object.__setattr__(self, "variants", tuple(self.variants))
        names = [variant.name for variant in self.variants]
        if len(set(names)) != len(names):
            raise ValueError(
                f"component {self.name!r} has duplicate variant names"
            )


@dataclass(frozen=True)
class StudySpec:
    """A complete, frozen ablation study.

    Attributes:
        name: Study identifier (file stem of the committed spec).
        title: Human heading used by the report.
        description: One-paragraph summary of what the study probes.
        metric: Primary metric the importance ranking sorts by (one of
            :data:`STUDY_METRICS`); the report still shows every metric.
        config: Baseline system configuration.
        baseline: Baseline policy / system kind (see :class:`BaselineRun`).
        settings: Run lengths, replication count, base seed, and the
            study-wide fault plan / workload (variant overrides win).
        components: The ablated dimensions.
    """

    name: str
    title: str
    description: str
    metric: str
    config: SystemConfig
    baseline: BaselineRun
    settings: RunSettings
    components: Tuple[Component, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a study needs a non-empty name")
        if self.metric not in STUDY_METRICS:
            raise ValueError(
                f"unknown study metric {self.metric!r}; "
                f"expected one of {STUDY_METRICS}"
            )
        if not self.components:
            raise ValueError("a study needs at least one component")
        object.__setattr__(self, "components", tuple(self.components))
        names = [component.name for component in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"study {self.name!r} has duplicate component names")
        # Fail fast on patch typos before burning simulation time: every
        # variant's patches must apply cleanly to the baseline config.
        for component in self.components:
            for variant in component.variants:
                config = self.config
                for dotted_path, value in variant.config_patches:
                    config = set_config_parameter(config, dotted_path, value)

    def component(self, name: str) -> Component:
        """Look up one component by name."""
        for candidate in self.components:
            if candidate.name == name:
                return candidate
        raise KeyError(f"study {self.name!r} has no component {name!r}")


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------


def _pairs_to_json(pairs: Tuple[Tuple[str, Any], ...]) -> list:
    return [[name, _unfreeze(value)] for name, value in pairs]


def _unfreeze(value: Any) -> Any:
    """Tuples back to lists so ``json.dump`` accepts the tree."""
    if isinstance(value, tuple):
        return [_unfreeze(item) for item in value]
    return value


def _baseline_to_dict(baseline: BaselineRun) -> Dict[str, Any]:
    return {
        "policy": baseline.policy,
        "system_kind": baseline.system_kind,
        "system_kwargs": _pairs_to_json(baseline.system_kwargs),
    }


def _baseline_from_dict(data: Dict[str, Any]) -> BaselineRun:
    return BaselineRun(
        policy=data["policy"],
        system_kind=data.get("system_kind", "standard"),
        system_kwargs=_frozen_pairs(data.get("system_kwargs", ())),
    )


def _variant_to_dict(variant: Variant) -> Dict[str, Any]:
    data: Dict[str, Any] = {"name": variant.name}
    if variant.policy is not None:
        data["policy"] = variant.policy
    if variant.system_kind is not None:
        data["system_kind"] = variant.system_kind
        data["system_kwargs"] = _pairs_to_json(variant.system_kwargs)
    if variant.config_patches:
        data["config_patches"] = _pairs_to_json(variant.config_patches)
    if variant.faults is not None:
        data["faults"] = fault_plan_to_dict(variant.faults)
    if variant.workload is not None:
        data["workload"] = workload_spec_to_dict(variant.workload)
    return data


def _variant_from_dict(data: Dict[str, Any]) -> Variant:
    faults = data.get("faults")
    workload = data.get("workload")
    return Variant(
        name=data["name"],
        policy=data.get("policy"),
        system_kind=data.get("system_kind"),
        system_kwargs=_frozen_pairs(data.get("system_kwargs", ())),
        config_patches=_frozen_pairs(data.get("config_patches", ())),
        faults=None if faults is None else fault_plan_from_dict(faults),
        workload=None if workload is None else workload_spec_from_dict(workload),
    )


def _component_to_dict(component: Component) -> Dict[str, Any]:
    return {
        "name": component.name,
        "description": component.description,
        "variants": [_variant_to_dict(v) for v in component.variants],
    }


def _component_from_dict(data: Dict[str, Any]) -> Component:
    return Component(
        name=data["name"],
        description=data.get("description", ""),
        variants=tuple(_variant_from_dict(v) for v in data["variants"]),
    )


def _settings_to_dict(settings: RunSettings) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "warmup": settings.warmup,
        "duration": settings.duration,
        "replications": settings.replications,
        "base_seed": settings.base_seed,
    }
    if settings.faults is not None:
        data["faults"] = fault_plan_to_dict(settings.faults)
    if settings.workload is not None:
        data["workload"] = workload_spec_to_dict(settings.workload)
    return data


def _settings_from_dict(data: Dict[str, Any]) -> RunSettings:
    faults = data.get("faults")
    workload = data.get("workload")
    return RunSettings(
        warmup=data["warmup"],
        duration=data["duration"],
        replications=data["replications"],
        base_seed=data["base_seed"],
        faults=None if faults is None else fault_plan_from_dict(faults),
        workload=None if workload is None else workload_spec_from_dict(workload),
    )


def study_spec_to_dict(spec: StudySpec) -> Dict[str, Any]:
    """Flatten a :class:`StudySpec` into JSON-compatible primitives."""
    return {
        "format_version": STUDY_FORMAT_VERSION,
        "name": spec.name,
        "title": spec.title,
        "description": spec.description,
        "metric": spec.metric,
        "config": config_to_dict(spec.config),
        "baseline": _baseline_to_dict(spec.baseline),
        "settings": _settings_to_dict(spec.settings),
        "components": [_component_to_dict(c) for c in spec.components],
    }


def study_spec_from_dict(data: Dict[str, Any]) -> StudySpec:
    """Rebuild a :class:`StudySpec` from :func:`study_spec_to_dict` output."""
    version = data.get("format_version", STUDY_FORMAT_VERSION)
    if version != STUDY_FORMAT_VERSION:
        raise ValueError(
            f"unsupported study format_version {version!r} "
            f"(this build reads {STUDY_FORMAT_VERSION})"
        )
    return StudySpec(
        name=data["name"],
        title=data.get("title", data["name"]),
        description=data.get("description", ""),
        metric=data["metric"],
        config=config_from_dict(data["config"]),
        baseline=_baseline_from_dict(data["baseline"]),
        settings=_settings_from_dict(data["settings"]),
        components=tuple(_component_from_dict(c) for c in data["components"]),
    )


def save_study_spec(
    spec: StudySpec, path: Union[str, pathlib.Path]
) -> None:
    """Write a study spec as pretty-printed JSON (stable key order)."""
    text = json.dumps(study_spec_to_dict(spec), indent=2, sort_keys=True)
    pathlib.Path(path).write_text(text + "\n", encoding="utf-8")


def load_study_spec(path: Union[str, pathlib.Path]) -> StudySpec:
    """Read a study spec written by :func:`save_study_spec`."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return study_spec_from_dict(data)


__all__ = [
    "STUDY_FORMAT_VERSION",
    "STUDY_METRICS",
    "BaselineRun",
    "Variant",
    "Component",
    "StudySpec",
    "study_spec_to_dict",
    "study_spec_from_dict",
    "save_study_spec",
    "load_study_spec",
]
