"""Study execution: grid in, per-cell metrics out.

:func:`run_study` expands a spec, pushes *all* cells' replication tasks
through the parallel runner as one batch (so ``--jobs N`` fans the whole
study out, duplicates are simulated once, and the cache answers
anything already run), then folds each cell's replications into a
:class:`MetricSet`.

Determinism contract: every aggregate uses :func:`math.fsum` (whose
correctly rounded result is permutation invariant), and the runner
returns results in task order regardless of scheduling — so a study's
outcome, and therefore its rendered report, is byte-identical between
serial and parallel execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.ablation.grid import StudyCell, StudyGrid, expand
from repro.ablation.spec import StudySpec
from repro.experiments.context import StudyContext
from repro.model.metrics import SystemResults


@dataclass(frozen=True)
class MetricSet:
    """The study metrics of one cell, averaged over its replications.

    Attributes:
        response_time: Mean query response time (waiting + service).
        waiting_time: Mean per-cycle waiting time (the paper's W).
        fairness: Max/min normalized waiting across classes (``None``
            when no replication produced a defined fairness).
        availability: Fraction of offered queries that completed rather
            than being lost to site failures: ``completions /
            (completions + queries_lost)``.  1.0 for fault-free runs.
        shed_rate: Fraction of offered arrivals dropped by admission
            control: ``shed / offered``.  0.0 for closed-workload runs.
        subnet_utilization: Mean communication-subnet utilization.
        completions: Total completed queries across replications.
    """

    response_time: float
    waiting_time: float
    fairness: Optional[float]
    availability: float
    shed_rate: float
    subnet_utilization: float
    completions: int

    def value(self, metric: str) -> Optional[float]:
        """One metric by study-metric name (see ``STUDY_METRICS``)."""
        if metric not in {
            "response_time",
            "waiting_time",
            "fairness",
            "availability",
            "shed_rate",
            "subnet_utilization",
        }:
            raise KeyError(f"unknown study metric {metric!r}")
        return getattr(self, metric)


def _avg(values: Sequence[float]) -> float:
    return math.fsum(values) / len(values)


def metrics_from_runs(runs: Sequence[SystemResults]) -> MetricSet:
    """Fold one cell's replication results into a :class:`MetricSet`."""
    if not runs:
        raise ValueError("need at least one replication to aggregate")
    fairness_values = [r.fairness for r in runs if r.fairness is not None]
    # Integer totals: int sums are exact, hence permutation invariant.
    completions = sum(r.completions for r in runs)  # reprolint: disable=RL004
    lost = sum(  # reprolint: disable=RL004
        r.availability.queries_lost for r in runs if r.availability is not None
    )
    offered = sum(  # reprolint: disable=RL004
        r.workload.offered for r in runs if r.workload is not None
    )
    shed = sum(  # reprolint: disable=RL004
        r.workload.shed for r in runs if r.workload is not None
    )
    attempted = completions + lost
    return MetricSet(
        response_time=_avg([r.mean_response_time for r in runs]),
        waiting_time=_avg([r.mean_waiting_time for r in runs]),
        fairness=_avg(fairness_values) if fairness_values else None,
        availability=1.0 if attempted == 0 else completions / attempted,
        shed_rate=0.0 if offered == 0 else shed / offered,
        subnet_utilization=_avg([r.subnet_utilization for r in runs]),
        completions=completions,
    )


@dataclass(frozen=True)
class CellOutcome:
    """One executed cell: identity, run IDs, metrics, raw replications."""

    label: str
    component: Optional[str]
    variant: Optional[str]
    run_ids: Tuple[str, ...]
    metrics: MetricSet
    per_replication: Tuple[SystemResults, ...]


@dataclass(frozen=True)
class StudyOutcome:
    """A fully executed study."""

    spec: StudySpec
    baseline: CellOutcome
    cells: Tuple[CellOutcome, ...]

    def cell(self, label: str) -> CellOutcome:
        """Look up one executed cell by label (including ``"baseline"``)."""
        if label == self.baseline.label:
            return self.baseline
        for candidate in self.cells:
            if candidate.label == label:
                return candidate
        raise KeyError(f"study {self.spec.name!r} has no cell {label!r}")

    def cells_for(self, component: str) -> Tuple[CellOutcome, ...]:
        """Every executed cell of one component, in spec order."""
        return tuple(c for c in self.cells if c.component == component)


def _cell_outcome(
    cell: StudyCell, runs: Sequence[SystemResults]
) -> CellOutcome:
    return CellOutcome(
        label=cell.label,
        component=cell.component,
        variant=cell.variant,
        run_ids=cell.run_ids,
        metrics=metrics_from_runs(runs),
        per_replication=tuple(runs),
    )


def run_grid(
    grid: StudyGrid, *, context: StudyContext = StudyContext()
) -> StudyOutcome:
    """Execute an already-expanded grid (see :func:`run_study`)."""
    results = context.run_tasks(grid.all_tasks())
    outcomes: List[CellOutcome] = []
    cursor = 0
    for cell in grid.all_cells():
        count = len(cell.tasks)
        outcomes.append(_cell_outcome(cell, results[cursor : cursor + count]))
        cursor += count
    return StudyOutcome(
        spec=grid.spec, baseline=outcomes[0], cells=tuple(outcomes[1:])
    )


def run_study(
    spec: StudySpec, *, context: StudyContext = StudyContext()
) -> StudyOutcome:
    """Expand and execute *spec* under *context*.

    One flat task batch covers the whole study, so ``context.jobs``
    parallelizes across cells *and* replications, and ``context.cache``
    answers any previously simulated cell.  The outcome is byte-identical
    for any ``jobs`` value.
    """
    return run_grid(expand(spec), context=context)


__all__ = [
    "MetricSet",
    "metrics_from_runs",
    "CellOutcome",
    "StudyOutcome",
    "run_grid",
    "run_study",
]
