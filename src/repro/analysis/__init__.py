"""Analytic study of optimal allocations (the paper's §3) and capacity."""

from repro.analysis.capacity import (
    CapacityCurve,
    capacity_curve,
    fluctuation_headroom,
    local_response_time,
    local_throughput,
)

from repro.analysis.improvement import (
    PAPER_CPU_PAIRS,
    PAPER_DISK_TIME,
    PAPER_LOADS,
    PAPER_NUM_DISKS,
    ImprovementCell,
    grid_summary,
    improvement_grid,
)
from repro.analysis.optimal import (
    AllocationStudy,
    add_arrival,
    bnq_candidates,
    query_difference,
    site_population,
    study_arrival,
    system_fairness,
    system_waiting,
    validate_load,
)
from repro.analysis.site_network import (
    SiteModel,
    normalized_waiting_per_cycle,
    solve_site,
    waiting_per_cycle,
)

__all__ = [
    "CapacityCurve",
    "capacity_curve",
    "fluctuation_headroom",
    "local_response_time",
    "local_throughput",
    "SiteModel",
    "solve_site",
    "waiting_per_cycle",
    "normalized_waiting_per_cycle",
    "AllocationStudy",
    "study_arrival",
    "bnq_candidates",
    "system_fairness",
    "system_waiting",
    "query_difference",
    "add_arrival",
    "site_population",
    "validate_load",
    "PAPER_LOADS",
    "PAPER_CPU_PAIRS",
    "PAPER_DISK_TIME",
    "PAPER_NUM_DISKS",
    "ImprovementCell",
    "improvement_grid",
    "grid_summary",
]
