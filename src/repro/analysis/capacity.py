"""Analytic capacity curves: the LOCAL half of Table 10 without simulation.

Under the LOCAL policy the sites are independent, so one site is a closed
multiclass network — terminals (think time Z), per-disk FCFS stations, and
the PS CPU — solvable with approximate MVA in microseconds.  That gives an
analytic response-time curve RT(mpl) and therefore the Table 10 capacity
question ("largest mpl with E[RT] <= bound") for LOCAL in closed form.

The class populations are not fixed in the real workload (each terminal
draws its query's class per submission); we use the standard expected-value
split: ``mpl * class_prob_k`` customers of class ``k``, rounded to keep the
total at ``mpl``.  The comparison against the simulated LOCAL curve is
itself a validation test.

Why only LOCAL?  A fixed-population queueing model *cannot* price dynamic
allocation: with exactly ``mpl`` customers pinned to every site there is no
load imbalance to exploit.  The benefit the paper measures lives entirely
in the stochastic fluctuations of per-site populations — which is the deep
reason the authors needed a simulation study for §5 after the analytic §3.
:func:`fluctuation_headroom` quantifies this by comparing the analytic
fixed-population response against the simulated LOCAL response: the gap is
what population randomness costs, an upper-bound flavor of what dynamic
allocation can claw back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.model.config import SystemConfig
from repro.queueing.amva import solve_amva
from repro.queueing.network import ClosedNetwork
from repro.queueing.stations import Station, StationKind


def _site_network(config: SystemConfig) -> ClosedNetwork:
    """The closed network of one DB site under LOCAL."""
    classes = config.classes
    spec = config.site
    per_disk_demand = tuple(
        c.num_reads * spec.disk_time / spec.num_disks for c in classes
    )
    disks = tuple(
        Station(f"disk{d}", StationKind.FCFS, per_disk_demand)
        for d in range(spec.num_disks)
    )
    cpu_demand = tuple(c.num_reads * c.page_cpu_time for c in classes)
    cpu = Station("cpu", StationKind.PS, cpu_demand)
    think = (spec.think_time,) * len(classes)
    names = tuple(c.name for c in classes)
    return ClosedNetwork((*disks, cpu), names, think)


def _split_population(mpl: int, probs: Tuple[float, ...]) -> Tuple[int, ...]:
    """Integer class populations matching mpl and the class mix."""
    raw = [mpl * p for p in probs]
    floors = [int(x) for x in raw]
    remainder = mpl - sum(floors)
    order = sorted(
        range(len(raw)), key=lambda k: raw[k] - floors[k], reverse=True
    )
    for k in order[:remainder]:
        floors[k] += 1
    return tuple(floors)


def local_response_time(config: SystemConfig, mpl: Optional[int] = None) -> float:
    """Analytic mean response time of one site under LOCAL.

    The workload-average of the per-class cycle times, weighted by class
    throughput shares (a completing query is class ``k`` with probability
    proportional to ``X_k``).
    """
    mpl = mpl if mpl is not None else config.site.mpl
    if mpl < 1:
        raise ValueError("mpl must be >= 1")
    network = _site_network(config)
    population = _split_population(mpl, config.class_probs)
    solution = solve_amva(network, population)
    weights = solution.throughputs
    total = sum(weights)
    if total == 0:
        return 0.0
    return sum(
        weights[k] * solution.cycle_time(k) for k in range(len(weights))
    ) / total


def local_throughput(config: SystemConfig, mpl: Optional[int] = None) -> float:
    """Analytic per-site query throughput under LOCAL."""
    mpl = mpl if mpl is not None else config.site.mpl
    network = _site_network(config)
    population = _split_population(mpl, config.class_probs)
    return sum(solve_amva(network, population).throughputs)


@dataclass(frozen=True)
class CapacityCurve:
    """Analytic RT(mpl) curve for the LOCAL policy."""

    mpl_grid: Tuple[int, ...]
    local: Tuple[float, ...]

    def max_mpl(self, bound: float) -> int:
        """Largest mpl in the grid whose analytic RT is within *bound*."""
        feasible = [m for m, rt in zip(self.mpl_grid, self.local) if rt <= bound]
        return max(feasible) if feasible else 0


def capacity_curve(
    config: SystemConfig, mpl_grid: Tuple[int, ...] = tuple(range(5, 41))
) -> CapacityCurve:
    """Analytic LOCAL response-time curve over an mpl grid."""
    local: List[float] = []
    for mpl in mpl_grid:
        local.append(local_response_time(config, mpl))
    return CapacityCurve(mpl_grid=tuple(mpl_grid), local=tuple(local))


def fluctuation_headroom(
    config: SystemConfig, simulated_local_response: float, mpl: Optional[int] = None
) -> float:
    """Fraction of LOCAL's simulated response attributable to fluctuations.

    The analytic model holds the population at exactly ``mpl`` per site;
    the simulation lets it fluctuate with think times.  The relative gap
    ``(simulated - analytic) / simulated`` estimates how much response time
    comes from population randomness — the raw material dynamic allocation
    works with.  (Negative values just mean the fixed-population model is
    pessimistic at this operating point; both signs are informative.)
    """
    analytic = local_response_time(config, mpl)
    if simulated_local_response <= 0:
        return 0.0
    return (simulated_local_response - analytic) / simulated_local_response


__all__ = [
    "local_response_time",
    "local_throughput",
    "CapacityCurve",
    "capacity_curve",
    "fluctuation_headroom",
]
