"""The paper's Table 5/6 grids: WIF and FIF over arrival conditions.

Tables 5 and 6 evaluate ``WIF(L, i)`` and ``FIF(L, i)`` on a grid of

* six arrival conditions — a 2×4 load matrix ``L`` plus the arriving
  query's class ``i`` ∈ {1, 2}, with total populations increasing left to
  right (4, 4, 5, 5, 6, 8); and
* six CPU-demand pairs ``cpu_1/cpu_2`` (the printed row labels).

The load matrices below are transcribed from the paper's tables.  The
table images are OCR-damaged in places; where a digit was ambiguous we chose
the reading consistent with the stated total-population progression, and the
reading is recorded here as data rather than buried in code.  EXPERIMENTS.md
discusses the transcription.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.optimal import AllocationStudy, study_arrival
from repro.analysis.site_network import SiteModel

#: The six load matrices of Tables 5/6 (rows = classes, columns = sites).
#: Totals: 4, 4, 5, 5, 6, 8 — matching "the total number of queries in the
#: system ... increases from left to right in the table".
#:
#: Transcription note: the OCR of the paper's table header reads condition 2
#: as class-1 row (1,1,1,0) / class-2 row (0,0,0,1).  Reproducing Table 6
#: with that reading produces the condition-2 FIF columns with the two class
#: columns *swapped* relative to the paper, while the class-swapped matrix
#: below reproduces the paper's printed values almost exactly (see
#: EXPERIMENTS.md, experiment E2) — so the swapped reading is used.
PAPER_LOADS: Tuple[Tuple[Tuple[int, ...], ...], ...] = (
    ((1, 1, 0, 0), (0, 0, 1, 1)),
    ((0, 0, 0, 1), (1, 1, 1, 0)),
    ((2, 1, 0, 0), (0, 0, 1, 1)),
    ((2, 1, 1, 0), (0, 0, 0, 1)),
    ((2, 1, 2, 0), (0, 0, 0, 1)),
    ((2, 1, 1, 0), (0, 1, 1, 2)),
)

#: The six CPU-demand pairs (cpu_1, cpu_2) used as row labels in Tables 5/6.
PAPER_CPU_PAIRS: Tuple[Tuple[float, float], ...] = (
    (0.05, 0.50),
    (0.05, 1.00),
    (0.10, 1.00),
    (0.10, 2.00),
    (0.50, 2.00),
    (0.50, 2.50),
)

#: Hardware constants of the §3 study (its Table 4).
PAPER_DISK_TIME = 1.0
PAPER_NUM_DISKS = 2


@dataclass(frozen=True)
class ImprovementCell:
    """One cell of a Table 5/6 reproduction."""

    cpu_pair: Tuple[float, float]
    load: Tuple[Tuple[int, ...], ...]
    class_index: int
    study: AllocationStudy

    @property
    def wif(self) -> float:
        return self.study.wif

    @property
    def fif(self) -> float:
        return self.study.fif


def improvement_grid(
    loads: Sequence[Tuple[Tuple[int, ...], ...]] = PAPER_LOADS,
    cpu_pairs: Sequence[Tuple[float, float]] = PAPER_CPU_PAIRS,
    disk_time: float = PAPER_DISK_TIME,
    num_disks: int = PAPER_NUM_DISKS,
    tie_break: str = "average",
) -> List[List[ImprovementCell]]:
    """Evaluate the full WIF/FIF grid.

    Returns a row per CPU pair; each row holds ``2 * len(loads)`` cells —
    for every load matrix, first the class-1 arrival then the class-2
    arrival, matching the paper's column layout.
    """
    grid: List[List[ImprovementCell]] = []
    for cpu_pair in cpu_pairs:
        model = SiteModel(
            cpu_means=cpu_pair, disk_time=disk_time, num_disks=num_disks
        )
        row: List[ImprovementCell] = []
        for load in loads:
            for class_index in (0, 1):
                study = study_arrival(model, load, class_index, tie_break=tie_break)
                row.append(ImprovementCell(cpu_pair, load, class_index, study))
        grid.append(row)
    return grid


def grid_summary(grid: List[List[ImprovementCell]]) -> dict:
    """Aggregate statistics over a grid (used by tests and EXPERIMENTS.md)."""
    wifs = [cell.wif for row in grid for cell in row]
    fifs = [cell.fif for row in grid for cell in row]
    conflicts = [cell.study.conflicting_goals for row in grid for cell in row]
    return {
        "cells": len(wifs),
        "wif_mean": sum(wifs) / len(wifs),
        "wif_max": max(wifs),
        "wif_over_10pct": sum(1 for w in wifs if w > 0.10) / len(wifs),
        "fif_mean": sum(fifs) / len(fifs),
        "fif_max": max(fifs),
        "conflict_fraction": sum(conflicts) / len(conflicts),
    }


__all__ = [
    "PAPER_LOADS",
    "PAPER_CPU_PAIRS",
    "PAPER_DISK_TIME",
    "PAPER_NUM_DISKS",
    "ImprovementCell",
    "improvement_grid",
    "grid_summary",
]
