"""Optimal single-allocation analysis: the machinery behind Tables 5 and 6.

Given a load distribution matrix ``L`` (classes × sites) and an arriving
query of class ``i`` — the paper's ``A(L, i)`` — this module enumerates
every possible allocation of the arrival, evaluates each resulting system
with exact MVA, and extracts:

* ``W(j)`` — the arriving query's expected waiting time per cycle if
  allocated to site ``j`` (the quantity behind Table 5; the system-wide
  mean is also computed as a diagnostic);
* ``F(j)`` — the system-wide fairness measure after allocating to ``j``:
  the absolute difference of the population-weighted normalized waiting
  times of the two classes;
* the BNQ ("minimal query difference") choice and the optima, giving the
  paper's Waiting Improvement Factor and Fairness Improvement Factor::

      WIF(L,i) = (W_BNQ - W_OPT) / W_BNQ
      FIF(L,i) = (F_BNQ - F_OPT) / F_BNQ
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.site_network import (
    SiteModel,
    normalized_waiting_per_cycle,
    waiting_per_cycle,
)

LoadMatrix = Tuple[Tuple[int, ...], ...]  # [class][site]

#: How BNQ resolves ties among minimal-QD sites in the analytic study.
#: A count-based allocator cannot distinguish tied sites, so its *expected*
#: performance is the average over the tie set — the paper's Table 5/6
#: numbers are consistent with this reading (conditions where every site
#: holds one query still show nonzero WIF).  The other rules quantify the
#: sensitivity of the comparison to the tie assumption (ablation A4).
TIE_AVERAGE = "average"  # expected value over the tied sites (default)
TIE_FIRST = "first"  # lowest site index
TIE_BEST = "best"  # the tied site where the arrival waits least
TIE_WORST = "worst"  # the tied site where the arrival waits most

_TIE_RULES = (TIE_AVERAGE, TIE_FIRST, TIE_BEST, TIE_WORST)


def validate_load(load: Sequence[Sequence[int]]) -> LoadMatrix:
    """Normalize and validate a classes × sites load matrix."""
    matrix = tuple(tuple(int(x) for x in row) for row in load)
    if not matrix or not matrix[0]:
        raise ValueError("load matrix must be non-empty")
    width = len(matrix[0])
    if any(len(row) != width for row in matrix):
        raise ValueError("load matrix rows must have equal length")
    if any(x < 0 for row in matrix for x in row):
        raise ValueError("load matrix entries must be >= 0")
    return matrix


def site_population(load: LoadMatrix, site: int) -> Tuple[int, ...]:
    """Per-class population of one site."""
    return tuple(row[site] for row in load)


def add_arrival(load: LoadMatrix, class_index: int, site: int) -> LoadMatrix:
    """The load matrix after allocating one class-``class_index`` query."""
    return tuple(
        tuple(
            count + (1 if (k == class_index and j == site) else 0)
            for j, count in enumerate(row)
        )
        for k, row in enumerate(load)
    )


def query_difference(load: LoadMatrix) -> int:
    """The paper's QD: max_j n_j − min_j n_j over total site counts."""
    totals = [sum(row[j] for row in load) for j in range(len(load[0]))]
    return max(totals) - min(totals)


def system_waiting(model: SiteModel, load: LoadMatrix) -> float:
    """Mean waiting time per cycle over every query in the system.

    The paper's W̄(L, i) compares allocations by the expected waiting time
    per cycle once steady state is reached; the population-weighted mean
    over all queries captures both the arrival's own wait and the slowdown
    it inflicts on the queries already present.  (This reading reproduces
    Table 5's magnitudes and its stated trend that more queries in the
    system shrink the improvement — a single allocation matters less, in
    relative terms, in a busier system.)
    """
    sites = len(load[0])
    total = sum(sum(row) for row in load)
    if total == 0:
        return 0.0
    acc = 0.0
    for j in range(sites):
        population = site_population(load, j)
        if sum(population) == 0:
            continue
        for k in range(model.class_count):
            if population[k] == 0:
                continue
            acc += population[k] * waiting_per_cycle(model, population, k)
    return acc / total


def system_fairness(model: SiteModel, load: LoadMatrix) -> float:
    """|Ŵ_1 − Ŵ_2| across the whole system under load *load*.

    Each class's normalized waiting time is averaged over its queries
    (population-weighted across sites).  A class with no queries anywhere
    contributes Ŵ = 0, matching the convention that an absent class is not
    discriminated against.
    """
    if model.class_count != 2:
        raise ValueError("the paper's fairness measure needs exactly two classes")
    sites = len(load[0])
    normalized: List[float] = []
    for k in range(model.class_count):
        total = sum(load[k])
        if total == 0:
            normalized.append(0.0)
            continue
        acc = 0.0
        for j in range(sites):
            if load[k][j] == 0:
                continue
            population = site_population(load, j)
            acc += load[k][j] * normalized_waiting_per_cycle(model, population, k)
        normalized.append(acc / total)
    return abs(normalized[0] - normalized[1])


@dataclass(frozen=True)
class AllocationStudy:
    """Every allocation of one arrival A(L, i), fully evaluated.

    Attributes:
        model: The homogeneous site model.
        load: The pre-arrival load matrix.
        class_index: Class of the arriving query (0-based).
        waiting: ``W(j)`` — the arriving query's expected waiting time per
            cycle when allocated to site ``j`` (drives WIF).
        system_waiting: System-wide mean waiting per cycle after each
            allocation (diagnostic alternative reading of W̄).
        fairness: ``F(j)`` — post-allocation system fairness, per site.
        bnq_sites: Sites the minimal-QD (BNQ) rule could select (the tie
            set); a single site when counts are not tied.
        tie_break: The tie rule used for the BNQ-side expectations.
        opt_wait_site: Site minimizing the arrival's waiting time.
        opt_fair_site: Site minimizing the fairness measure.
    """

    model: SiteModel
    load: LoadMatrix
    class_index: int
    waiting: Tuple[float, ...]
    system_waiting: Tuple[float, ...]
    fairness: Tuple[float, ...]
    bnq_sites: Tuple[int, ...]
    tie_break: str
    opt_wait_site: int
    opt_fair_site: int

    def _bnq_value(self, values: Tuple[float, ...]) -> float:
        tied = [values[j] for j in self.bnq_sites]
        if self.tie_break == TIE_AVERAGE:
            return sum(tied) / len(tied)
        if self.tie_break == TIE_FIRST:
            return values[self.bnq_sites[0]]
        if self.tie_break == TIE_BEST:
            return min(tied)
        return max(tied)  # TIE_WORST

    @property
    def waiting_bnq(self) -> float:
        """Expected waiting of the arrival under the minimal-QD rule."""
        return self._bnq_value(self.waiting)

    @property
    def waiting_opt(self) -> float:
        return self.waiting[self.opt_wait_site]

    @property
    def fairness_bnq(self) -> float:
        """Expected post-allocation fairness under the minimal-QD rule."""
        return self._bnq_value(self.fairness)

    @property
    def fairness_opt(self) -> float:
        return self.fairness[self.opt_fair_site]

    @property
    def wif(self) -> float:
        """Waiting Improvement Factor (0 when BNQ happens to be optimal)."""
        if self.waiting_bnq == 0:
            return 0.0
        return (self.waiting_bnq - self.waiting_opt) / self.waiting_bnq

    @property
    def fif(self) -> float:
        """Fairness Improvement Factor."""
        if self.fairness_bnq == 0:
            return 0.0
        return (self.fairness_bnq - self.fairness_opt) / self.fairness_bnq

    @property
    def conflicting_goals(self) -> bool:
        """Whether min-wait and max-fairness pick different sites."""
        return self.opt_wait_site != self.opt_fair_site


def bnq_candidates(load: LoadMatrix) -> Tuple[int, ...]:
    """Sites the 'balance the number of queries' rule could allocate to.

    The minimal-QD rule adds the arrival to a site whose resulting load
    distribution has the smallest query difference.  All sites achieving
    that minimum form the tie set.
    """
    sites = len(load[0])
    diffs = [
        query_difference(add_arrival(load, 0, j)) for j in range(sites)
    ]  # QD depends only on totals, so the class used here is irrelevant
    least = min(diffs)
    return tuple(j for j in range(sites) if diffs[j] == least)


def study_arrival(
    model: SiteModel,
    load: Sequence[Sequence[int]],
    class_index: int,
    tie_break: str = TIE_AVERAGE,
) -> AllocationStudy:
    """Evaluate every allocation of the arrival A(load, class_index)."""
    if tie_break not in _TIE_RULES:
        raise ValueError(f"tie_break must be one of {_TIE_RULES}, got {tie_break!r}")
    matrix = validate_load(load)
    if not 0 <= class_index < model.class_count:
        raise ValueError(f"class_index {class_index} out of range")
    if len(matrix) != model.class_count:
        raise ValueError(
            f"load matrix has {len(matrix)} classes, model has {model.class_count}"
        )
    sites = len(matrix[0])
    waiting: List[float] = []
    system_waits: List[float] = []
    fairness: List[float] = []
    for j in range(sites):
        after = add_arrival(matrix, class_index, j)
        waiting.append(
            waiting_per_cycle(model, site_population(after, j), class_index)
        )
        system_waits.append(system_waiting(model, after))
        fairness.append(system_fairness(model, after))
    opt_wait_site = min(range(sites), key=lambda j: (waiting[j], j))
    opt_fair_site = min(range(sites), key=lambda j: (fairness[j], j))
    return AllocationStudy(
        model=model,
        load=matrix,
        class_index=class_index,
        waiting=tuple(waiting),
        system_waiting=tuple(system_waits),
        fairness=tuple(fairness),
        bnq_sites=bnq_candidates(matrix),
        tie_break=tie_break,
        opt_wait_site=opt_wait_site,
        opt_fair_site=opt_fair_site,
    )


__all__ = [
    "LoadMatrix",
    "TIE_AVERAGE",
    "TIE_FIRST",
    "TIE_BEST",
    "TIE_WORST",
    "validate_load",
    "site_population",
    "add_arrival",
    "query_difference",
    "system_waiting",
    "system_fairness",
    "AllocationStudy",
    "bnq_candidates",
    "study_arrival",
]
