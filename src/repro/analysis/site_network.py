"""Per-site queueing networks for the §3 optimal-allocation study.

In §3 the paper freezes the system: think times and read counts are "large",
message time is zero, and the load distribution matrix ``L = [l_ij]`` (class
``i`` queries at site ``j``) fully describes the state.  Each site is then an
independent closed queueing network:

* the site's ``num_disks`` disks — by default one FCFS station *per disk*
  with uniform random routing (visit ratio ``1/num_disks``, so per-cycle
  demand ``disk_time/num_disks`` at each disk), matching Figure 2's
  separate disk boxes.  Two I/O-bound queries therefore *can* collide on
  the same disk, which is what gives I/O-bound arrivals their nonzero
  improvement factors in Table 5.  A pooled ``M/M/c``-style multi-server
  station is available for the disk-organization ablation (A1);
* "cpu": the PS processor with per-class demand ``cpu_means[i]`` per cycle.

A "cycle" is one read: one disk access followed by one CPU burst.  The Mean
Value algorithm gives each class's expected *waiting time per cycle* at a
site, which is the paper's unit of comparison.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Tuple

from repro.queueing.mva import MVASolution, solve_mva
from repro.queueing.network import ClosedNetwork
from repro.queueing.stations import Station, StationKind


@dataclass(frozen=True)
class SiteModel:
    """Hardware/demand description of one (homogeneous) site.

    Attributes:
        cpu_means: Per-class mean CPU demand per cycle (page).
        disk_time: Mean disk access time per cycle.
        num_disks: Disks per site.
        disk_organization: ``"per_disk"`` (default; one FCFS station per
            disk with uniform routing) or ``"shared"`` (one multi-server
            station) — mirrors :mod:`repro.model.config`.
    """

    cpu_means: Tuple[float, ...]
    disk_time: float = 1.0
    num_disks: int = 2
    disk_organization: str = "per_disk"

    def __post_init__(self) -> None:
        if not self.cpu_means or any(c <= 0 for c in self.cpu_means):
            raise ValueError(f"cpu_means must be positive, got {self.cpu_means}")
        if self.disk_time <= 0:
            raise ValueError("disk_time must be > 0")
        if self.num_disks < 1:
            raise ValueError("num_disks must be >= 1")
        if self.disk_organization not in ("per_disk", "shared"):
            raise ValueError(
                f"disk_organization must be 'per_disk' or 'shared', "
                f"got {self.disk_organization!r}"
            )

    @property
    def class_count(self) -> int:
        return len(self.cpu_means)

    def service_demand(self, class_index: int) -> float:
        """x_i: total service demand per cycle of class *i*."""
        return self.disk_time + self.cpu_means[class_index]

    def network(self) -> ClosedNetwork:
        """The site's closed network (built once, cached)."""
        return _build_network(self)


@functools.lru_cache(maxsize=None)
def _build_network(model: SiteModel) -> ClosedNetwork:
    classes = model.class_count
    names = tuple(f"class{i + 1}" for i in range(classes))
    cpu = Station("cpu", StationKind.PS, tuple(model.cpu_means))
    if model.disk_organization == "shared" and model.num_disks > 1:
        disk = Station(
            "disk",
            StationKind.MULTISERVER,
            (model.disk_time,) * classes,
            servers=model.num_disks,
        )
        return ClosedNetwork((disk, cpu), names)
    per_disk_demand = model.disk_time / model.num_disks
    disks = tuple(
        Station(f"disk{d}", StationKind.FCFS, (per_disk_demand,) * classes)
        for d in range(model.num_disks)
    )
    return ClosedNetwork((*disks, cpu), names)


@functools.lru_cache(maxsize=None)
def solve_site(model: SiteModel, population: Tuple[int, ...]) -> MVASolution:
    """Exact MVA solution of one site at the given per-class population.

    Cached: the allocation study re-solves the same (model, population)
    pairs constantly while enumerating allocations.
    """
    return solve_mva(model.network(), population)


def waiting_per_cycle(
    model: SiteModel, population: Tuple[int, ...], class_index: int
) -> float:
    """Expected queueing time per cycle for one class at one site.

    Zero when the class has no customers at the site (there is nobody to
    experience the wait).
    """
    if population[class_index] == 0:
        return 0.0
    return solve_site(model, population).waiting_time(class_index)


def normalized_waiting_per_cycle(
    model: SiteModel, population: Tuple[int, ...], class_index: int
) -> float:
    """Ŵ per cycle: waiting per cycle over service demand per cycle."""
    return waiting_per_cycle(model, population, class_index) / model.service_demand(
        class_index
    )


__all__ = [
    "SiteModel",
    "solve_site",
    "waiting_per_cycle",
    "normalized_waiting_per_cycle",
]
