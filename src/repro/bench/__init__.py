"""Kernel & system benchmarks with a pinned per-PR perf trajectory.

``python -m repro.bench`` runs a fixed matrix — table-9-style closed
system runs plus a large synthetic kernel stress configuration — and
emits a schema-validated ``BENCH_*.json`` snapshot (events/sec,
wall-clock per case, peak RSS).  The committed snapshot
(``benchmarks/perf/BENCH_6.json``) is the trajectory baseline: the CI
``perf`` job reruns a smoke subset and reports any events/sec regression
beyond the tolerance.

See ``docs/performance.md`` for how to run and read the numbers.
"""

from repro.bench.cases import BENCH_CASES, BenchCase, smoke_cases
from repro.bench.core import (
    BenchReport,
    CaseResult,
    compare_reports,
    run_benchmarks,
)
from repro.bench.schema import BENCH_FORMAT, validate_bench_payload

__all__ = [
    "BENCH_CASES",
    "BENCH_FORMAT",
    "BenchCase",
    "BenchReport",
    "CaseResult",
    "compare_reports",
    "run_benchmarks",
    "smoke_cases",
    "validate_bench_payload",
]
