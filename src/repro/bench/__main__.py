"""``python -m repro.bench`` — run the benchmark matrix, pin the trajectory.

Examples::

    # Full matrix, write the committed snapshot:
    python -m repro.bench --out benchmarks/perf/BENCH_6.json

    # CI smoke subset, gate against the committed trajectory:
    python -m repro.bench --smoke --compare benchmarks/perf/BENCH_6.json

    # Embed a previously measured kernel as the baseline section:
    python -m repro.bench --out BENCH_6.json --baseline-json seed.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.cases import BENCH_CASES, smoke_cases
from repro.bench.core import (
    compare_reports,
    load_payload,
    report_from_payload,
    run_benchmarks,
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the kernel/system benchmark matrix.",
    )
    parser.add_argument(
        "--out", metavar="PATH", help="write the BENCH_*.json snapshot here"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the CI smoke subset (reduced scale) instead of the full matrix",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per case; best wall time wins (default: 3)",
    )
    parser.add_argument(
        "--bench",
        default="BENCH_6",
        help="snapshot identifier written into the JSON (default: BENCH_6)",
    )
    parser.add_argument(
        "--kernel",
        default="current",
        help="label for the kernel under test (e.g. 'seed', 'overhauled')",
    )
    parser.add_argument(
        "--baseline-json",
        metavar="PATH",
        help="embed this previously written snapshot as the baseline section",
    )
    parser.add_argument(
        "--compare",
        metavar="PATH",
        help="compare events/sec against this committed snapshot",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="tolerated fractional events/sec drop for --compare (default: 0.15)",
    )
    args = parser.parse_args(argv)

    # Load reference snapshots *before* the (potentially minutes-long)
    # benchmark run, so a bad path or payload fails fast and cleanly.
    baseline_payload = None
    compare_payload = None
    try:
        if args.baseline_json:
            baseline_payload = load_payload(args.baseline_json)
        if args.compare:
            compare_payload = load_payload(args.compare)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load snapshot: {exc}", file=sys.stderr)
        return 2

    cases = smoke_cases() if args.smoke else BENCH_CASES
    scale = "smoke" if args.smoke else "full"
    report = run_benchmarks(
        cases,
        bench=args.bench,
        kernel=args.kernel,
        scale=scale,
        repeats=args.repeats,
    )

    baseline = None
    if baseline_payload is not None:
        baseline = report_from_payload(baseline_payload)

    if args.out:
        destination = report.write(args.out, baseline=baseline)
        print(f"wrote {destination}")

    if compare_payload is not None:
        regressions = compare_reports(
            report, compare_payload, max_regression=args.max_regression
        )
        if regressions:
            print(
                f"PERF REGRESSION vs {args.compare} "
                f"(tolerance {args.max_regression:.0%}):",
                file=sys.stderr,
            )
            for item in regressions:
                print(
                    f"  {item.name}: {item.current:,.0f} ev/s vs "
                    f"{item.reference:,.0f} ev/s recorded "
                    f"({item.ratio:.2f}x)",
                    file=sys.stderr,
                )
            return 1
        print(
            f"trajectory healthy vs {args.compare} "
            f"(all cases within {args.max_regression:.0%})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
