"""The benchmark matrix: kernel stress + closed- and open-system runs.

Each case is a self-contained callable that builds its model fresh,
runs it, and reports ``(events_fired, wall_seconds)`` with the wall
clock measured around the run only (setup excluded).  Cases come in two
scales: ``full`` (the committed trajectory numbers) and ``smoke`` (the
CI subset, roughly a tenth of the work).

All cases are deterministic: fixed seeds, fixed iteration counts —
the *event count* of every case is a pure function of its definition,
so events/sec differences are wall-clock differences, never workload
drift.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Generator, List, Tuple

from repro.model.config import paper_defaults
from repro.model.system import DistributedDatabase
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator
from repro.sim.process import Hold
from repro.sim.resources import FCFSServer, PSServer
from repro.workloads.arrivals import MMPP
from repro.workloads.spec import AdmissionControl, WorkloadSpec

#: A case runner returns (events_fired, wall_seconds).
CaseRunner = Callable[[], Tuple[int, float]]


@dataclass(frozen=True)
class BenchCase:
    """One entry of the benchmark matrix.

    Attributes:
        name: Stable identifier (keys the trajectory comparison).
        kind: ``"stress"`` (synthetic kernel workload), ``"closed"``
            (a table-9-style closed-system simulation), or ``"open"``
            (an open-arrival storm through the workload subsystem).
        description: One line of what the case exercises.
        run_full: Runner at trajectory scale.
        run_smoke: Runner at CI smoke scale.
    """

    name: str
    kind: str
    description: str
    run_full: CaseRunner
    run_smoke: CaseRunner


def _timed_kernel_run(sim: Simulator) -> Tuple[int, float]:
    """Run *sim* to exhaustion, timing only the event loop."""
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return sim.events_fired, wall


def _stress_mix(workers: int, rounds: int, queue: str = "heap") -> Tuple[int, float]:
    """The large synthetic stress config: holds + PS + FCFS churn.

    ``workers`` processes each loop ``rounds`` times through a hold, a
    PS service, and an FCFS service — the exact command mix of the
    paper's query life cycle, minus the model bookkeeping, so the
    number isolates the kernel hot path (event queue, process resume,
    virtual-time accounting).
    """
    sim = Simulator(seed=1234, queue=queue) if queue != "heap" else Simulator(seed=1234)
    cpu = PSServer(sim, name="cpu")
    disk = FCFSServer(sim, name="disk", servers=2)

    def worker(index: int) -> Generator[object, object, None]:
        spacing = 0.1 + (index % 13) * 0.01
        for _ in range(rounds):
            yield Hold(spacing)
            yield cpu.service(0.05 + (index % 7) * 0.01)
            yield disk.service(0.02 + (index % 5) * 0.005)

    for index in range(workers):
        sim.launch(worker(index), name=f"w{index}")
    return _timed_kernel_run(sim)


def _stress_cancellation(events: int) -> Tuple[int, float]:
    """Heavy schedule/cancel churn: half of all scheduled events retract.

    Exercises the lazy-deletion path of the future-event list — the
    pattern fault injection and PS rescheduling produce at scale.
    """
    sim = Simulator(seed=99)
    batch = 1000

    def _noop() -> None:
        return None

    def churn(remaining: int) -> None:
        live = [
            sim.schedule(float(1 + (i % 17)), _noop, label=None)
            for i in range(batch)
        ]
        for event in live[::2]:
            sim.cancel(event)
        if remaining > 0:
            sim.schedule(0.5, lambda: churn(remaining - 1))

    sim.schedule(0.0, lambda: churn(events // batch - 1))
    return _timed_kernel_run(sim)


def _stress_timer_wheel(processes: int, ticks: int) -> Tuple[int, float]:
    """Dense simultaneous timers: many processes on identical cadences.

    Stresses FIFO tie-breaking among equal-time, equal-priority events —
    the worst case for the heap's comparison path.
    """
    sim = Simulator(seed=7)

    def ticker() -> Generator[object, object, None]:
        for _ in range(ticks):
            yield Hold(1.0)

    for index in range(processes):
        sim.launch(ticker(), name=f"t{index}")
    return _timed_kernel_run(sim)


def _closed_run(policy: str, seed: int, warmup: float, duration: float) -> Tuple[int, float]:
    """A table-9-style closed run at the paper's defaults (MPL 4/site)."""
    system = DistributedDatabase(paper_defaults(), make_policy(policy), seed=seed)
    start = time.perf_counter()
    system.run(warmup, duration)
    wall = time.perf_counter() - start
    return system.sim.events_fired, wall


def _open_storm(
    policy: str,
    seed: int,
    warmup: float,
    duration: float,
    rate: float,
    max_pending: int,
) -> Tuple[int, float]:
    """An MMPP arrival storm: bursty overload through admission control.

    Drives the paper's system with a per-site MMPP whose burst phase
    runs well past saturation, so the run exercises the whole open
    pipeline — thinning, phase tracking, admission, shedding — at the
    admission limit.
    """
    spec = WorkloadSpec(
        arrivals=MMPP(
            rates=(0.2 * rate, 1.8 * rate), mean_holding=(200.0, 200.0)
        ),
        admission=AdmissionControl(max_pending=max_pending),
    )
    system = DistributedDatabase(
        paper_defaults(), make_policy(policy), seed=seed, workload=spec
    )
    start = time.perf_counter()
    system.run(warmup, duration)
    wall = time.perf_counter() - start
    return system.sim.events_fired, wall


def _case(
    name: str,
    kind: str,
    description: str,
    full: CaseRunner,
    smoke: CaseRunner,
) -> BenchCase:
    return BenchCase(
        name=name, kind=kind, description=description, run_full=full, run_smoke=smoke
    )


#: The fixed matrix.  Order is presentation order in reports.
BENCH_CASES: Tuple[BenchCase, ...] = (
    _case(
        "stress_mix",
        "stress",
        "hold + PS + FCFS churn over 400 processes (kernel hot path)",
        lambda: _stress_mix(workers=400, rounds=250),
        lambda: _stress_mix(workers=100, rounds=100),
    ),
    _case(
        "stress_cancellation",
        "stress",
        "schedule/cancel churn, 50% lazy deletions",
        lambda: _stress_cancellation(events=400_000),
        lambda: _stress_cancellation(events=60_000),
    ),
    _case(
        "stress_timer_wheel",
        "stress",
        "dense simultaneous timers (FIFO tie-break worst case)",
        lambda: _stress_timer_wheel(processes=500, ticks=400),
        lambda: _stress_timer_wheel(processes=200, ticks=120),
    ),
    _case(
        "table9_lert",
        "closed",
        "paper defaults, LERT policy (table-9-style closed run)",
        lambda: _closed_run("LERT", seed=42, warmup=1000.0, duration=8000.0),
        lambda: _closed_run("LERT", seed=42, warmup=300.0, duration=1500.0),
    ),
    _case(
        "table9_local",
        "closed",
        "paper defaults, LOCAL policy (no-allocation baseline)",
        lambda: _closed_run("LOCAL", seed=42, warmup=1000.0, duration=8000.0),
        lambda: _closed_run("LOCAL", seed=42, warmup=300.0, duration=1500.0),
    ),
    _case(
        "open_storm_lert",
        "open",
        "MMPP arrival storm past saturation under admission control (LERT)",
        lambda: _open_storm(
            "LERT",
            seed=42,
            warmup=1000.0,
            duration=8000.0,
            rate=0.11,
            max_pending=32,
        ),
        lambda: _open_storm(
            "LERT",
            seed=42,
            warmup=300.0,
            duration=1500.0,
            rate=0.11,
            max_pending=32,
        ),
    ),
)


def smoke_cases() -> Tuple[BenchCase, ...]:
    """The CI smoke subset (currently: every case at smoke scale)."""
    return BENCH_CASES


def case_names() -> List[str]:
    return [case.name for case in BENCH_CASES]


__all__ = ["BenchCase", "BENCH_CASES", "CaseRunner", "case_names", "smoke_cases"]
