"""Benchmark execution: repeats, RSS tracking, snapshots, comparisons."""

from __future__ import annotations

import json
import platform
import resource
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.cases import BENCH_CASES, BenchCase
from repro.bench.schema import BENCH_FORMAT, validate_bench_payload

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CaseResult:
    """Measured outcome of one benchmark case.

    ``wall_s`` is the best (minimum) over ``repeats`` runs — the
    least-noise estimator for throughput-style benchmarks — and
    ``events_per_sec`` is derived from it.  ``peak_rss_kb`` is the
    process-wide high-water mark *after* the case ran (``ru_maxrss`` is
    monotone, so later cases inherit earlier peaks; compare trajectories
    per case name, not across cases).
    """

    name: str
    kind: str
    scale: str
    description: str
    events: int
    wall_s: float
    peak_rss_kb: int
    repeats: int

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "scale": self.scale,
            "description": self.description,
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "peak_rss_kb": self.peak_rss_kb,
            "repeats": self.repeats,
        }


@dataclass(frozen=True)
class BenchReport:
    """A full benchmark run: one :class:`CaseResult` per matrix entry."""

    bench: str
    kernel: str
    scale: str
    results: Tuple[CaseResult, ...]

    def result(self, name: str) -> Optional[CaseResult]:
        for entry in self.results:
            if entry.name == name:
                return entry
        return None

    def to_payload(
        self, baseline: Optional["BenchReport"] = None
    ) -> Dict[str, object]:
        """Assemble the schema-valid ``BENCH_*.json`` payload."""
        payload: Dict[str, object] = {
            "format": BENCH_FORMAT,
            "bench": self.bench,
            "kernel": self.kernel,
            "python": platform.python_version(),
            "platform": f"{sys.platform}-{platform.machine()}",
            "cases": [entry.to_dict() for entry in self.results],
        }
        if baseline is not None:
            payload["baseline"] = {
                "kernel": baseline.kernel,
                "cases": [entry.to_dict() for entry in baseline.results],
            }
            speedup: Dict[str, float] = {}
            for entry in self.results:
                reference = baseline.result(entry.name)
                if reference is not None:
                    speedup[entry.name] = round(
                        entry.events_per_sec / reference.events_per_sec, 3
                    )
            payload["speedup_vs_baseline"] = speedup
        validate_bench_payload(payload)
        return payload

    def write(
        self, path: PathLike, baseline: Optional["BenchReport"] = None
    ) -> Path:
        """Write the snapshot JSON; returns the path written."""
        destination = Path(path)
        destination.write_text(
            json.dumps(self.to_payload(baseline), indent=2) + "\n",
            encoding="utf-8",
        )
        return destination


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (``ru_maxrss`` is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        peak //= 1024
    return int(peak)


def run_case(case: BenchCase, scale: str, repeats: int) -> CaseResult:
    """Measure one case: best wall time over *repeats* fresh runs."""
    runner = case.run_full if scale == "full" else case.run_smoke
    best_wall = float("inf")
    events = 0
    for _ in range(repeats):
        run_events, wall = runner()
        if events and run_events != events:
            raise RuntimeError(
                f"{case.name}: nondeterministic event count "
                f"({run_events} != {events}); benchmark cases must be "
                "pure functions of their definition"
            )
        events = run_events
        if wall < best_wall:
            best_wall = wall
    return CaseResult(
        name=case.name,
        kind=case.kind,
        scale=scale,
        description=case.description,
        events=events,
        wall_s=best_wall,
        peak_rss_kb=_peak_rss_kb(),
        repeats=repeats,
    )


def run_benchmarks(
    cases: Sequence[BenchCase] = BENCH_CASES,
    *,
    bench: str = "BENCH_6",
    kernel: str = "current",
    scale: str = "full",
    repeats: int = 3,
    echo: bool = True,
) -> BenchReport:
    """Run the matrix and return a report (optionally echoing progress)."""
    if scale not in ("full", "smoke"):
        raise ValueError(f"scale must be 'full' or 'smoke', got {scale!r}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    results: List[CaseResult] = []
    for case in cases:
        outcome = run_case(case, scale, repeats)
        results.append(outcome)
        if echo:
            print(
                f"{outcome.name:22s} {outcome.events:>9d} events "
                f"{outcome.wall_s:8.3f}s  "
                f"{outcome.events_per_sec:>12,.0f} ev/s  "
                f"rss {outcome.peak_rss_kb} KiB"
            )
    return BenchReport(
        bench=bench, kernel=kernel, scale=scale, results=tuple(results)
    )


@dataclass(frozen=True)
class Regression:
    """One case whose events/sec fell beyond the tolerance."""

    name: str
    current: float
    reference: float

    @property
    def ratio(self) -> float:
        return self.current / self.reference


def compare_reports(
    current: BenchReport,
    reference_payload: Dict[str, object],
    *,
    max_regression: float = 0.15,
) -> List[Regression]:
    """Compare *current* against a committed snapshot payload.

    Returns the cases whose events/sec dropped more than
    ``max_regression`` relative to the snapshot (empty list = healthy).
    Cases are matched on ``(name, scale)`` — a smoke-scale run never
    gates against full-scale recorded rates (fixed overhead amortizes
    differently, so cross-scale ratios are meaningless) — and cases
    present on only one side are ignored.
    """
    validate_bench_payload(reference_payload)
    reference_cases = reference_payload.get("cases")
    rates: Dict[Tuple[str, str], float] = {}
    if isinstance(reference_cases, list):
        for entry in reference_cases:
            if isinstance(entry, dict):
                name = entry.get("name")
                scale = entry.get("scale")
                rate = entry.get("events_per_sec")
                if (
                    isinstance(name, str)
                    and isinstance(scale, str)
                    and isinstance(rate, (int, float))
                ):
                    rates[(name, scale)] = float(rate)
    regressions: List[Regression] = []
    for outcome in current.results:
        reference_rate = rates.get((outcome.name, outcome.scale))
        if reference_rate is None:
            continue
        if outcome.events_per_sec < reference_rate * (1.0 - max_regression):
            regressions.append(
                Regression(
                    name=outcome.name,
                    current=outcome.events_per_sec,
                    reference=reference_rate,
                )
            )
    return regressions


def load_payload(path: PathLike) -> Dict[str, object]:
    """Load and schema-validate a committed ``BENCH_*.json``."""
    with Path(path).open(encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    validate_bench_payload(payload)
    return payload


def report_from_payload(payload: Dict[str, object]) -> BenchReport:
    """Rehydrate a :class:`BenchReport` from a snapshot payload.

    Used to embed a previously measured kernel (e.g. the pre-overhaul
    baseline) into a new snapshot's ``baseline`` section.
    """
    validate_bench_payload(payload)
    cases = payload.get("cases")
    results: List[CaseResult] = []
    if isinstance(cases, list):
        for entry in cases:
            if not isinstance(entry, dict):
                continue
            results.append(
                CaseResult(
                    name=str(entry["name"]),
                    kind=str(entry["kind"]),
                    scale=str(entry["scale"]),
                    description=str(entry.get("description", "")),
                    events=int(str(entry["events"])),
                    wall_s=float(str(entry["wall_s"])),
                    peak_rss_kb=int(str(entry["peak_rss_kb"])),
                    repeats=int(str(entry["repeats"])),
                )
            )
    return BenchReport(
        bench=str(payload["bench"]),
        kernel=str(payload["kernel"]),
        scale=str(results[0].scale) if results else "full",
        results=tuple(results),
    )


__all__ = [
    "BenchReport",
    "CaseResult",
    "Regression",
    "compare_reports",
    "load_payload",
    "report_from_payload",
    "run_benchmarks",
    "run_case",
]
