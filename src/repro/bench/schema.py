"""Schema for ``BENCH_*.json`` snapshots (validated on write *and* read).

The snapshot must stay machine-comparable across PRs, so its shape is
pinned here.  Validation prefers :mod:`jsonschema` when available and
falls back to an equivalent hand-rolled structural check — the benchmark
harness must run in environments with no extras installed.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Bump on breaking shape changes; the perf CI job refuses mismatches.
BENCH_FORMAT = 1

_CASE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": [
        "name",
        "kind",
        "scale",
        "events",
        "wall_s",
        "events_per_sec",
        "peak_rss_kb",
        "repeats",
    ],
    "properties": {
        "name": {"type": "string", "minLength": 1},
        "kind": {"enum": ["stress", "closed", "open"]},
        "scale": {"enum": ["full", "smoke"]},
        "events": {"type": "integer", "minimum": 1},
        "wall_s": {"type": "number", "exclusiveMinimum": 0},
        "events_per_sec": {"type": "number", "exclusiveMinimum": 0},
        "peak_rss_kb": {"type": "integer", "minimum": 0},
        "repeats": {"type": "integer", "minimum": 1},
        "description": {"type": "string"},
    },
    "additionalProperties": False,
}

BENCH_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["format", "bench", "kernel", "python", "platform", "cases"],
    "properties": {
        "format": {"const": BENCH_FORMAT},
        "bench": {"type": "string", "pattern": "^BENCH_[0-9]+$"},
        "kernel": {"type": "string", "minLength": 1},
        "python": {"type": "string", "minLength": 1},
        "platform": {"type": "string", "minLength": 1},
        "cases": {"type": "array", "minItems": 1, "items": _CASE_SCHEMA},
        "baseline": {
            "type": "object",
            "required": ["kernel", "cases"],
            "properties": {
                "kernel": {"type": "string", "minLength": 1},
                "cases": {"type": "array", "items": _CASE_SCHEMA},
            },
            "additionalProperties": False,
        },
        "speedup_vs_baseline": {
            "type": "object",
            "additionalProperties": {"type": "number"},
        },
    },
    "additionalProperties": False,
}


class BenchSchemaError(ValueError):
    """A ``BENCH_*.json`` payload does not match :data:`BENCH_SCHEMA`."""


def _check_case(case: Any, where: str) -> List[str]:
    problems: List[str] = []
    if not isinstance(case, dict):
        return [f"{where}: expected an object"]
    for field in _CASE_SCHEMA["required"]:
        if field not in case:
            problems.append(f"{where}: missing field {field!r}")
    for field in case:
        if field not in _CASE_SCHEMA["properties"]:
            problems.append(f"{where}: unknown field {field!r}")
    if case.get("kind") not in ("stress", "closed", "open"):
        problems.append(f"{where}: kind must be 'stress', 'closed', or 'open'")
    if case.get("scale") not in ("full", "smoke"):
        problems.append(f"{where}: scale must be 'full' or 'smoke'")
    for field in ("events", "peak_rss_kb", "repeats"):
        value = case.get(field)
        if value is not None and (not isinstance(value, int) or value < 0):
            problems.append(f"{where}: {field} must be a non-negative integer")
    for field in ("wall_s", "events_per_sec"):
        value = case.get(field)
        if value is not None and (
            not isinstance(value, (int, float)) or not value > 0
        ):
            problems.append(f"{where}: {field} must be > 0")
    return problems


def _validate_by_hand(payload: Dict[str, Any]) -> None:
    problems: List[str] = []
    if payload.get("format") != BENCH_FORMAT:
        problems.append(f"format must be {BENCH_FORMAT}")
    bench = payload.get("bench")
    if not (isinstance(bench, str) and bench.startswith("BENCH_")):
        problems.append("bench must look like 'BENCH_<n>'")
    for field in ("kernel", "python", "platform"):
        if not isinstance(payload.get(field), str):
            problems.append(f"{field} must be a string")
    cases = payload.get("cases")
    if not (isinstance(cases, list) and cases):
        problems.append("cases must be a non-empty array")
    else:
        for index, case in enumerate(cases):
            problems.extend(_check_case(case, f"cases[{index}]"))
    baseline = payload.get("baseline")
    if baseline is not None:
        if not isinstance(baseline, dict):
            problems.append("baseline must be an object")
        else:
            for index, case in enumerate(baseline.get("cases", [])):
                problems.extend(_check_case(case, f"baseline.cases[{index}]"))
    if problems:
        raise BenchSchemaError("; ".join(problems))


def validate_bench_payload(payload: Dict[str, Any]) -> None:
    """Validate a snapshot payload against :data:`BENCH_SCHEMA`.

    Raises:
        BenchSchemaError: On any structural mismatch.
    """
    try:
        import jsonschema
    except ImportError:
        _validate_by_hand(payload)
        return
    try:
        jsonschema.validate(payload, BENCH_SCHEMA)
    except jsonschema.ValidationError as exc:
        raise BenchSchemaError(str(exc)) from exc


__all__ = [
    "BENCH_FORMAT",
    "BENCH_SCHEMA",
    "BenchSchemaError",
    "validate_bench_payload",
]
