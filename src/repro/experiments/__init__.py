"""Experiment harness: one module per reproduced table (DESIGN.md §3).

* E1/E2 — :mod:`repro.experiments.table5`, :mod:`repro.experiments.table6`
  (analytic, exact MVA).
* E3–E7 — :mod:`repro.experiments.table8` … :mod:`repro.experiments.table12`
  (simulation sweeps).
* E8 — :mod:`repro.experiments.msg_sensitivity`.

Each module exposes ``run_experiment(...)`` returning structured results
and ``format_table(...)`` rendering paper-style rows.  The front door is
the experiment registry (:mod:`repro.experiments.registry`): every
experiment — tables, extensions, ablations, committed studies — is an
:class:`~repro.experiments.registry.Experiment` with a uniform
``run(settings, context)``, and the ``repro-experiments`` CLI generates
its subcommands from it.  Execution options (workers, cache, progress)
travel in one typed :class:`~repro.experiments.context.StudyContext`.
"""

from repro.experiments import (
    ablations,
    validation,
    msg_sensitivity,
    table5,
    table6,
    table8,
    table9,
    table10,
    table11,
    table12,
)
from repro.experiments.context import SERIAL, StudyContext
from repro.experiments.registry import (
    Experiment,
    all_experiments,
    experiment_names,
    get_experiment,
)
from repro.experiments.cache import (
    ResultCache,
    cache_key,
    default_cache_dir,
)
from repro.experiments.common import (
    AveragedResults,
    TextTable,
    average_results,
    improvement_pct,
    simulate,
)
from repro.experiments.parallel import (
    ReplicationTask,
    resolve_jobs,
    run_tasks,
    simulate_many,
)
from repro.experiments.report import (
    generate_report,
    report_sections,
    write_report,
)
from repro.experiments.sweep import (
    SweepResult,
    SweepSpec,
    run_sweep,
    set_config_parameter,
    write_csv,
)
from repro.experiments.runconfig import (
    PAPER,
    QUICK,
    SCALES,
    STANDARD,
    RunSettings,
    settings_for,
)

__all__ = [
    "ablations",
    "validation",
    "table5",
    "table6",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "msg_sensitivity",
    "AveragedResults",
    "TextTable",
    "average_results",
    "improvement_pct",
    "simulate",
    "ResultCache",
    "cache_key",
    "default_cache_dir",
    "ReplicationTask",
    "resolve_jobs",
    "run_tasks",
    "simulate_many",
    "RunSettings",
    "QUICK",
    "STANDARD",
    "PAPER",
    "SCALES",
    "settings_for",
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "set_config_parameter",
    "write_csv",
    "generate_report",
    "report_sections",
    "write_report",
    "StudyContext",
    "SERIAL",
    "Experiment",
    "all_experiments",
    "experiment_names",
    "get_experiment",
]
