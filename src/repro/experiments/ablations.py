"""Ablation experiments (DESIGN.md A1–A4) and extension studies.

These go beyond the paper's tables: each quantifies one modeling choice or
relaxes one of the paper's assumptions.

* :func:`stale_info_sweep` — value of load-information freshness (A2).
* :func:`disk_organization_study` — per-disk queues vs shared queue (A1).
* :func:`update_fraction_sweep` — read-only assumption relaxed (footnote).
* :func:`heterogeneity_study` — homogeneity assumption relaxed.
* The LERT-vs-LERT-MVA comparison (A3) and tie-break study (A4) live in
  the benchmark suite since they are single-shot comparisons.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import TextTable, improvement_pct
from repro.experiments.parallel import ReplicationTask, run_tasks
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.model.config import DISK_PER_DISK, DISK_SHARED, paper_defaults

# ----------------------------------------------------------------------
# A2: load-information staleness
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StaleInfoResult:
    intervals: Tuple[float, ...]
    waits: Dict[float, float]
    w_local: float

    def collapse_interval(self) -> float:
        """First swept interval at which LERT falls behind LOCAL."""
        for interval in self.intervals:
            if self.waits[interval] > self.w_local:
                return interval
        return float("inf")


def stale_info_sweep(
    settings: RunSettings = STANDARD,
    intervals: Tuple[float, ...] = (0.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0),
    policy: str = "LERT",
    *,
    jobs: int = 1,
    cache=None,
) -> StaleInfoResult:
    """LERT's waiting time as load snapshots go stale."""
    config = paper_defaults()
    seed = settings.seed_for(0)
    tasks: List[ReplicationTask] = [
        ReplicationTask(
            config, "LOCAL", seed, settings.warmup, settings.duration
        )
    ]
    tasks.extend(
        ReplicationTask(
            config,
            policy,
            seed,
            settings.warmup,
            settings.duration,
            system_kind="stale",
            system_kwargs=(("refresh_interval", interval),),
        )
        for interval in intervals
    )
    runs = run_tasks(tasks, jobs=jobs, cache=cache)
    w_local = runs[0].mean_waiting_time
    waits: Dict[float, float] = {
        interval: run.mean_waiting_time
        for interval, run in zip(intervals, runs[1:])
    }
    return StaleInfoResult(intervals=tuple(intervals), waits=waits, w_local=w_local)


def format_stale_info(result: StaleInfoResult) -> str:
    table = TextTable(
        ["refresh interval", "W", "vs LOCAL %"],
        title=f"Load-information staleness (W_LOCAL = {result.w_local:.2f})",
    )
    for interval in result.intervals:
        w = result.waits[interval]
        table.add_row(
            "always current" if interval == 0 else f"{interval:.0f}",
            f"{w:.2f}",
            f"{improvement_pct(w, result.w_local):.1f}",
        )
    return table.render()


# ----------------------------------------------------------------------
# A1: disk organization
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DiskOrganizationResult:
    waits: Dict[Tuple[str, str], float]  # (organization, policy) -> W

    def shared_advantage(self, policy: str) -> float:
        """Percent W reduction from pooling the disk queue."""
        return improvement_pct(
            self.waits[(DISK_SHARED, policy)], self.waits[(DISK_PER_DISK, policy)]
        )


def disk_organization_study(
    settings: RunSettings = STANDARD,
    policies: Tuple[str, ...] = ("LOCAL", "BNQ", "LERT"),
    *,
    jobs: int = 1,
    cache=None,
) -> DiskOrganizationResult:
    """Per-disk queues (paper's Figure 2) vs one shared multi-server queue."""
    seed = settings.seed_for(0)
    labels: List[Tuple[str, str]] = []
    tasks: List[ReplicationTask] = []
    for organization in (DISK_PER_DISK, DISK_SHARED):
        config = dataclasses.replace(
            paper_defaults(), disk_organization=organization
        )
        for policy in policies:
            labels.append((organization, policy))
            tasks.append(
                ReplicationTask(
                    config, policy, seed, settings.warmup, settings.duration
                )
            )
    runs = run_tasks(tasks, jobs=jobs, cache=cache)
    waits: Dict[Tuple[str, str], float] = {
        label: run.mean_waiting_time for label, run in zip(labels, runs)
    }
    return DiskOrganizationResult(waits=waits)


def format_disk_organization(result: DiskOrganizationResult) -> str:
    policies = sorted({policy for _, policy in result.waits})
    table = TextTable(
        ["policy", "per-disk W", "shared W", "shared advantage %"],
        title="Disk organization ablation",
    )
    for policy in policies:
        table.add_row(
            policy,
            f"{result.waits[(DISK_PER_DISK, policy)]:.2f}",
            f"{result.waits[(DISK_SHARED, policy)]:.2f}",
            f"{result.shared_advantage(policy):.1f}",
        )
    return table.render()


# ----------------------------------------------------------------------
# Read-only footnote: update fraction
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UpdateFractionResult:
    fractions: Tuple[float, ...]
    rows: Dict[float, Dict[str, float]]  # fraction -> policy -> W
    subnet: Dict[float, float]

    def lert_improvement(self, fraction: float) -> float:
        row = self.rows[fraction]
        return improvement_pct(row["LERT"], row["LOCAL"])


def update_fraction_sweep(
    settings: RunSettings = STANDARD,
    fractions: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.4),
    *,
    jobs: int = 1,
    cache=None,
) -> UpdateFractionResult:
    """How update propagation load dilutes the allocation benefit."""
    config = paper_defaults()
    seed = settings.seed_for(0)
    policies = ("LOCAL", "LERT")
    tasks = [
        ReplicationTask(
            config,
            policy,
            seed,
            settings.warmup,
            settings.duration,
            system_kind="updates",
            system_kwargs=(("update_prob", fraction),),
        )
        for fraction in fractions
        for policy in policies
    ]
    runs = iter(run_tasks(tasks, jobs=jobs, cache=cache))
    rows: Dict[float, Dict[str, float]] = {}
    subnet: Dict[float, float] = {}
    for fraction in fractions:
        row: Dict[str, float] = {}
        for policy in policies:
            results = next(runs)
            row[policy] = results.mean_waiting_time
            if policy == "LERT":
                subnet[fraction] = results.subnet_utilization
        rows[fraction] = row
    return UpdateFractionResult(
        fractions=tuple(fractions), rows=rows, subnet=subnet
    )


def format_update_fraction(result: UpdateFractionResult) -> str:
    table = TextTable(
        ["update %", "W LOCAL", "W LERT", "dLERT %", "subnet %"],
        title="Update-fraction sweep (asynchronous replica propagation)",
    )
    for fraction in result.fractions:
        row = result.rows[fraction]
        table.add_row(
            f"{100 * fraction:.0f}",
            f"{row['LOCAL']:.2f}",
            f"{row['LERT']:.2f}",
            f"{result.lert_improvement(fraction):.1f}",
            f"{100 * result.subnet[fraction]:.1f}",
        )
    return table.render()


# ----------------------------------------------------------------------
# Homogeneity assumption: heterogeneous CPU speeds
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HeterogeneityResult:
    speed_factors: Tuple[float, ...]
    response_times: Dict[str, float]  # policy -> mean response time

    def informed_advantage(self) -> float:
        """LERT-HET's response-time advantage over LOCAL, percent."""
        return improvement_pct(
            self.response_times["LERT-HET"], self.response_times["LOCAL"]
        )


def heterogeneity_study(
    settings: RunSettings = STANDARD,
    speed_factors: Tuple[float, ...] = (0.5, 0.5, 1.0, 1.0, 2.0, 2.0),
    *,
    jobs: int = 1,
    cache=None,
) -> HeterogeneityResult:
    """Policies on a fleet with unequal CPU speeds.

    Response time (not waiting time) is compared: heterogeneity changes
    realized service times, so waiting alone under-credits fast sites.
    """
    config = paper_defaults(num_sites=len(speed_factors))
    seed = settings.seed_for(0)
    factors = tuple(float(f) for f in speed_factors)
    policies = ("LOCAL", "BNQ", "LERT", "LERT-HET")
    tasks = [
        ReplicationTask(
            config,
            policy_name,
            seed,
            settings.warmup,
            settings.duration,
            system_kind="heterogeneous",
            system_kwargs=(("cpu_speed_factors", factors),),
        )
        for policy_name in policies
    ]
    runs = run_tasks(tasks, jobs=jobs, cache=cache)
    response_times: Dict[str, float] = {
        policy_name: run.mean_response_time
        for policy_name, run in zip(policies, runs)
    }
    return HeterogeneityResult(
        speed_factors=factors, response_times=response_times
    )


def format_heterogeneity(result: HeterogeneityResult) -> str:
    table = TextTable(
        ["policy", "mean response time", "vs LOCAL %"],
        title=f"Heterogeneous CPU speeds {result.speed_factors}",
    )
    base = result.response_times["LOCAL"]
    for policy in ("LOCAL", "BNQ", "LERT", "LERT-HET"):
        rt = result.response_times[policy]
        table.add_row(policy, f"{rt:.2f}", f"{improvement_pct(rt, base):.1f}")
    return table.render()


# ----------------------------------------------------------------------
# Subnet topology: is the shared channel really what caps Table 11?
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SubnetScalingResult:
    site_counts: Tuple[int, ...]
    improvements: Dict[Tuple[str, int], float]  # (subnet, sites) -> dLERT%
    subnet_utilization: Dict[Tuple[str, int], float]

    def peak_sites(self, subnet: str) -> int:
        return max(
            self.site_counts, key=lambda n: self.improvements[(subnet, n)]
        )


def subnet_scaling_study(
    settings: RunSettings = STANDARD,
    site_counts: Tuple[int, ...] = (2, 4, 6, 8, 10),
    *,
    jobs: int = 1,
    cache=None,
) -> SubnetScalingResult:
    """Table 11's sweep on the ring versus a point-to-point mesh.

    The paper attributes the interior optimum in the number of sites to
    channel congestion.  On a mesh whose aggregate capacity grows with
    S·(S−1), the congestion term vanishes — the improvement curve should
    keep rising (or flatten) instead of turning down.
    """
    seed = settings.seed_for(0)
    labels: List[Tuple[str, int]] = []
    tasks: List[ReplicationTask] = []
    for subnet in ("ring", "mesh"):
        for num_sites in site_counts:
            config = paper_defaults(num_sites=num_sites).with_network(
                subnet_kind=subnet
            )
            labels.append((subnet, num_sites))
            for policy in ("LOCAL", "LERT"):
                tasks.append(
                    ReplicationTask(
                        config, policy, seed, settings.warmup, settings.duration
                    )
                )
    runs = iter(run_tasks(tasks, jobs=jobs, cache=cache))
    improvements: Dict[Tuple[str, int], float] = {}
    utilization: Dict[Tuple[str, int], float] = {}
    for label in labels:
        local = next(runs)
        lert = next(runs)
        improvements[label] = improvement_pct(
            lert.mean_waiting_time, local.mean_waiting_time
        )
        utilization[label] = lert.subnet_utilization
    return SubnetScalingResult(
        site_counts=tuple(site_counts),
        improvements=improvements,
        subnet_utilization=utilization,
    )


def format_subnet_scaling(result: SubnetScalingResult) -> str:
    table = TextTable(
        ["sites", "ring dLERT%", "ring util%", "mesh dLERT%", "mesh util%"],
        title="Subnet scaling: shared ring vs point-to-point mesh",
    )
    for n in result.site_counts:
        table.add_row(
            str(n),
            f"{result.improvements[('ring', n)]:.1f}",
            f"{100 * result.subnet_utilization[('ring', n)]:.1f}",
            f"{result.improvements[('mesh', n)]:.1f}",
            f"{100 * result.subnet_utilization[('mesh', n)]:.1f}",
        )
    return table.render()


# ----------------------------------------------------------------------
# CLI entry points
# ----------------------------------------------------------------------


def main_stale(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    output = format_stale_info(stale_info_sweep(settings, jobs=jobs, cache=cache))
    print(output)
    return output


def main_disk(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    output = format_disk_organization(
        disk_organization_study(settings, jobs=jobs, cache=cache)
    )
    print(output)
    return output


def main_updates(
    settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None
) -> str:
    output = format_update_fraction(
        update_fraction_sweep(settings, jobs=jobs, cache=cache)
    )
    print(output)
    return output


def main_heterogeneous(
    settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None
) -> str:
    output = format_heterogeneity(
        heterogeneity_study(settings, jobs=jobs, cache=cache)
    )
    print(output)
    return output


def main_subnet(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    output = format_subnet_scaling(
        subnet_scaling_study(settings, jobs=jobs, cache=cache)
    )
    print(output)
    return output


__all__ = [
    "StaleInfoResult",
    "stale_info_sweep",
    "format_stale_info",
    "DiskOrganizationResult",
    "disk_organization_study",
    "format_disk_organization",
    "UpdateFractionResult",
    "update_fraction_sweep",
    "format_update_fraction",
    "HeterogeneityResult",
    "heterogeneity_study",
    "format_heterogeneity",
    "SubnetScalingResult",
    "subnet_scaling_study",
    "format_subnet_scaling",
    "main_subnet",
    "main_stale",
    "main_disk",
    "main_updates",
    "main_heterogeneous",
]
