"""Ablation experiments (DESIGN.md A1–A4) and extension studies.

These go beyond the paper's tables: each quantifies one modeling choice or
relaxes one of the paper's assumptions.

* :func:`stale_info_sweep` — value of load-information freshness (A2).
* :func:`disk_organization_study` — per-disk queues vs shared queue (A1).
* :func:`update_fraction_sweep` — read-only assumption relaxed (footnote).
* :func:`heterogeneity_study` — homogeneity assumption relaxed.
* The LERT-vs-LERT-MVA comparison (A3) and tie-break study (A4) live in
  the benchmark suite since they are single-shot comparisons.

Since the declarative study harness landed (:mod:`repro.ablation`), these
sweeps no longer assemble their own task lists: each expands the matching
catalog :class:`~repro.ablation.spec.StudySpec` and reads its cells, so
the sweep, the committed spec under ``studies/``, and ``repro-experiments
study`` all run the *same* content-addressed cells.  The result
dataclasses and ``format_*`` renderers are unchanged.

Each sweep runs one replication per cell (the behavior these functions
always had): ``settings.replications`` is overridden to 1, and the
shared seed ``settings.seed_for(0)`` gives every cell common random
numbers.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.common import TextTable, improvement_pct
from repro.experiments.context import StudyContext
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.model.config import DISK_PER_DISK, DISK_SHARED


def _single_replication(settings: RunSettings) -> RunSettings:
    """These sweeps always ran one replication per cell; keep that."""
    return dataclasses.replace(settings, replications=1)


# ----------------------------------------------------------------------
# A2: load-information staleness
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StaleInfoResult:
    intervals: Tuple[float, ...]
    waits: Dict[float, float]
    w_local: float

    def collapse_interval(self) -> float:
        """First swept interval at which LERT falls behind LOCAL."""
        for interval in self.intervals:
            if self.waits[interval] > self.w_local:
                return interval
        return float("inf")


def stale_info_sweep(
    settings: RunSettings = STANDARD,
    intervals: Tuple[float, ...] = (0.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0),
    policy: str = "LERT",
    *,
    context: StudyContext = StudyContext(),
) -> StaleInfoResult:
    """LERT's waiting time as load snapshots go stale."""
    # Imported lazily: the experiments package imports this module, and
    # the study harness imports the experiments backend (cycle otherwise).
    from repro.ablation.catalog import stale_info_study as _stale_spec
    from repro.ablation.study import run_study

    spec = _stale_spec(
        _single_replication(settings), intervals=tuple(intervals), policy=policy
    )
    outcome = run_study(spec, context=context)
    waits: Dict[float, float] = {
        interval: outcome.cell(
            f"load-information:refresh-{interval:g}"
        ).metrics.waiting_time
        for interval in intervals
    }
    return StaleInfoResult(
        intervals=tuple(intervals),
        waits=waits,
        w_local=outcome.baseline.metrics.waiting_time,
    )


def format_stale_info(result: StaleInfoResult) -> str:
    table = TextTable(
        ["refresh interval", "W", "vs LOCAL %"],
        title=f"Load-information staleness (W_LOCAL = {result.w_local:.2f})",
    )
    for interval in result.intervals:
        w = result.waits[interval]
        table.add_row(
            "always current" if interval == 0 else f"{interval:.0f}",
            f"{w:.2f}",
            f"{improvement_pct(w, result.w_local):.1f}",
        )
    return table.render()


# ----------------------------------------------------------------------
# A1: disk organization
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DiskOrganizationResult:
    waits: Dict[Tuple[str, str], float]  # (organization, policy) -> W

    def shared_advantage(self, policy: str) -> float:
        """Percent W reduction from pooling the disk queue."""
        return improvement_pct(
            self.waits[(DISK_SHARED, policy)], self.waits[(DISK_PER_DISK, policy)]
        )


def disk_organization_study(
    settings: RunSettings = STANDARD,
    policies: Tuple[str, ...] = ("LOCAL", "BNQ", "LERT"),
    *,
    context: StudyContext = StudyContext(),
) -> DiskOrganizationResult:
    """Per-disk queues (paper's Figure 2) vs one shared multi-server queue."""
    from repro.ablation.catalog import disk_organization_study_spec as _disk_spec
    from repro.ablation.study import run_study

    spec = _disk_spec(_single_replication(settings), policies=tuple(policies))
    outcome = run_study(spec, context=context)
    waits: Dict[Tuple[str, str], float] = {
        (DISK_PER_DISK, policies[0]): outcome.baseline.metrics.waiting_time
    }
    for policy in policies[1:]:
        waits[(DISK_PER_DISK, policy)] = outcome.cell(
            f"disk-organization:per_disk-{policy}"
        ).metrics.waiting_time
    for policy in policies:
        waits[(DISK_SHARED, policy)] = outcome.cell(
            f"disk-organization:shared-{policy}"
        ).metrics.waiting_time
    return DiskOrganizationResult(waits=waits)


def format_disk_organization(result: DiskOrganizationResult) -> str:
    policies = sorted({policy for _, policy in result.waits})
    table = TextTable(
        ["policy", "per-disk W", "shared W", "shared advantage %"],
        title="Disk organization ablation",
    )
    for policy in policies:
        table.add_row(
            policy,
            f"{result.waits[(DISK_PER_DISK, policy)]:.2f}",
            f"{result.waits[(DISK_SHARED, policy)]:.2f}",
            f"{result.shared_advantage(policy):.1f}",
        )
    return table.render()


# ----------------------------------------------------------------------
# Read-only footnote: update fraction
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UpdateFractionResult:
    fractions: Tuple[float, ...]
    rows: Dict[float, Dict[str, float]]  # fraction -> policy -> W
    subnet: Dict[float, float]

    def lert_improvement(self, fraction: float) -> float:
        row = self.rows[fraction]
        return improvement_pct(row["LERT"], row["LOCAL"])


def update_fraction_sweep(
    settings: RunSettings = STANDARD,
    fractions: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.4),
    *,
    context: StudyContext = StudyContext(),
) -> UpdateFractionResult:
    """How update propagation load dilutes the allocation benefit."""
    from repro.ablation.catalog import update_fraction_study as _update_spec
    from repro.ablation.study import run_study

    spec = _update_spec(_single_replication(settings), fractions=tuple(fractions))
    outcome = run_study(spec, context=context)
    rows: Dict[float, Dict[str, float]] = {}
    subnet: Dict[float, float] = {}
    for fraction in fractions:
        row: Dict[str, float] = {}
        for policy in ("LOCAL", "LERT"):
            if fraction == fractions[0] and policy == "LOCAL":
                cell = outcome.baseline
            else:
                cell = outcome.cell(f"update-fraction:f{fraction:g}-{policy}")
            row[policy] = cell.metrics.waiting_time
            if policy == "LERT":
                subnet[fraction] = cell.metrics.subnet_utilization
        rows[fraction] = row
    return UpdateFractionResult(
        fractions=tuple(fractions), rows=rows, subnet=subnet
    )


def format_update_fraction(result: UpdateFractionResult) -> str:
    table = TextTable(
        ["update %", "W LOCAL", "W LERT", "dLERT %", "subnet %"],
        title="Update-fraction sweep (asynchronous replica propagation)",
    )
    for fraction in result.fractions:
        row = result.rows[fraction]
        table.add_row(
            f"{100 * fraction:.0f}",
            f"{row['LOCAL']:.2f}",
            f"{row['LERT']:.2f}",
            f"{result.lert_improvement(fraction):.1f}",
            f"{100 * result.subnet[fraction]:.1f}",
        )
    return table.render()


# ----------------------------------------------------------------------
# Homogeneity assumption: heterogeneous CPU speeds
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HeterogeneityResult:
    speed_factors: Tuple[float, ...]
    response_times: Dict[str, float]  # policy -> mean response time

    def informed_advantage(self) -> float:
        """LERT-HET's response-time advantage over LOCAL, percent."""
        return improvement_pct(
            self.response_times["LERT-HET"], self.response_times["LOCAL"]
        )


def heterogeneity_study(
    settings: RunSettings = STANDARD,
    speed_factors: Tuple[float, ...] = (0.5, 0.5, 1.0, 1.0, 2.0, 2.0),
    *,
    context: StudyContext = StudyContext(),
) -> HeterogeneityResult:
    """Policies on a fleet with unequal CPU speeds.

    Response time (not waiting time) is compared: heterogeneity changes
    realized service times, so waiting alone under-credits fast sites.
    """
    from repro.ablation.catalog import heterogeneity_study_spec as _heterogeneity_spec
    from repro.ablation.study import run_study

    factors = tuple(float(f) for f in speed_factors)
    spec = _heterogeneity_spec(
        _single_replication(settings), speed_factors=factors
    )
    outcome = run_study(spec, context=context)
    response_times: Dict[str, float] = {
        "LOCAL": outcome.baseline.metrics.response_time,
        "BNQ": outcome.cell("allocation-policy:bnq").metrics.response_time,
        "LERT": outcome.cell("allocation-policy:lert").metrics.response_time,
        "LERT-HET": outcome.cell(
            "allocation-policy:lert-het"
        ).metrics.response_time,
    }
    return HeterogeneityResult(
        speed_factors=factors, response_times=response_times
    )


def format_heterogeneity(result: HeterogeneityResult) -> str:
    table = TextTable(
        ["policy", "mean response time", "vs LOCAL %"],
        title=f"Heterogeneous CPU speeds {result.speed_factors}",
    )
    base = result.response_times["LOCAL"]
    for policy in ("LOCAL", "BNQ", "LERT", "LERT-HET"):
        rt = result.response_times[policy]
        table.add_row(policy, f"{rt:.2f}", f"{improvement_pct(rt, base):.1f}")
    return table.render()


# ----------------------------------------------------------------------
# Subnet topology: is the shared channel really what caps Table 11?
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SubnetScalingResult:
    site_counts: Tuple[int, ...]
    improvements: Dict[Tuple[str, int], float]  # (subnet, sites) -> dLERT%
    subnet_utilization: Dict[Tuple[str, int], float]

    def peak_sites(self, subnet: str) -> int:
        return max(
            self.site_counts, key=lambda n: self.improvements[(subnet, n)]
        )


def subnet_scaling_study(
    settings: RunSettings = STANDARD,
    site_counts: Tuple[int, ...] = (2, 4, 6, 8, 10),
    *,
    context: StudyContext = StudyContext(),
) -> SubnetScalingResult:
    """Table 11's sweep on the ring versus a point-to-point mesh.

    The paper attributes the interior optimum in the number of sites to
    channel congestion.  On a mesh whose aggregate capacity grows with
    S·(S−1), the congestion term vanishes — the improvement curve should
    keep rising (or flatten) instead of turning down.
    """
    from repro.ablation.catalog import subnet_scaling_study as _subnet_spec
    from repro.ablation.study import run_study

    counts = tuple(site_counts)
    spec = _subnet_spec(_single_replication(settings), site_counts=counts)
    outcome = run_study(spec, context=context)
    improvements: Dict[Tuple[str, int], float] = {}
    utilization: Dict[Tuple[str, int], float] = {}
    for subnet in ("ring", "mesh"):
        for num_sites in counts:
            if subnet == "ring" and num_sites == counts[0]:
                local = outcome.baseline
            else:
                local = outcome.cell(
                    f"subnet-scaling:{subnet}-{num_sites}-LOCAL"
                )
            lert = outcome.cell(f"subnet-scaling:{subnet}-{num_sites}-LERT")
            improvements[(subnet, num_sites)] = improvement_pct(
                lert.metrics.waiting_time, local.metrics.waiting_time
            )
            utilization[(subnet, num_sites)] = lert.metrics.subnet_utilization
    return SubnetScalingResult(
        site_counts=counts,
        improvements=improvements,
        subnet_utilization=utilization,
    )


def format_subnet_scaling(result: SubnetScalingResult) -> str:
    table = TextTable(
        ["sites", "ring dLERT%", "ring util%", "mesh dLERT%", "mesh util%"],
        title="Subnet scaling: shared ring vs point-to-point mesh",
    )
    for n in result.site_counts:
        table.add_row(
            str(n),
            f"{result.improvements[('ring', n)]:.1f}",
            f"{100 * result.subnet_utilization[('ring', n)]:.1f}",
            f"{result.improvements[('mesh', n)]:.1f}",
            f"{100 * result.subnet_utilization[('mesh', n)]:.1f}",
        )
    return table.render()


# ----------------------------------------------------------------------
# Deprecated CLI entry points (use the experiment registry)
# ----------------------------------------------------------------------


def _main_shim(name: str, sweep, formatter, settings, jobs, cache) -> str:
    """Shared body of the deprecated ``main_*`` entry points."""
    warnings.warn(
        f"ablations.main_{name}() is deprecated; use repro.experiments."
        f"registry.get_experiment('ablation-{name}').run(settings, context) "
        "(see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=3,
    )
    context = StudyContext(jobs=jobs, cache=cache)
    output = formatter(sweep(settings, context=context))
    print(output)
    return output


def main_stale(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead."""
    return _main_shim(
        "stale", stale_info_sweep, format_stale_info, settings, jobs, cache
    )


def main_disk(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead."""
    return _main_shim(
        "disk", disk_organization_study, format_disk_organization,
        settings, jobs, cache,
    )


def main_updates(
    settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None
) -> str:
    """Deprecated shim — go through the experiment registry instead."""
    return _main_shim(
        "updates", update_fraction_sweep, format_update_fraction,
        settings, jobs, cache,
    )


def main_heterogeneous(
    settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None
) -> str:
    """Deprecated shim — go through the experiment registry instead."""
    return _main_shim(
        "heterogeneous", heterogeneity_study, format_heterogeneity,
        settings, jobs, cache,
    )


def main_subnet(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead."""
    return _main_shim(
        "subnet", subnet_scaling_study, format_subnet_scaling,
        settings, jobs, cache,
    )


__all__ = [
    "StaleInfoResult",
    "stale_info_sweep",
    "format_stale_info",
    "DiskOrganizationResult",
    "disk_organization_study",
    "format_disk_organization",
    "UpdateFractionResult",
    "update_fraction_sweep",
    "format_update_fraction",
    "HeterogeneityResult",
    "heterogeneity_study",
    "format_heterogeneity",
    "SubnetScalingResult",
    "subnet_scaling_study",
    "format_subnet_scaling",
    "main_subnet",
    "main_stale",
    "main_disk",
    "main_updates",
    "main_heterogeneous",
]
