"""Content-addressed on-disk cache for simulation results.

Every simulation cell in the experiment harness is a pure function of

``(SystemConfig, policy name, seed, warmup, duration, system kind, kwargs)``

so its :class:`~repro.model.metrics.SystemResults` can be cached on disk and
reused across runs, scales that share cells, processes, and (with a shared
directory) machines.  The cache is *content addressed*: the key is a SHA-256
hash over the canonical JSON serialization of all the run inputs, so any
single-field change — a different think time, seed, warmup, policy, or
extension parameter — produces a different key, and two configs that are
equal as dataclasses always produce the same key regardless of how they were
constructed.

Robustness properties:

* **Versioned entries.** Each entry embeds ``entry_version`` (and the
  key hash itself); entries written by an incompatible version, or whose
  stored key disagrees with their filename, are treated as misses and
  silently rewritten.
* **Atomic writes.** Entries are written to a unique temp file in the
  destination directory and published with :func:`os.replace`, so readers
  never observe a half-written entry and concurrent writers of the same
  key cannot corrupt it (last writer wins with identical content).
* **Graceful degradation.** Corrupt, truncated, unreadable, or malformed
  entries are never fatal — they count as misses (see
  :attr:`CacheStats.errors`) and are replaced on the next write.

Typical use goes through the execution backend
(:mod:`repro.experiments.parallel`) or the CLI flags ``--cache-dir`` /
``--no-cache``; direct use::

    cache = ResultCache(default_cache_dir())
    key = cache_key(config, "LERT", seed=1, warmup=500.0, duration=2000.0)
    hit = cache.get(key)           # None on miss
    cache.put(key, results)        # atomic
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.faults.plan import FaultPlan
from repro.model.config import SystemConfig
from repro.model.metrics import SystemResults
from repro.model.serialization import (
    config_to_dict,
    fault_plan_to_dict,
    results_from_dict,
    results_to_dict,
    workload_spec_to_dict,
)
from repro.workloads.spec import WorkloadSpec

#: Version of the cache-entry layout *and* the key derivation.  Bumping it
#: invalidates every existing entry (old entries become misses).
CACHE_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """The default on-disk cache root.

    ``$REPRO_CACHE_DIR`` when set, otherwise ``~/.cache/repro/results``.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro" / "results"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, stable float repr.

    Two payloads that are equal as Python objects serialize to the same
    string regardless of dict insertion order, which makes hashes of the
    output content addresses.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(
    config: SystemConfig,
    policy: str,
    *,
    seed: int,
    warmup: float,
    duration: float,
    system_kind: str = "standard",
    system_kwargs: Sequence[Tuple[str, Any]] = (),
    faults: Optional[FaultPlan] = None,
    workload: Optional[WorkloadSpec] = None,
) -> str:
    """Content address of one simulation run.

    The key is the SHA-256 hex digest of the canonical JSON serialization
    of every input that determines the run's output.  ``system_kind`` and
    ``system_kwargs`` identify extension system classes (stale-info,
    update-workload, heterogeneous) and their parameters so extension runs
    never collide with standard ones.  A non-``None`` *faults* plan is
    folded into the key (so a faulted run can never be answered from a
    faultless entry); ``None`` leaves the payload — and therefore every
    pre-faults key — unchanged.  *workload* behaves the same way: a
    non-``None`` spec (callers normalize the closed default to ``None``
    first) is folded in, and ``None`` preserves every pre-workload key.
    """
    payload: Dict[str, Any] = {
        "cache_version": CACHE_VERSION,
        "config": config_to_dict(config),
        "policy": policy,
        "seed": seed,
        "warmup": warmup,
        "duration": duration,
        "system_kind": system_kind,
        "system_kwargs": {name: value for name, value in system_kwargs},
    }
    if faults is not None:
        # Added only when present: existing cache entries stay addressable.
        payload["faults"] = fault_plan_to_dict(faults)
    if workload is not None:
        # Same rule as faults: only open workloads alter the key.
        payload["workload"] = workload_spec_to_dict(workload)
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0

    def __str__(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes, {self.errors} errors"
        )


class ResultCache:
    """Content-addressed store of :class:`SystemResults`, one file per key.

    Entries live at ``root/<key[:2]>/<key>.json`` (two-level sharding keeps
    directories small).  All failure modes degrade to cache misses.
    """

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        *,
        version: int = CACHE_VERSION,
    ) -> None:
        self.root = pathlib.Path(root)
        self.version = version
        self.stats = CacheStats()
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> pathlib.Path:
        """Where the entry for *key* lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[SystemResults]:
        """The cached result for *key*, or ``None`` on any kind of miss."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("entry is not a JSON object")
            if data.get("entry_version") != self.version:
                raise ValueError("entry version mismatch")
            if data.get("key") != key:
                raise ValueError("entry key mismatch")
            result = results_from_dict(data["result"])
        except Exception:
            # Corrupt / stale / truncated entry: a miss, never fatal.  The
            # entry stays on disk and is overwritten by the next put().
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: SystemResults) -> None:
        """Store *result* under *key* atomically (temp file + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "entry_version": self.version,
            "key": key,
            "result": results_to_dict(result),
        }
        text = json.dumps(payload, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r}, version={self.version})"


__all__ = [
    "CACHE_VERSION",
    "CACHE_DIR_ENV",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "canonical_json",
    "default_cache_dir",
]
