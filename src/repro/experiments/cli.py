"""Command-line entry point: regenerate any of the paper's tables.

Installed as ``repro-experiments``::

    repro-experiments table5
    repro-experiments table8 --scale quick
    repro-experiments all --scale standard
    repro-experiments table9 --jobs 4          # fan cells over 4 processes
    repro-experiments table9 --no-cache        # force re-simulation
    repro-experiments all --cache-dir /tmp/rc  # shared result cache
    repro-experiments table8 --progress        # live progress on stderr

Simulation experiments accept ``--jobs`` (process-pool fan-out; results are
bit-identical to serial runs) and use the content-addressed result cache by
default (``$REPRO_CACHE_DIR`` or ``~/.cache/repro/results``; see
``docs/parallel_and_caching.md``).  Table text goes to stdout; per-experiment
wall-clock timings and cache statistics go to stderr so piped output stays
clean.
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import sys
import time
from typing import Callable, Dict, Iterator, Optional

from repro.experiments import (
    ablations,
    failure,
    open_system,
    validation,
    msg_sensitivity,
    table5,
    table6,
    table8,
    table9,
    table10,
    table11,
    table12,
)
from repro.experiments.runconfig import settings_for

#: Experiment name -> runner taking RunSettings (analytic ones ignore it).
_SIMULATED: Dict[str, Callable] = {
    "table8": table8.main,
    "table9": table9.main,
    "table10": table10.main,
    "table11": table11.main,
    "table12": table12.main,
    "msg": msg_sensitivity.main,
    "failures": failure.main,
    "open": open_system.main,
    "ablation-stale": ablations.main_stale,
    "ablation-disk": ablations.main_disk,
    "ablation-updates": ablations.main_updates,
    "ablation-heterogeneous": ablations.main_heterogeneous,
    "ablation-subnet": ablations.main_subnet,
    "validation": validation.main,
}
_ANALYTIC: Dict[str, Callable] = {
    "table5": table5.main,
    "table6": table6.main,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables of Carey, Livny & Lu, 'Dynamic Task "
            "Allocation in a Distributed Database System' (ICDCS 1985)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_SIMULATED) + sorted(_ANALYTIC) + ["all", "report"],
        help=(
            "which table to regenerate ('all' runs everything; 'report' "
            "writes a single Markdown report, see --out)"
        ),
    )
    parser.add_argument(
        "--out",
        default="report.md",
        help="output path for the 'report' experiment (default: report.md)",
    )
    parser.add_argument(
        "--scale",
        default="standard",
        choices=["quick", "standard", "paper"],
        help="run length preset for simulation experiments (default: standard)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for simulation cells (default: 1 = serial; "
            "0 or negative = all cores); results are identical to serial runs"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "result-cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro/results)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (always re-simulate)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help=(
            "install a fault plan (written by repro.save_fault_plan) into "
            "every simulated run; only the standard system kind supports "
            "faults, so extension experiments reject this flag"
        ),
    )
    parser.add_argument(
        "--workload",
        default=None,
        metavar="PLAN.json",
        help=(
            "drive every simulated run with a workload spec (written by "
            "repro.save_workload_spec) instead of the paper's closed "
            "terminals; only the standard system kind supports open "
            "workloads, so extension experiments reject this flag"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "show live per-replication progress on stderr while simulation "
            "batches run (display only; results are unaffected)"
        ),
    )
    return parser


def _build_cache(args):
    """The ResultCache implied by --cache-dir/--no-cache (None = disabled)."""
    if args.no_cache:
        return None
    from repro.experiments.cache import ResultCache, default_cache_dir

    root = pathlib.Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    return ResultCache(root)


@contextlib.contextmanager
def _progress_scope(enabled: bool) -> Iterator[None]:
    """Install a stderr progress printer for the enclosed experiment.

    Uses :func:`repro.experiments.parallel.progress_reporting`, so every
    ``run_tasks`` batch the experiment triggers reports here without any of
    the table modules knowing about the CLI.  The line is redrawn in place
    (``\\r``); a final newline keeps subsequent stderr output clean.
    """
    if not enabled:
        yield
        return
    from repro.experiments.parallel import RunProgress, progress_reporting

    def report(tick: RunProgress) -> None:
        line = (
            f"[{tick.completed}/{tick.total}] "
            f"{tick.policy} seed={tick.seed} ({tick.cached} cached)"
        )
        # Pad so a shorter redraw fully overwrites the previous line.
        print(f"\r{line:<60}", end="", file=sys.stderr, flush=True)

    with progress_reporting(report):
        try:
            yield
        finally:
            print(file=sys.stderr)


def _timing_line(name: str, elapsed: float, cache) -> str:
    line = f"[{name}] wall-clock {elapsed:.2f}s"
    if cache is not None:
        line += f" (cache: {cache.stats})"
    return line


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    settings = settings_for(args.scale)
    if args.faults is not None:
        from repro.model.serialization import load_fault_plan

        settings = settings.with_faults(load_fault_plan(args.faults))
    if args.workload is not None:
        from repro.model.serialization import load_workload_spec

        settings = settings.with_workload(load_workload_spec(args.workload))
    if args.experiment == "report":
        from repro.experiments.report import write_report

        cache = _build_cache(args)
        started = time.perf_counter()
        with _progress_scope(args.progress):
            write_report(args.out, settings, jobs=args.jobs, cache=cache)
        print(
            _timing_line("report", time.perf_counter() - started, cache),
            file=sys.stderr,
        )
        print(f"report written to {args.out}")
        return 0
    if args.experiment == "all":
        names = sorted(_ANALYTIC) + sorted(_SIMULATED)
    else:
        names = [args.experiment]
    # Build the cache lazily: analytic tables never touch it, and creating
    # it would create the cache directory for nothing.
    cache: Optional[object] = None
    cache_built = False
    for name in names:
        started = time.perf_counter()
        if name in _ANALYTIC:
            _ANALYTIC[name]()
        else:
            if not cache_built:
                cache = _build_cache(args)
                cache_built = True
            with _progress_scope(args.progress):
                _SIMULATED[name](settings, jobs=args.jobs, cache=cache)
        elapsed = time.perf_counter() - started
        print(
            _timing_line(name, elapsed, cache if name in _SIMULATED else None),
            file=sys.stderr,
        )
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
