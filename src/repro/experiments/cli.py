"""Command-line entry point: regenerate tables, run studies.

Installed as ``repro-experiments``.  Every subcommand except ``study``,
``report``, ``all``, and ``list`` is generated from the experiment
registry (:mod:`repro.experiments.registry`) — registering an experiment
there is all it takes to get a subcommand::

    repro-experiments list                       # what's available
    repro-experiments table5
    repro-experiments table8 --scale quick
    repro-experiments all --scale standard
    repro-experiments table9 --jobs 4            # fan cells over 4 processes
    repro-experiments table9 --no-cache          # force re-simulation
    repro-experiments all --cache-dir /tmp/rc    # shared result cache
    repro-experiments table8 --progress          # live progress on stderr
    repro-experiments study studies/core.json    # run a committed study
    repro-experiments report --out report.md

Simulation experiments accept ``--jobs`` (process-pool fan-out; results
are bit-identical to serial runs) and use the content-addressed result
cache by default (``$REPRO_CACHE_DIR`` or ``~/.cache/repro/results``; see
``docs/parallel_and_caching.md``).  ``study`` runs a
:class:`~repro.ablation.spec.StudySpec` JSON file (see
``docs/ablation.md``); its run settings come from the spec itself, so
``--scale`` does not apply.  Table/report text goes to stdout;
per-experiment wall-clock timings and cache statistics go to stderr so
piped output stays clean.
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import sys
import time
from typing import Iterator, List, Optional

from repro.experiments.context import StudyContext
from repro.experiments.registry import (
    Experiment,
    all_experiments,
    get_experiment,
)
from repro.experiments.runconfig import settings_for


def _execution_flags(parser: argparse.ArgumentParser) -> None:
    """The execution options shared by every simulating subcommand."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for simulation cells (default: 1 = serial; "
            "0 or negative = all cores); results are identical to serial runs"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "result-cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro/results)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (always re-simulate)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "show live per-replication progress on stderr while simulation "
            "batches run (display only; results are unaffected)"
        ),
    )


def _settings_flags(parser: argparse.ArgumentParser) -> None:
    """The run-settings options of the table/report subcommands."""
    parser.add_argument(
        "--scale",
        default="standard",
        choices=["quick", "standard", "paper"],
        help="run length preset for simulation experiments (default: standard)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help=(
            "install a fault plan (written by repro.save_fault_plan) into "
            "every simulated run; only the standard system kind supports "
            "faults, so extension experiments reject this flag"
        ),
    )
    parser.add_argument(
        "--workload",
        default=None,
        metavar="PLAN.json",
        help=(
            "drive every simulated run with a workload spec (written by "
            "repro.save_workload_spec) instead of the paper's closed "
            "terminals; only the standard system kind supports open "
            "workloads, so extension experiments reject this flag"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables of Carey, Livny & Lu, 'Dynamic Task "
            "Allocation in a Distributed Database System' (ICDCS 1985), "
            "and run declarative ablation studies."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # One subcommand per registered experiment — the registry is the
    # single source of truth for what can run.
    for experiment in all_experiments():
        sub = subparsers.add_parser(
            experiment.name,
            help=experiment.description,
            description=f"{experiment.title}: {experiment.description}",
        )
        _settings_flags(sub)
        _execution_flags(sub)

    sub = subparsers.add_parser(
        "all", help="run every registered experiment in report order"
    )
    _settings_flags(sub)
    _execution_flags(sub)

    sub = subparsers.add_parser(
        "report",
        help="write a single Markdown report covering every experiment",
    )
    sub.add_argument(
        "--out",
        default="report.md",
        help="output path for the report (default: report.md)",
    )
    _settings_flags(sub)
    _execution_flags(sub)

    sub = subparsers.add_parser(
        "study",
        help="run a StudySpec JSON file (see docs/ablation.md)",
        description=(
            "Expand a committed study spec into its content-addressed "
            "run grid, execute it, and print the ranked component-"
            "importance report.  Run settings come from the spec."
        ),
    )
    sub.add_argument("spec", help="path to a StudySpec JSON file")
    sub.add_argument(
        "--markdown",
        action="store_true",
        help="render the report tables as GitHub-flavored Markdown",
    )
    _execution_flags(sub)

    subparsers.add_parser(
        "list", help="list the registered experiments and built-in studies"
    )
    return parser


def _build_cache(args):
    """The ResultCache implied by --cache-dir/--no-cache (None = disabled)."""
    if args.no_cache:
        return None
    from repro.experiments.cache import ResultCache, default_cache_dir

    root = pathlib.Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    return ResultCache(root)


@contextlib.contextmanager
def _progress_scope(enabled: bool) -> Iterator[None]:
    """Install a stderr progress printer for the enclosed experiment.

    Uses :func:`repro.experiments.parallel.progress_reporting`, so every
    ``run_tasks`` batch the experiment triggers reports here without any of
    the table modules knowing about the CLI.  The line is redrawn in place
    (``\\r``); a final newline keeps subsequent stderr output clean.
    """
    if not enabled:
        yield
        return
    from repro.experiments.parallel import RunProgress, progress_reporting

    def report(tick: RunProgress) -> None:
        line = (
            f"[{tick.completed}/{tick.total}] "
            f"{tick.policy} seed={tick.seed} ({tick.cached} cached)"
        )
        # Pad so a shorter redraw fully overwrites the previous line.
        print(f"\r{line:<60}", end="", file=sys.stderr, flush=True)

    with progress_reporting(report):
        try:
            yield
        finally:
            print(file=sys.stderr)


def _timing_line(name: str, elapsed: float, cache) -> str:
    line = f"[{name}] wall-clock {elapsed:.2f}s"
    if cache is not None:
        line += f" (cache: {cache.stats})"
    return line


def _settings_from_args(args):
    settings = settings_for(args.scale)
    if args.faults is not None:
        from repro.model.serialization import load_fault_plan

        settings = settings.with_faults(load_fault_plan(args.faults))
    if args.workload is not None:
        from repro.model.serialization import load_workload_spec

        settings = settings.with_workload(load_workload_spec(args.workload))
    return settings


def _run_experiment(experiment: Experiment, settings, args, cache) -> None:
    """Run one experiment, print its table, report timing to stderr."""
    context = StudyContext(jobs=args.jobs, cache=cache)
    started = time.perf_counter()
    with _progress_scope(args.progress):
        output = experiment.run(settings, context)
    elapsed = time.perf_counter() - started
    print(output)
    print(
        _timing_line(
            experiment.name, elapsed, None if experiment.analytic else cache
        ),
        file=sys.stderr,
    )


def _run_list() -> int:
    from repro.ablation import study_names
    from repro.experiments.report import TextTable

    table = TextTable(["name", "kind", "description"], title="Experiments")
    for experiment in all_experiments():
        table.add_row(
            experiment.name,
            "analytic" if experiment.analytic else "simulation",
            experiment.description,
        )
    print(table.render())
    print()
    print("Built-in studies (repro-experiments study studies/<name>.json):")
    for name in study_names():
        print(f"  {name}")
    return 0


def _run_study(args) -> int:
    from repro.ablation import load_study_spec, render_study_report, run_study

    spec = load_study_spec(args.spec)
    cache = _build_cache(args)
    context = StudyContext(jobs=args.jobs, cache=cache)
    started = time.perf_counter()
    with _progress_scope(args.progress):
        outcome = run_study(spec, context=context)
    elapsed = time.perf_counter() - started
    print(render_study_report(outcome, markdown=args.markdown))
    print(
        _timing_line(f"study:{spec.name}", elapsed, cache), file=sys.stderr
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _run_list()
    if args.command == "study":
        return _run_study(args)
    settings = _settings_from_args(args)
    if args.command == "report":
        from repro.experiments.report import write_report

        cache = _build_cache(args)
        started = time.perf_counter()
        with _progress_scope(args.progress):
            write_report(
                args.out,
                settings,
                context=StudyContext(jobs=args.jobs, cache=cache),
            )
        print(
            _timing_line("report", time.perf_counter() - started, cache),
            file=sys.stderr,
        )
        print(f"report written to {args.out}")
        return 0
    if args.command == "all":
        # Build the cache once; analytic experiments never touch it.
        cache = _build_cache(args)
        for experiment in all_experiments():
            _run_experiment(experiment, settings, args, cache)
            print()
        return 0
    experiment = get_experiment(args.command)
    cache = None if experiment.analytic else _build_cache(args)
    _run_experiment(experiment, settings, args, cache)
    return 0


if __name__ == "__main__":
    sys.exit(main())
