"""Command-line entry point: regenerate any of the paper's tables.

Installed as ``repro-experiments``::

    repro-experiments table5
    repro-experiments table8 --scale quick
    repro-experiments all --scale standard
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.experiments import (
    ablations,
    validation,
    msg_sensitivity,
    table5,
    table6,
    table8,
    table9,
    table10,
    table11,
    table12,
)
from repro.experiments.runconfig import settings_for

#: Experiment name -> runner taking RunSettings (analytic ones ignore it).
_SIMULATED: Dict[str, Callable] = {
    "table8": table8.main,
    "table9": table9.main,
    "table10": table10.main,
    "table11": table11.main,
    "table12": table12.main,
    "msg": msg_sensitivity.main,
    "ablation-stale": ablations.main_stale,
    "ablation-disk": ablations.main_disk,
    "ablation-updates": ablations.main_updates,
    "ablation-heterogeneous": ablations.main_heterogeneous,
    "ablation-subnet": ablations.main_subnet,
    "validation": validation.main,
}
_ANALYTIC: Dict[str, Callable] = {
    "table5": table5.main,
    "table6": table6.main,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables of Carey, Livny & Lu, 'Dynamic Task "
            "Allocation in a Distributed Database System' (ICDCS 1985)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_SIMULATED) + sorted(_ANALYTIC) + ["all", "report"],
        help=(
            "which table to regenerate ('all' runs everything; 'report' "
            "writes a single Markdown report, see --out)"
        ),
    )
    parser.add_argument(
        "--out",
        default="report.md",
        help="output path for the 'report' experiment (default: report.md)",
    )
    parser.add_argument(
        "--scale",
        default="standard",
        choices=["quick", "standard", "paper"],
        help="run length preset for simulation experiments (default: standard)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    settings = settings_for(args.scale)
    if args.experiment == "report":
        from repro.experiments.report import write_report

        write_report(args.out, settings)
        print(f"report written to {args.out}")
        return 0
    if args.experiment == "all":
        names = sorted(_ANALYTIC) + sorted(_SIMULATED)
    else:
        names = [args.experiment]
    for name in names:
        if name in _ANALYTIC:
            _ANALYTIC[name]()
        else:
            _SIMULATED[name](settings)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
