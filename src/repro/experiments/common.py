"""Shared machinery for the table-reproduction experiments.

Provides:

* :func:`simulate` — run one (config, policy) pair at given settings,
  averaging over replications with common random numbers; ``jobs=`` fans
  replications over a process pool and ``cache=`` reuses cached results
  (see :mod:`repro.experiments.parallel` / :mod:`repro.experiments.cache`);
* :func:`average_results` — order-independent replication averaging.

:class:`TextTable` and :func:`improvement_pct` now live in
:mod:`repro.experiments.report` (the one rendering path for text and
Markdown output); they are re-exported here for compatibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.report import TextTable, improvement_pct
from repro.experiments.runconfig import RunSettings
from repro.model.config import SystemConfig
from repro.model.metrics import SystemResults


@dataclass(frozen=True)
class AveragedResults:
    """Replication-averaged run results for one (config, policy) pair."""

    policy: str
    mean_waiting_time: float
    mean_response_time: float
    fairness: Optional[float]
    subnet_utilization: float
    cpu_utilization: float
    disk_utilization: float
    remote_fraction: float
    completions: int
    per_replication: tuple

    @property
    def rho_ratio(self) -> float:
        """ρ_d / ρ_c — measured disk-to-CPU utilization ratio (Table 12).

        ``nan`` when both utilizations are zero (an idle system has no
        meaningful ratio); ``inf`` when only the CPU was idle.
        """
        if self.cpu_utilization == 0:
            if self.disk_utilization == 0:
                return float("nan")
            return float("inf")
        return self.disk_utilization / self.cpu_utilization


def average_results(
    policy_name: str, runs: Sequence[SystemResults]
) -> AveragedResults:
    """Average per-replication results into one :class:`AveragedResults`.

    Uses :func:`math.fsum` (exactly rounded), so the averages are invariant
    under permutation of *runs* — parallel execution can reassemble
    replications in any order and still reproduce the serial numbers bit
    for bit.  ``per_replication`` preserves the order given.
    """
    if not runs:
        raise ValueError("need at least one replication to average")

    def avg(values: Sequence[float]) -> float:
        return math.fsum(values) / len(values)

    fairness_values = [r.fairness for r in runs if r.fairness is not None]
    return AveragedResults(
        policy=policy_name,
        mean_waiting_time=avg([r.mean_waiting_time for r in runs]),
        mean_response_time=avg([r.mean_response_time for r in runs]),
        fairness=avg(fairness_values) if fairness_values else None,
        subnet_utilization=avg([r.subnet_utilization for r in runs]),
        cpu_utilization=avg([r.cpu_utilization for r in runs]),
        disk_utilization=avg([r.disk_utilization for r in runs]),
        remote_fraction=avg([r.remote_fraction for r in runs]),
        # Integer count: int sum() is exact, hence permutation invariant.
        completions=sum(r.completions for r in runs),  # reprolint: disable=RL004
        per_replication=tuple(runs),
    )


def simulate(
    config: SystemConfig,
    policy_name: str,
    settings: RunSettings,
    *,
    jobs: Optional[int] = 1,
    cache=None,
    progress=None,
) -> AveragedResults:
    """Run the system under one policy, averaged over replications.

    Replication ``r`` of every policy uses the same master seed, so all
    policies face an identical stream of queries (common random numbers).

    Args:
        config: System description.
        policy_name: Registered allocation policy to run.
        settings: Run lengths, replication count, and base seed.
        jobs: Worker processes for the replications (default 1 = serial,
            in-process; 0 or negative = all cores).  Results are identical
            regardless of the value.
        cache: Optional :class:`~repro.experiments.cache.ResultCache`;
            cached replications are reused instead of re-simulated.
        progress: Optional per-replication progress callback (see
            :class:`~repro.experiments.parallel.RunProgress`).  Defaults to
            the callback installed by
            :func:`~repro.experiments.parallel.progress_reporting`, if any.
            Display only; results are unaffected.
    """
    # Imported lazily: the execution backend imports this module for
    # AveragedResults/average_results.
    from repro.experiments.parallel import simulate_many

    return simulate_many(
        [(config, policy_name)], settings, jobs=jobs, cache=cache, progress=progress
    )[0]


__all__ = [
    "AveragedResults",
    "average_results",
    "simulate",
    "improvement_pct",
    "TextTable",
]
