"""The one typed execution-context object every experiment accepts.

Before this module, every experiment function re-spelled the execution
options as untyped keyword arguments (``jobs: int = 1, cache=None``),
which meant N copies of the same plumbing and no single place to add an
option.  :class:`StudyContext` is that place: it bundles *how* to run —
worker processes, result cache, progress callback — while the experiment
arguments keep saying *what* to run.  The name comes from the ablation
study harness (:mod:`repro.ablation`), whose studies were the forcing
function for unifying the plumbing; plain table regenerations use the
same object.

A context never affects results: ``jobs`` and ``cache`` are
bit-for-bit-neutral by the parallel runner's contract, and ``progress``
is display-only.  The default ``StudyContext()`` is serial and uncached —
exactly what the old default kwargs meant.

Typical use::

    from repro.experiments import StudyContext
    from repro.experiments.cache import ResultCache, default_cache_dir

    ctx = StudyContext(jobs=4, cache=ResultCache(default_cache_dir()))
    result = run_sweep(spec, settings, context=ctx)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # imported lazily at run time to keep the module a leaf
    from repro.experiments.cache import ResultCache
    from repro.experiments.parallel import ProgressCallback, ReplicationTask
    from repro.model.metrics import SystemResults


@dataclass(frozen=True)
class StudyContext:
    """How to execute a batch of simulation runs (never *what* to run).

    Attributes:
        jobs: Worker processes (1 = serial in-process; 0 or negative =
            all cores).  Results are bit-identical regardless.
        cache: Optional content-addressed result cache
            (:class:`~repro.experiments.cache.ResultCache`); cached runs
            are answered from disk and fresh results written back.
        progress: Optional live progress callback (see
            :class:`~repro.experiments.parallel.RunProgress`).  Display
            only.  When ``None``, the callback installed by
            :func:`~repro.experiments.parallel.progress_reporting` (if
            any) still applies.
    """

    jobs: int = 1
    cache: Optional["ResultCache"] = None
    progress: Optional["ProgressCallback"] = None

    def run_tasks(
        self, tasks: Sequence["ReplicationTask"]
    ) -> List["SystemResults"]:
        """Execute *tasks* under this context (see
        :func:`repro.experiments.parallel.run_tasks`)."""
        from repro.experiments.parallel import run_tasks

        return run_tasks(
            tasks, jobs=self.jobs, cache=self.cache, progress=self.progress
        )

    def with_cache(self, cache: Optional["ResultCache"]) -> "StudyContext":
        """This context writing to (and reading from) *cache*."""
        return replace(self, cache=cache)

    def with_jobs(self, jobs: int) -> "StudyContext":
        """This context fanning out over *jobs* workers."""
        return replace(self, jobs=jobs)


#: The default context: serial, uncached, silent.
SERIAL = StudyContext()

__all__ = ["StudyContext", "SERIAL"]
