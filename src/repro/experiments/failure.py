"""Experiment F1 — allocation policies under site failures.

The paper's §5 experiments assume perfectly reliable sites.  This
experiment drops that assumption: each cell runs a policy under a
stochastic crash/repair process (:class:`~repro.faults.plan.RandomOutages`
at every site) and reports how mean waiting time W̄ degrades as the
failure rate rises, next to a faultless baseline.  Load-sharing policies
keep their advantage under faults — the degraded life cycle reallocates
aborted queries to the surviving sites — while LOCAL queries issued at a
crashed site must wait out the outage via retry backoff.

Cells fan out through the parallel backend and are answered from the
content-addressed result cache; a faulted cell can never collide with a
faultless one because the plan is folded into the cache key.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import AveragedResults, TextTable, average_results
from repro.experiments.parallel import ReplicationTask, replication_tasks, run_tasks
from repro.experiments.context import StudyContext
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.faults.plan import FaultPlan, RandomOutages
from repro.model.config import paper_defaults

#: Mean time between failures per site, in simulated time units
#: (smaller = failures more frequent).  ``None`` is the faultless baseline.
FAILURE_MTBFS: Tuple[Optional[float], ...] = (None, 4000.0, 2000.0, 1000.0)

#: Mean time to repair one crashed site.
MTTR = 50.0

POLICIES: Tuple[str, ...] = ("LOCAL", "BNQ", "BNQRD", "LERT")


def failure_plan(mtbf: float, mttr: float = MTTR) -> FaultPlan:
    """A plan crashing every site independently at rate ``1/mtbf``."""
    return FaultPlan(random_outages=(RandomOutages(mtbf=mtbf, mttr=mttr),))


@dataclass(frozen=True)
class FailureCell:
    """One (failure rate, policy) cell of the grid."""

    mtbf: Optional[float]
    policy: str
    averaged: AveragedResults

    @property
    def rate_label(self) -> str:
        return "none" if self.mtbf is None else f"{self.mtbf:g}"

    # Availability aggregates, summed over replications (0 for baseline).
    def _sum(self, attribute: str) -> float:
        total = 0.0
        for run in self.averaged.per_replication:
            if run.availability is not None:
                total += getattr(run.availability, attribute)
        return total

    @property
    def downtime(self) -> float:
        return self._sum("total_downtime")

    @property
    def aborted(self) -> int:
        return int(self._sum("queries_aborted"))

    @property
    def retried(self) -> int:
        return int(self._sum("queries_retried"))

    @property
    def lost(self) -> int:
        return int(self._sum("queries_lost"))


@dataclass(frozen=True)
class FailureResult:
    """The full grid, in (failure rate, policy) order."""

    cells: Tuple[FailureCell, ...]
    settings: RunSettings

    def cell(self, mtbf: Optional[float], policy: str) -> FailureCell:
        for candidate in self.cells:
            if candidate.mtbf == mtbf and candidate.policy == policy:
                return candidate
        raise KeyError(f"no cell for mtbf={mtbf} policy={policy}")

    def by_rate(self) -> Dict[Optional[float], List[FailureCell]]:
        grouped: Dict[Optional[float], List[FailureCell]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.mtbf, []).append(cell)
        return grouped

    def load_sharing_beats_local_under_faults(self) -> bool:
        """Sanity check: at the highest failure rate, LERT still beats LOCAL."""
        worst = min(m for m in {c.mtbf for c in self.cells} if m is not None)
        return (
            self.cell(worst, "LERT").averaged.mean_waiting_time
            < self.cell(worst, "LOCAL").averaged.mean_waiting_time
        )


def run_experiment(
    settings: RunSettings = STANDARD,
    mtbfs: Tuple[Optional[float], ...] = FAILURE_MTBFS,
    *,
    context: StudyContext = StudyContext(),
) -> FailureResult:
    """Run the policy × failure-rate grid (parallel and cached)."""
    config = paper_defaults()
    tasks: List[ReplicationTask] = []
    spans: List[Tuple[int, int, Optional[float], str]] = []
    for mtbf in mtbfs:
        cell_settings = (
            settings
            if mtbf is None
            else settings.with_faults(failure_plan(mtbf))
        )
        for policy in POLICIES:
            start = len(tasks)
            tasks.extend(replication_tasks(config, policy, cell_settings))
            spans.append((start, len(tasks), mtbf, policy))
    runs = run_tasks(
        tasks, jobs=context.jobs, cache=context.cache, progress=context.progress
    )
    cells = tuple(
        FailureCell(
            mtbf=mtbf,
            policy=policy,
            averaged=average_results(policy, runs[start:stop]),
        )
        for start, stop, mtbf, policy in spans
    )
    return FailureResult(cells=cells, settings=settings)


def format_table(result: FailureResult) -> str:
    """Render the W̄ grid and the availability detail."""
    waiting = TextTable(
        ["site MTBF", *POLICIES],
        title=f"Mean waiting time W under site failures (MTTR={MTTR:g})",
    )
    for mtbf, cells in result.by_rate().items():
        by_policy = {cell.policy: cell for cell in cells}
        waiting.add_row(
            "none" if mtbf is None else f"{mtbf:g}",
            *(
                f"{by_policy[policy].averaged.mean_waiting_time:.2f}"
                for policy in POLICIES
            ),
        )
    detail = TextTable(
        ["site MTBF", "policy", "downtime", "aborted", "retried", "lost"],
        title="Availability detail (summed over replications)",
    )
    for cell in result.cells:
        if cell.mtbf is None:
            continue
        detail.add_row(
            cell.rate_label,
            cell.policy,
            f"{cell.downtime:.0f}",
            str(cell.aborted),
            str(cell.retried),
            str(cell.lost),
        )
    return waiting.render() + "\n\n" + detail.render()


def main(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead::

        get_experiment("failure").run(settings, context)

    Kept for callers of the pre-registry per-table spelling; the AST pin
    in tests/experiments/test_registry.py keeps src/repro itself clean.
    """
    warnings.warn(
        "failure.main() is deprecated; use "
        "repro.experiments.registry.get_experiment('failure')"
        ".run(settings, context) (see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    context = StudyContext(jobs=jobs, cache=cache)
    output = format_table(run_experiment(settings, context=context))
    print(output)
    return output


if __name__ == "__main__":
    print(format_table(run_experiment()))
