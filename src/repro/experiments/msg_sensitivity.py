"""Experiment E8 — message-length sensitivity (§5.2 text, not a table).

The paper reports that raising ``msg_length`` from 1.0 to 2.0 at
think_time 350 widens the gap between BNQRD (which ignores communication
cost) and LERT (which charges it): improvements over BNQ become 16.43% and
24.12% respectively.  This experiment sweeps ``msg_length`` and reports the
two policies' improvement over BNQ at each setting.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    AveragedResults,
    TextTable,
    improvement_pct,
)
from repro.experiments.parallel import simulate_many
from repro.experiments.paper_data import (
    MSG_LENGTH2_BNQRD_VS_BNQ,
    MSG_LENGTH2_LERT_VS_BNQ,
)
from repro.experiments.context import StudyContext
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.model.config import paper_defaults

MSG_LENGTHS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
POLICIES: Tuple[str, ...] = ("BNQ", "BNQRD", "LERT")


@dataclass(frozen=True)
class MsgSensitivityRow:
    msg_length: float
    results: Dict[str, AveragedResults]

    def vs_bnq(self, policy: str) -> float:
        return improvement_pct(
            self.results[policy].mean_waiting_time,
            self.results["BNQ"].mean_waiting_time,
        )

    @property
    def lert_advantage(self) -> float:
        """LERT's improvement over BNQ minus BNQRD's (the gap to watch)."""
        return self.vs_bnq("LERT") - self.vs_bnq("BNQRD")


@dataclass(frozen=True)
class MsgSensitivityResult:
    rows: Tuple[MsgSensitivityRow, ...]
    settings: RunSettings

    def gap_widens_with_msg_length(self) -> bool:
        """Paper's claim: the LERT-vs-BNQRD gap grows with msg_length."""
        gaps = [row.lert_advantage for row in self.rows]
        return gaps[-1] > gaps[0]


def run_experiment(
    settings: RunSettings = STANDARD,
    msg_lengths: Tuple[float, ...] = MSG_LENGTHS,
    *,
    context: StudyContext = StudyContext(),
) -> MsgSensitivityResult:
    pairs = [
        (paper_defaults(msg_length=msg_length), name)
        for msg_length in msg_lengths
        for name in POLICIES
    ]
    averaged = iter(simulate_many(
        pairs,
        settings,
        jobs=context.jobs,
        cache=context.cache,
        progress=context.progress,
    ))
    rows: List[MsgSensitivityRow] = []
    for msg_length in msg_lengths:
        results = {name: next(averaged) for name in POLICIES}
        rows.append(MsgSensitivityRow(msg_length=msg_length, results=results))
    return MsgSensitivityResult(rows=tuple(rows), settings=settings)


def format_table(result: MsgSensitivityResult) -> str:
    table = TextTable(
        ["msg_length", "dBNQRD/BNQ%", "dLERT/BNQ%", "LERT advantage"],
        title="Message-length sensitivity (paper at 2.0: "
        f"BNQRD {MSG_LENGTH2_BNQRD_VS_BNQ}%, LERT {MSG_LENGTH2_LERT_VS_BNQ}%)",
    )
    for row in result.rows:
        table.add_row(
            f"{row.msg_length:.1f}",
            f"{row.vs_bnq('BNQRD'):.2f}",
            f"{row.vs_bnq('LERT'):.2f}",
            f"{row.lert_advantage:+.2f}",
        )
    return table.render()


def main(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead::

        get_experiment("msg_sensitivity").run(settings, context)

    Kept for callers of the pre-registry per-table spelling; the AST pin
    in tests/experiments/test_registry.py keeps src/repro itself clean.
    """
    warnings.warn(
        "msg_sensitivity.main() is deprecated; use "
        "repro.experiments.registry.get_experiment('msg_sensitivity')"
        ".run(settings, context) (see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    context = StudyContext(jobs=jobs, cache=cache)
    output = format_table(run_experiment(settings, context=context))
    print(output)
    return output


if __name__ == "__main__":
    print(format_table(run_experiment()))
