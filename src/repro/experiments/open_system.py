"""Experiment E2 — allocation policies under open heavy-traffic arrivals.

The paper's §5 experiments close the system: ``mpl`` terminals per site
resubmit only after their previous query returns, so offered load
self-regulates and overload cannot occur.  This experiment opens it:
each cell drives a policy with an open arrival process
(:class:`~repro.workloads.arrivals.PoissonOpen` or a bursty
:class:`~repro.workloads.arrivals.MMPP`) at a per-site rate expressed as
a fraction of the estimated per-site service capacity
(:func:`~repro.workloads.spec.estimate_site_capacity`), under bounded
per-site admission control.  Reported per cell: mean response time and
the shed fraction — how much of the offered load the admission limit
turned away.  Past saturation (load factor > 1) response time is bounded
by the admission limit and the shed fraction absorbs the excess;
load-sharing policies shed less than LOCAL because they drain hot sites
through the idle ones.

Cells fan out through the parallel backend and are answered from the
content-addressed result cache; an open cell can never collide with a
closed one because the workload spec is folded into the cache key.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import AveragedResults, TextTable, average_results
from repro.experiments.parallel import ReplicationTask, replication_tasks, run_tasks
from repro.experiments.context import StudyContext
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.model.config import paper_defaults
from repro.workloads.arrivals import MMPP, PoissonOpen
from repro.workloads.spec import (
    AdmissionControl,
    WorkloadSpec,
    estimate_site_capacity,
)

#: Per-site offered load as a fraction of estimated service capacity
#: (the last level is past saturation — only admission control keeps it
#: stable).
LOAD_FACTORS: Tuple[float, ...] = (0.5, 0.8, 1.1)

#: Arrival-process kinds in the grid.
ARRIVAL_KINDS: Tuple[str, ...] = ("poisson", "mmpp")

#: Per-site admission limit (admitted open queries in the system).
MAX_PENDING = 32

#: MMPP shape: a lull phase at 0.2x and a burst phase at 1.8x the target
#: rate, equal mean holding times — same long-run rate as the Poisson
#: cell at the same load factor, but delivered in flash crowds.
MMPP_RATE_SPLIT: Tuple[float, float] = (0.2, 1.8)
MMPP_MEAN_HOLDING: Tuple[float, float] = (400.0, 400.0)

POLICIES: Tuple[str, ...] = ("LOCAL", "BNQ", "BNQRD", "LERT")


def workload_for(kind: str, rate: float) -> WorkloadSpec:
    """The workload spec of one grid cell (*rate* is per site)."""
    if kind == "poisson":
        return WorkloadSpec(
            arrivals=PoissonOpen(rate=rate),
            admission=AdmissionControl(max_pending=MAX_PENDING),
        )
    if kind == "mmpp":
        lull, burst = MMPP_RATE_SPLIT
        return WorkloadSpec(
            arrivals=MMPP(
                rates=(lull * rate, burst * rate),
                mean_holding=MMPP_MEAN_HOLDING,
            ),
            admission=AdmissionControl(max_pending=MAX_PENDING),
        )
    raise ValueError(f"unknown arrival kind {kind!r}")


@dataclass(frozen=True)
class OpenCell:
    """One (arrival kind, load factor, policy) cell of the grid."""

    kind: str
    load_factor: float
    policy: str
    averaged: AveragedResults

    @property
    def label(self) -> str:
        return f"{self.kind}@{self.load_factor:g}"

    # Admission aggregates, summed over replications.
    def _sum(self, attribute: str) -> float:
        total = 0.0
        for run in self.averaged.per_replication:
            if run.workload is not None:
                total += getattr(run.workload, attribute)
        return total

    @property
    def offered(self) -> int:
        return int(self._sum("offered"))

    @property
    def admitted(self) -> int:
        return int(self._sum("admitted"))

    @property
    def shed(self) -> int:
        return int(self._sum("shed"))

    @property
    def shed_fraction(self) -> float:
        offered = self.offered
        return self.shed / offered if offered > 0 else 0.0


@dataclass(frozen=True)
class OpenSystemResult:
    """The full grid, in (arrival kind, load factor, policy) order."""

    cells: Tuple[OpenCell, ...]
    settings: RunSettings
    site_capacity: float

    def cell(self, kind: str, load_factor: float, policy: str) -> OpenCell:
        for candidate in self.cells:
            if (
                candidate.kind == kind
                and candidate.load_factor == load_factor
                and candidate.policy == policy
            ):
                return candidate
        raise KeyError(
            f"no cell for kind={kind} load={load_factor} policy={policy}"
        )

    def by_level(self) -> Dict[Tuple[str, float], List[OpenCell]]:
        grouped: Dict[Tuple[str, float], List[OpenCell]] = {}
        for cell in self.cells:
            grouped.setdefault((cell.kind, cell.load_factor), []).append(cell)
        return grouped

    def load_sharing_sheds_less_past_saturation(self) -> bool:
        """Sanity check: past saturation, LERT sheds no more than LOCAL."""
        worst = max(c.load_factor for c in self.cells)
        return (
            self.cell("poisson", worst, "LERT").shed
            <= self.cell("poisson", worst, "LOCAL").shed
        )


def run_experiment(
    settings: RunSettings = STANDARD,
    load_factors: Tuple[float, ...] = LOAD_FACTORS,
    kinds: Tuple[str, ...] = ARRIVAL_KINDS,
    *,
    context: StudyContext = StudyContext(),
) -> OpenSystemResult:
    """Run the policy × arrival process × load-level grid."""
    config = paper_defaults()
    capacity = estimate_site_capacity(config)
    tasks: List[ReplicationTask] = []
    spans: List[Tuple[int, int, str, float, str]] = []
    for kind in kinds:
        for factor in load_factors:
            cell_settings = settings.with_workload(
                workload_for(kind, factor * capacity)
            )
            for policy in POLICIES:
                start = len(tasks)
                tasks.extend(
                    replication_tasks(config, policy, cell_settings)
                )
                spans.append((start, len(tasks), kind, factor, policy))
    runs = run_tasks(
        tasks, jobs=context.jobs, cache=context.cache, progress=context.progress
    )
    cells = tuple(
        OpenCell(
            kind=kind,
            load_factor=factor,
            policy=policy,
            averaged=average_results(policy, runs[start:stop]),
        )
        for start, stop, kind, factor, policy in spans
    )
    return OpenSystemResult(
        cells=cells, settings=settings, site_capacity=capacity
    )


def format_table(result: OpenSystemResult) -> str:
    """Render the response-time grid and the admission detail."""
    response = TextTable(
        ["arrivals@load", *POLICIES],
        title=(
            "Open-system mean response time "
            f"(per-site capacity ~{result.site_capacity:.4f} q/t, "
            f"max_pending={MAX_PENDING})"
        ),
    )
    for (kind, factor), cells in result.by_level().items():
        by_policy = {cell.policy: cell for cell in cells}
        response.add_row(
            f"{kind}@{factor:g}",
            *(
                f"{by_policy[policy].averaged.mean_response_time:.2f}"
                for policy in POLICIES
            ),
        )
    detail = TextTable(
        ["arrivals@load", "policy", "offered", "admitted", "shed", "shed%"],
        title="Admission detail (summed over replications)",
    )
    for cell in result.cells:
        detail.add_row(
            cell.label,
            cell.policy,
            str(cell.offered),
            str(cell.admitted),
            str(cell.shed),
            f"{cell.shed_fraction:.1%}",
        )
    return response.render() + "\n\n" + detail.render()


def main(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead::

        get_experiment("open_system").run(settings, context)

    Kept for callers of the pre-registry per-table spelling; the AST pin
    in tests/experiments/test_registry.py keeps src/repro itself clean.
    """
    warnings.warn(
        "open_system.main() is deprecated; use "
        "repro.experiments.registry.get_experiment('open_system')"
        ".run(settings, context) (see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    context = StudyContext(jobs=jobs, cache=cache)
    output = format_table(run_experiment(settings, context=context))
    print(output)
    return output


if __name__ == "__main__":
    print(format_table(run_experiment()))
