"""The paper's published table values, as data.

Used by the experiment harness to print paper-vs-measured rows and by the
test suite to check that reproduced *shapes* (orderings, trends, crossover
positions) agree with the published results.  Values transcribed from the
tables of Carey, Livny & Lu (TR #556, September 1984); the Table 5/6
transcription caveats are documented in :mod:`repro.analysis.improvement`
and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# ----------------------------------------------------------------------
# Table 5: Waiting Improvement Factor WIF(L, i).
# Keys: (cpu_1, cpu_2); values: 12 cells — for each of the 6 arrival
# conditions, the class-1 then the class-2 arrival.
# ----------------------------------------------------------------------
TABLE5_WIF: Dict[Tuple[float, float], List[float]] = {
    (0.05, 0.50): [0.14, 0.01, 0.08, 0.01, 0.05, 0.01, 0.10, 0.01, 0.01, 0.09, 0.05, 0.05],
    (0.05, 1.00): [0.24, 0.13, 0.14, 0.18, 0.09, 0.07, 0.16, 0.04, 0.09, 0.04, 0.11, 0.04],
    (0.10, 1.00): [0.20, 0.12, 0.11, 0.16, 0.07, 0.06, 0.13, 0.03, 0.08, 0.03, 0.09, 0.03],
    (0.10, 2.00): [0.31, 0.31, 0.19, 0.41, 0.18, 0.11, 0.20, 0.10, 0.11, 0.09, 0.09, 0.15],
    (0.50, 2.00): [0.00, 0.22, 0.00, 0.30, 0.00, 0.16, 0.01, 0.09, 0.01, 0.09, 0.05, 0.05],
    (0.50, 2.50): [0.02, 0.17, 0.01, 0.23, 0.01, 0.11, 0.01, 0.06, 0.01, 0.06, 0.03, 0.04],
}

# ----------------------------------------------------------------------
# Table 6: Fairness Improvement Factor FIF(L, i).  Same layout.
# ----------------------------------------------------------------------
TABLE6_FIF: Dict[Tuple[float, float], List[float]] = {
    (0.05, 0.50): [0.69, 0.60, 0.64, 0.11, 0.42, 0.48, 0.69, 0.20, 0.89, 0.79, 0.72, 0.87],
    (0.05, 1.00): [0.75, 0.70, 0.70, 0.01, 0.38, 0.60, 0.89, 0.07, 0.70, 0.93, 0.68, 0.67],
    (0.10, 1.00): [0.72, 0.69, 0.67, 0.02, 0.39, 0.72, 0.79, 0.05, 0.77, 0.74, 0.52, 0.55],
    (0.10, 2.00): [0.78, 0.81, 0.73, 0.30, 0.36, 0.60, 0.99, 0.22, 0.60, 0.25, 0.48, 0.69],
    (0.50, 2.00): [0.34, 0.95, 0.88, 0.35, 0.75, 0.14, 0.11, 0.83, 0.40, 0.55, 0.84, 0.77],
    (0.50, 2.50): [0.60, 0.74, 0.56, 0.07, 0.50, 0.15, 0.40, 0.55, 0.75, 0.25, 0.47, 0.95],
}

# ----------------------------------------------------------------------
# Table 8: waiting time versus think time.
# think_time -> (rho_c, W_local, d_bnq_vs_local%, d_bnqrd_vs_local%,
#                d_lert_vs_local%, d_bnqrd_vs_bnq%, d_lert_vs_bnq%)
# ----------------------------------------------------------------------
TABLE8_THINK: Dict[float, Tuple[float, float, float, float, float, float, float]] = {
    150.0: (0.85, 72.71, 4.89, 17.03, 14.84, 12.76, 10.46),
    200.0: (0.77, 48.61, 10.30, 23.08, 24.61, 14.25, 15.96),
    250.0: (0.68, 35.71, 23.55, 32.30, 32.67, 11.44, 11.92),
    300.0: (0.59, 26.82, 26.54, 38.43, 37.43, 16.19, 14.82),
    350.0: (0.53, 22.71, 38.53, 41.96, 43.54, 5.57, 9.58),
    400.0: (0.48, 18.37, 38.02, 40.84, 42.72, 4.55, 7.58),
    450.0: (0.43, 15.60, 41.13, 44.27, 46.50, 5.33, 9.12),
}

# ----------------------------------------------------------------------
# Table 9: waiting time versus mpl.  mpl -> same tuple layout as Table 8.
# ----------------------------------------------------------------------
TABLE9_MPL: Dict[int, Tuple[float, float, float, float, float, float, float]] = {
    15: (0.41, 13.81, 36.86, 44.20, 43.10, 11.63, 9.88),
    20: (0.53, 22.71, 38.53, 41.96, 43.54, 5.57, 9.58),
    25: (0.65, 33.90, 30.68, 36.55, 37.15, 8.46, 9.33),
    30: (0.75, 50.97, 23.12, 33.83, 34.56, 13.96, 14.88),
    35: (0.83, 73.72, 10.97, 24.21, 26.32, 14.87, 17.24),
}

# ----------------------------------------------------------------------
# Table 10: maximum mpl sustaining an expected-response-time bound.
# bound -> (max mpl LOCAL, max mpl LERT)
# ----------------------------------------------------------------------
TABLE10_CAPACITY: Dict[float, Tuple[int, int]] = {
    40.0: (10, 17),
    50.0: (18, 23),
    60.0: (21, 28),
    70.0: (27, 31),
    80.0: (29, 34),
}

# ----------------------------------------------------------------------
# Table 11: waiting time and subnet utilization versus number of sites.
# num_sites -> (d_bnq_vs_local%, d_lert_vs_local%,
#               subnet_util_bnq%, subnet_util_lert%)
# W_local is the system-wide 21.53 reported for the whole column.
# ----------------------------------------------------------------------
TABLE11_SITES: Dict[int, Tuple[float, float, float, float]] = {
    2: (15.19, 26.82, 6.35, 6.49),
    4: (27.10, 33.54, 21.38, 20.90),
    6: (34.18, 39.18, 37.07, 36.04),
    8: (32.17, 39.23, 54.41, 52.07),
    10: (26.13, 36.27, 72.70, 68.83),
}
TABLE11_W_LOCAL = 21.53

# ----------------------------------------------------------------------
# Table 12: W and F versus class_io_prob.
# prob -> (rho_d_over_rho_c, W_local, d_bnq%, d_lert%,
#          F_local, dF_bnq%, dF_lert%)
# ----------------------------------------------------------------------
TABLE12_FAIRNESS: Dict[float, Tuple[float, float, float, float, float, float, float]] = {
    0.3: (0.70, 33.01, 33.90, 37.55, -0.377, 76.66, 73.74),
    0.4: (0.81, 28.63, 39.78, 42.71, -0.228, 100.00, 78.51),
    0.5: (0.95, 22.71, 38.53, 43.54, -0.042, -42.85, 88.10),
    0.6: (1.16, 19.17, 38.54, 43.32, 0.047, -76.60, -57.45),
    0.7: (1.49, 16.28, 38.08, 42.05, 0.153, 37.91, 38.56),
    0.8: (2.08, 15.17, 39.64, 42.98, 0.224, 40.18, 42.86),
}

# §5.2 text: with msg_length = 2 and think_time = 350, the BNQRD and LERT
# improvements over BNQ become 16.43% and 24.12% respectively.
MSG_LENGTH2_BNQRD_VS_BNQ = 16.43
MSG_LENGTH2_LERT_VS_BNQ = 24.12


__all__ = [
    "TABLE5_WIF",
    "TABLE6_FIF",
    "TABLE8_THINK",
    "TABLE9_MPL",
    "TABLE10_CAPACITY",
    "TABLE11_SITES",
    "TABLE11_W_LOCAL",
    "TABLE12_FAIRNESS",
    "MSG_LENGTH2_BNQRD_VS_BNQ",
    "MSG_LENGTH2_LERT_VS_BNQ",
]
