"""Process-pool execution backend for the experiment harness.

Every simulation cell the harness runs — one ``(config, policy, seed)``
replication — is a pure, picklable function of its inputs, so the
per-replication and per-cell work of :func:`~repro.experiments.common.simulate`,
:func:`~repro.experiments.sweep.run_sweep`, and the table modules can fan
out across cores with :class:`concurrent.futures.ProcessPoolExecutor` and be
reassembled deterministically: results are returned *in task order*, never
completion order, and replication averaging uses :func:`math.fsum` (whose
correctly-rounded sum is permutation invariant), so output is bit-identical
to a serial run regardless of scheduling.

The backend composes with the content-addressed result cache
(:mod:`repro.experiments.cache`): cached tasks are answered without touching
the pool, duplicate tasks inside one batch are simulated once, and fresh
results are written back atomically.

Public surface:

* :class:`ReplicationTask` — picklable spec of one simulation run;
* :func:`run_task` — execute one task (also the worker entry point);
* :func:`run_tasks` — execute a batch, optionally parallel and cached;
* :func:`simulate_many` — the batch analogue of ``common.simulate``;
* :func:`resolve_jobs` — normalize a ``--jobs`` value to a worker count;
* :class:`RunProgress` / :func:`progress_reporting` — live progress:
  ``run_tasks`` invokes a callback as each task resolves (from cache or
  simulation).  Progress is *observational only* — it is reported in
  resolution order, which under a pool is nondeterministic, but the
  returned results remain in task order and bit-identical regardless.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.runconfig import RunSettings
from repro.faults.plan import FaultPlan
from repro.model.config import SystemConfig
from repro.model.metrics import SystemResults
from repro.workloads.spec import WorkloadSpec, normalize_workload

#: Registered simulation-system kinds (see :func:`system_class`).
SYSTEM_KINDS = ("standard", "stale", "updates", "heterogeneous")


@dataclass(frozen=True)
class RunProgress:
    """One progress tick of a :func:`run_tasks` batch.

    Attributes:
        completed: Tasks resolved so far (including this one).
        total: Tasks in the batch.
        cached: How many of the resolved tasks came from the cache.
        policy: Policy name of the task that just resolved.
        seed: Seed of the task that just resolved.
    """

    completed: int
    total: int
    cached: int
    policy: str
    seed: int


#: A live progress consumer (e.g. a CLI spinner).
ProgressCallback = Callable[[RunProgress], None]

#: Process-wide default progress callback (see :func:`progress_reporting`).
_active_progress: Optional[ProgressCallback] = None


@contextmanager
def progress_reporting(callback: ProgressCallback) -> Iterator[None]:
    """Install *callback* as the default progress consumer for this process.

    Every :func:`run_tasks` batch inside the ``with`` block reports to it
    unless the call passes an explicit ``progress=``.  This lets the CLI
    thread live progress through the table modules without changing their
    signatures.  Nestable; the previous callback is restored on exit.
    """
    global _active_progress
    previous = _active_progress
    _active_progress = callback
    try:
        yield
    finally:
        _active_progress = previous


@dataclass(frozen=True)
class ReplicationTask:
    """Picklable description of one simulation run.

    ``system_kind`` selects the system class ("standard" is
    :class:`~repro.model.system.DistributedDatabase`; the extension kinds
    map to the classes in :mod:`repro.extensions`), and ``system_kwargs``
    carries its extra constructor arguments as a sorted tuple of
    ``(name, value)`` pairs so the task stays hashable and its cache key
    stays canonical.

    ``faults`` optionally installs a fault plan for the run.  A no-op
    plan is normalized to ``None`` at construction (same run, same cache
    key), and non-``None`` plans are folded into :meth:`key`, so a
    faulted task can never be answered from a faultless cache entry.
    Fault plans are only supported on the "standard" system kind (the
    extension life cycles do not implement degraded mode).

    ``workload`` optionally drives the run with an open workload spec.
    The default closed spec is normalized to ``None`` at construction
    (same run, same cache key), and non-``None`` specs are folded into
    :meth:`key`.  Like fault plans, open workloads are only supported on
    the "standard" system kind.
    """

    config: SystemConfig
    policy: str
    seed: int
    warmup: float
    duration: float
    system_kind: str = "standard"
    system_kwargs: Tuple[Tuple[str, Any], ...] = field(default=())
    faults: Optional[FaultPlan] = None
    workload: Optional[WorkloadSpec] = None

    def __post_init__(self) -> None:
        if self.system_kind not in SYSTEM_KINDS:
            raise ValueError(
                f"unknown system kind {self.system_kind!r}; "
                f"expected one of {SYSTEM_KINDS}"
            )
        ordered = tuple(sorted(self.system_kwargs))
        object.__setattr__(self, "system_kwargs", ordered)
        if self.faults is not None and self.faults.is_noop:
            object.__setattr__(self, "faults", None)
        if self.faults is not None and self.system_kind != "standard":
            raise ValueError(
                "fault plans require the 'standard' system kind; "
                f"got {self.system_kind!r}"
            )
        object.__setattr__(self, "workload", normalize_workload(self.workload))
        if self.workload is not None and self.system_kind != "standard":
            raise ValueError(
                "open workloads require the 'standard' system kind; "
                f"got {self.system_kind!r}"
            )

    def key(self) -> str:
        """Content address of this task (see :func:`cache_key`)."""
        return cache_key(
            self.config,
            self.policy,
            seed=self.seed,
            warmup=self.warmup,
            duration=self.duration,
            system_kind=self.system_kind,
            system_kwargs=self.system_kwargs,
            faults=self.faults,
            workload=self.workload,
        )


def replication_tasks(
    config: SystemConfig,
    policy: str,
    settings: RunSettings,
    *,
    system_kind: str = "standard",
    system_kwargs: Tuple[Tuple[str, Any], ...] = (),
) -> List[ReplicationTask]:
    """One task per replication of a (config, policy, settings) cell.

    ``settings.faults`` and ``settings.workload`` (when set) are carried
    onto every task.
    """
    return [
        ReplicationTask(
            config=config,
            policy=policy,
            seed=settings.seed_for(replication),
            warmup=settings.warmup,
            duration=settings.duration,
            system_kind=system_kind,
            system_kwargs=system_kwargs,
            faults=settings.faults,
            workload=settings.workload,
        )
        for replication in range(settings.replications)
    ]


def system_class(kind: str):
    """The system class for a task kind (imported lazily per worker)."""
    if kind == "standard":
        from repro.model.system import DistributedDatabase

        return DistributedDatabase
    if kind == "stale":
        from repro.extensions.stale_info import StaleInfoDatabase

        return StaleInfoDatabase
    if kind == "updates":
        from repro.extensions.updates import UpdateWorkloadDatabase

        return UpdateWorkloadDatabase
    if kind == "heterogeneous":
        from repro.extensions.heterogeneous import HeterogeneousDatabase

        return HeterogeneousDatabase
    raise KeyError(f"unknown system kind {kind!r}")


def _make_policy(name: str):
    """Policy lookup, extended with the heterogeneity-aware LERT variant."""
    if name == "LERT-HET":
        from repro.extensions.heterogeneous import HeterogeneousLERTPolicy

        return HeterogeneousLERTPolicy()
    from repro.policies.registry import make_policy

    return make_policy(name)


def run_task(task: ReplicationTask) -> SystemResults:
    """Execute one task to completion (the process-pool worker function).

    Goes through :func:`repro.runner.execute` — the shared run
    entry point — always with telemetry disabled: cached results are
    telemetry-free, so telemetry options can never perturb cache keys or
    cached content.
    """
    # Imported lazily so pool workers (and the no-runner import path)
    # never pay for it, and to keep the module import graph acyclic.
    from repro.runner import RunSpec, execute

    cls = system_class(task.system_kind)
    kwargs = dict(task.system_kwargs)
    if task.workload is not None:
        # Workloads bind at construction (arrival processes start at
        # time 0), unlike fault plans which execute() installs.
        kwargs["workload"] = task.workload
    system = cls(
        task.config,
        _make_policy(task.policy),
        seed=task.seed,
        **kwargs,
    )
    spec = RunSpec(
        warmup=task.warmup,
        duration=task.duration,
        seed=task.seed,
        faults=task.faults,
        workload=task.workload,
    )
    return execute(system, spec).results


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` style value to a positive worker count.

    ``None`` or ``1`` mean serial; ``0`` and negative values mean "all
    cores" (:func:`os.cpu_count`).
    """
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _pool_context():
    """Prefer fork on platforms that have it (cheap workers, no re-import)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def run_tasks(
    tasks: Sequence[ReplicationTask],
    *,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[SystemResults]:
    """Execute *tasks* and return their results **in task order**.

    * With ``jobs > 1`` outstanding work fans out over a process pool;
      completion order never affects the returned list.
    * With a *cache*, each task is answered from disk when possible and
      fresh results are written back; duplicate tasks within the batch are
      simulated only once.
    * With *progress* (or an enclosing :func:`progress_reporting`), the
      callback fires once per task as it resolves — from cache or
      simulation — in resolution order.  Display only; results are
      unaffected.
    """
    report = progress if progress is not None else _active_progress
    total = len(tasks)
    resolved = 0
    from_cache = 0

    def tick(task: ReplicationTask, count: int, cached: bool) -> None:
        nonlocal resolved, from_cache
        resolved += count
        if cached:
            from_cache += count
        if report is not None:
            report(
                RunProgress(
                    completed=resolved,
                    total=total,
                    cached=from_cache,
                    policy=task.policy,
                    seed=task.seed,
                )
            )

    results: List[Optional[SystemResults]] = [None] * len(tasks)

    # Resolve cache hits up front; collect one representative index per
    # distinct outstanding task (duplicates share the computed result).
    representatives: Dict[ReplicationTask, List[int]] = {}
    for index, task in enumerate(tasks):
        if cache is not None:
            hit = cache.get(task.key())
            if hit is not None:
                results[index] = hit
                tick(task, 1, cached=True)
                continue
        representatives.setdefault(task, []).append(index)

    pending = [(task, indices) for task, indices in representatives.items()]
    workers = min(resolve_jobs(jobs), len(pending)) if pending else 0
    if workers > 1:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            futures = {
                pool.submit(run_task, task): (task, indices)
                for task, indices in pending
            }
            for future in as_completed(futures):
                outcome = future.result()
                task, indices = futures[future]
                for index in indices:
                    results[index] = outcome
                tick(task, len(indices), cached=False)
    else:
        for task, indices in pending:
            outcome = run_task(task)
            for index in indices:
                results[index] = outcome
            tick(task, len(indices), cached=False)

    if cache is not None:
        for task, indices in pending:
            cache.put(task.key(), results[indices[0]])
    return results  # type: ignore[return-value]


def simulate_many(
    pairs: Sequence[Tuple[SystemConfig, str]],
    settings: RunSettings,
    *,
    jobs: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
):
    """Run many (config, policy) cells, averaged over replications each.

    The batch analogue of :func:`repro.experiments.common.simulate`: all
    replications of all cells fan out together (maximizing pool
    utilization), then each cell's runs are reassembled in replication
    order and averaged.  Returns one
    :class:`~repro.experiments.common.AveragedResults` per pair, in pair
    order, bit-identical to calling ``simulate`` serially per pair.
    """
    from repro.experiments.common import average_results

    tasks: List[ReplicationTask] = []
    spans: List[Tuple[int, int, str]] = []
    for config, policy in pairs:
        start = len(tasks)
        tasks.extend(replication_tasks(config, policy, settings))
        spans.append((start, len(tasks), policy))
    runs = run_tasks(tasks, jobs=jobs, cache=cache, progress=progress)
    return [
        average_results(policy, runs[start:stop]) for start, stop, policy in spans
    ]


__all__ = [
    "SYSTEM_KINDS",
    "ProgressCallback",
    "ReplicationTask",
    "RunProgress",
    "progress_reporting",
    "replication_tasks",
    "resolve_jobs",
    "run_task",
    "run_tasks",
    "simulate_many",
    "system_class",
]
