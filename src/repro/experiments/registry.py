"""The Experiment protocol and registry — one front door for every table.

Before this module, each of the paper-table reproductions
(``table5.py`` … ``table12.py``, ``msg_sensitivity.py``, ``failure.py``,
``open_system.py``, ``validation.py``) and each ablation sweep exposed
its own ``main(settings, *, jobs=1, cache=None)`` spelling, and the CLI
hard-coded two parallel dispatch dicts.  The registry collapses those
entry points behind one shape:

* :class:`Experiment` — name, section title, description, whether the
  experiment is analytic (no simulation, ignores run settings), and a
  ``run(settings, context)`` method that returns the rendered table.
* :func:`all_experiments` / :func:`get_experiment` /
  :func:`experiment_names` — lookup, in stable report order.

The ``repro-experiments`` CLI generates its subcommands from
:func:`experiment_names`, and ``repro-experiments report`` walks
:func:`all_experiments` — registering an experiment here is the single
step that wires it into both.

The registry imports every experiment module, and those modules import
:mod:`repro.experiments.report` for :class:`~repro.experiments.report.TextTable`,
so the report module must import *this* one lazily (it does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.experiments.context import StudyContext
from repro.experiments.runconfig import STANDARD, RunSettings

#: An experiment body: run at *settings* under *context*, return the
#: rendered table text.
ExperimentRunner = Callable[[RunSettings, StudyContext], str]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: what it's called and how to run it.

    Attributes:
        name: CLI subcommand and registry key (``"table8"``,
            ``"ablation-stale"``, ...).
        title: Section heading used in generated reports.
        description: One-line help string shown by ``repro-experiments
            list`` and the CLI ``--help``.
        analytic: True when the experiment needs no simulation — it
            ignores run settings and the execution context, never touches
            the result cache, and is excluded from ``--scale`` semantics.
        runner: The body; call through :meth:`run`.
    """

    name: str
    title: str
    description: str
    analytic: bool = False
    runner: ExperimentRunner = field(repr=False, default=None)  # type: ignore[assignment]

    def run(
        self,
        settings: RunSettings = STANDARD,
        context: StudyContext = StudyContext(),
    ) -> str:
        """Execute the experiment and return its rendered table."""
        return self.runner(settings, context)


def _table_runner(module_name: str) -> ExperimentRunner:
    """Runner for the uniform simulation modules.

    Each has ``run_experiment(settings, *, context)`` and
    ``format_table(result)``; the module is imported lazily so that
    importing the registry stays cheap until an experiment actually runs.
    """

    def run(settings: RunSettings, context: StudyContext) -> str:
        import importlib

        module = importlib.import_module(f"repro.experiments.{module_name}")
        return module.format_table(
            module.run_experiment(settings, context=context)
        )

    return run


def _analytic_runner(module_name: str) -> ExperimentRunner:
    """Runner for the analytic tables (``run_experiment()`` takes nothing)."""

    def run(settings: RunSettings, context: StudyContext) -> str:
        import importlib

        del settings, context  # analytic: nothing to scale or cache
        module = importlib.import_module(f"repro.experiments.{module_name}")
        return module.format_table(module.run_experiment())

    return run


def _validation_runner() -> ExperimentRunner:
    """Runner for the substrate cross-validation (settings, no context)."""

    def run(settings: RunSettings, context: StudyContext) -> str:
        del context  # cheap network-level runs; not keyed like DB cells
        from repro.experiments import validation

        return validation.format_table(validation.run_experiment(settings))

    return run


def _ablation_runner(sweep_name: str, formatter_name: str) -> ExperimentRunner:
    """Runner for the ablation sweeps in :mod:`repro.experiments.ablations`."""

    def run(settings: RunSettings, context: StudyContext) -> str:
        from repro.experiments import ablations

        sweep = getattr(ablations, sweep_name)
        formatter = getattr(ablations, formatter_name)
        return formatter(sweep(settings, context=context))

    return run


def _study_runner(study_name: str) -> ExperimentRunner:
    """Runner that executes a catalog study and renders its ranked report."""

    def run(settings: RunSettings, context: StudyContext) -> str:
        from repro.ablation import build_study, render_study_report, run_study

        spec = build_study(study_name, settings)
        outcome = run_study(spec, context=context)
        return render_study_report(outcome)

    return run


#: Registration order is report order: analytic foundations first, then
#: the paper's simulation tables, then extensions, then ablations.
_EXPERIMENTS: Tuple[Experiment, ...] = (
    Experiment(
        name="table5",
        title="Table 5 — Waiting Improvement Factor",
        description="analytic WIF(L,i) grid vs the paper's values",
        analytic=True,
        runner=_analytic_runner("table5"),
    ),
    Experiment(
        name="table6",
        title="Table 6 — Fairness Improvement Factor",
        description="analytic FIF(L,i) grid vs the paper's values",
        analytic=True,
        runner=_analytic_runner("table6"),
    ),
    Experiment(
        name="table8",
        title="Table 8 — Primary simulation comparison",
        description="all policies on the paper's base configuration",
        runner=_table_runner("table8"),
    ),
    Experiment(
        name="table9",
        title="Table 9 — MPL sensitivity",
        description="policy improvements across multiprogramming levels",
        runner=_table_runner("table9"),
    ),
    Experiment(
        name="table10",
        title="Table 10 — Load sensitivity",
        description="policy improvements across think times",
        runner=_table_runner("table10"),
    ),
    Experiment(
        name="table11",
        title="Table 11 — Scaling with the number of sites",
        description="policy improvements as the fleet grows",
        runner=_table_runner("table11"),
    ),
    Experiment(
        name="table12",
        title="Table 12 — CPU/disk demand ratio",
        description="policy improvements across resource-demand mixes",
        runner=_table_runner("table12"),
    ),
    Experiment(
        name="msg",
        title="Message-cost sensitivity",
        description="policy improvements as message CPU cost grows",
        runner=_table_runner("msg_sensitivity"),
    ),
    Experiment(
        name="failures",
        title="Site failures and recovery",
        description="policies under a crash/recovery fault plan",
        runner=_table_runner("failure"),
    ),
    Experiment(
        name="open",
        title="Open-system workloads",
        description="policies under open arrivals with admission control",
        runner=_table_runner("open_system"),
    ),
    Experiment(
        name="validation",
        title="Substrate cross-validation",
        description="simulator vs exact MVA vs AMVA vs bounds",
        runner=_validation_runner(),
    ),
    Experiment(
        name="ablation-stale",
        title="Ablation A2 — load-information staleness",
        description="LERT's advantage as load snapshots go stale",
        runner=_ablation_runner("stale_info_sweep", "format_stale_info"),
    ),
    Experiment(
        name="ablation-disk",
        title="Ablation A1 — disk organization",
        description="per-disk queues vs one shared disk queue",
        runner=_ablation_runner(
            "disk_organization_study", "format_disk_organization"
        ),
    ),
    Experiment(
        name="ablation-updates",
        title="Ablation — update fraction",
        description="read-only assumption relaxed via update propagation",
        runner=_ablation_runner("update_fraction_sweep", "format_update_fraction"),
    ),
    Experiment(
        name="ablation-heterogeneous",
        title="Ablation — heterogeneous CPU speeds",
        description="policies on a fleet with unequal CPU speeds",
        runner=_ablation_runner("heterogeneity_study", "format_heterogeneity"),
    ),
    Experiment(
        name="ablation-subnet",
        title="Ablation — subnet topology",
        description="Table 11's sweep on a ring vs a point-to-point mesh",
        runner=_ablation_runner("subnet_scaling_study", "format_subnet_scaling"),
    ),
    Experiment(
        name="study-core",
        title="Core component-importance study",
        description=(
            "ranked A1-A4 component importance from the committed core "
            "StudySpec"
        ),
        runner=_study_runner("core"),
    ),
)

_REGISTRY: Dict[str, Experiment] = {e.name: e for e in _EXPERIMENTS}
if len(_REGISTRY) != len(_EXPERIMENTS):  # pragma: no cover - registration bug
    raise RuntimeError("duplicate experiment names in the registry")


def all_experiments() -> Tuple[Experiment, ...]:
    """Every registered experiment, in report order."""
    return _EXPERIMENTS


def experiment_names() -> Tuple[str, ...]:
    """Registered names, in report order (CLI subcommand set)."""
    return tuple(e.name for e in _EXPERIMENTS)


def get_experiment(name: str) -> Experiment:
    """Look up one experiment by name; raises ``KeyError`` with options."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


__all__ = [
    "Experiment",
    "ExperimentRunner",
    "all_experiments",
    "experiment_names",
    "get_experiment",
]
