"""One-shot report generation: every experiment, one Markdown document.

``repro-experiments report --scale quick`` (or :func:`generate_report`)
runs the full reproduction — both analytic tables, all five simulation
tables, the message-length sensitivity, and the ablations — and writes a
self-contained Markdown report with every table, run settings, and
timings.  EXPERIMENTS.md in the repository root is the curated version of
such a report at ``standard`` scale, annotated with paper comparisons.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.experiments import (
    ablations,
    validation,
    msg_sensitivity,
    table5,
    table6,
    table8,
    table9,
    table10,
    table11,
    table12,
)
from repro.experiments.runconfig import RunSettings, STANDARD

#: (section title, runner, needs_settings) in report order.
SECTIONS: Tuple[Tuple[str, Callable, bool], ...] = (
    ("Table 5 — Waiting Improvement Factor (analytic)", table5.main, False),
    ("Table 6 — Fairness Improvement Factor (analytic)", table6.main, False),
    ("Table 8 — waiting time vs think time", table8.main, True),
    ("Table 9 — waiting time vs mpl", table9.main, True),
    ("Table 10 — capacity vs response-time bound", table10.main, True),
    ("Table 11 — sites vs waiting time and subnet load", table11.main, True),
    ("Table 12 — class mix vs waiting time and fairness", table12.main, True),
    ("Message-length sensitivity", msg_sensitivity.main, True),
    ("Ablation — load-information staleness", ablations.main_stale, True),
    ("Ablation — disk organization", ablations.main_disk, True),
    ("Ablation — update fraction", ablations.main_updates, True),
    ("Ablation — heterogeneous CPU speeds", ablations.main_heterogeneous, True),
    ("Ablation — subnet topology", ablations.main_subnet, True),
    ("Substrate cross-validation", validation.main, True),
)


def generate_report(
    settings: RunSettings = STANDARD,
    sections: Optional[Sequence[str]] = None,
    *,
    jobs: int = 1,
    cache=None,
) -> str:
    """Run the selected experiments and return the Markdown report.

    Args:
        settings: Run lengths for the simulation experiments.
        sections: Optional list of section-title substrings to include
            (case-insensitive); ``None`` runs everything.
        jobs: Worker processes for the simulation cells (default serial).
        cache: Optional :class:`~repro.experiments.cache.ResultCache` to
            reuse previously simulated cells.
    """
    chosen: List[Tuple[str, Callable, bool]] = []
    for title, runner, needs_settings in SECTIONS:
        if sections is not None and not any(
            needle.lower() in title.lower() for needle in sections
        ):
            continue
        chosen.append((title, runner, needs_settings))
    if not chosen:
        raise ValueError(f"no report sections match {sections!r}")

    lines: List[str] = [
        "# Reproduction report",
        "",
        "Carey, Livny & Lu — *Dynamic Task Allocation in a Distributed "
        "Database System* (ICDCS 1985).",
        "",
        f"Run settings: warmup {settings.warmup:g}, duration "
        f"{settings.duration:g}, replications {settings.replications}, "
        f"base seed {settings.base_seed}.",
        "",
    ]
    for title, runner, needs_settings in chosen:
        started = time.perf_counter()
        output = (
            runner(settings, jobs=jobs, cache=cache)
            if needs_settings
            else runner()
        )
        elapsed = time.perf_counter() - started
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(output.rstrip())
        lines.append("```")
        lines.append("")
        lines.append(f"*generated in {elapsed:.1f}s*")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: Union[str, pathlib.Path],
    settings: RunSettings = STANDARD,
    sections: Optional[Sequence[str]] = None,
    *,
    jobs: int = 1,
    cache=None,
) -> None:
    """Generate a report and write it to *path*."""
    pathlib.Path(path).write_text(
        generate_report(settings, sections, jobs=jobs, cache=cache),
        encoding="utf-8",
    )


__all__ = ["SECTIONS", "generate_report", "write_report"]
