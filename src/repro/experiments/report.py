"""Table rendering and one-shot report generation.

This module owns the *presentation* layer of the experiment harness:

* :class:`TextTable` — the one table renderer.  Every experiment and
  ablation study builds its rows once and renders them either as the
  fixed-width text the CLI prints (:meth:`TextTable.render`) or as
  GitHub-flavored Markdown (:meth:`TextTable.render_markdown`); both go
  through a single cell-formatting path, so the two forms can never
  drift apart.
* :func:`improvement_pct` — the paper's ΔW_X,Y / W_Y percentage, with a
  zero-baseline guard (an idle baseline has no meaningful relative
  improvement, so the delta is reported as 0.0 rather than dividing by
  zero).
* :func:`generate_report` / :func:`write_report` — run every registered
  experiment (``repro-experiments report``) and emit one self-contained
  Markdown document.  EXPERIMENTS.md in the repository root is the
  curated version of such a report at ``standard`` scale.

The experiment registry is imported lazily inside the report functions:
the registry imports every experiment module, and those modules import
this one for :class:`TextTable`, so a top-level import would be
circular.
"""

from __future__ import annotations

import pathlib
import time
from typing import List, Optional, Sequence, Tuple, Union

from repro.experiments.context import StudyContext
from repro.experiments.runconfig import RunSettings, STANDARD


def improvement_pct(new: float, base: float) -> float:
    """The paper's ΔW_X,Y / W_Y, as a percentage (positive = X better).

    Guarded against a zero baseline: comparing against an idle system
    (``base == 0``) has no meaningful relative improvement, so the delta
    is defined as 0.0 instead of dividing by zero.
    """
    if base == 0:
        return 0.0
    return 100.0 * (base - new) / base


class TextTable:
    """One table, two renderings — fixed-width text and Markdown.

    Rows are formatted once (:meth:`_fmt`) and shared by both renderers,
    so the CLI's terminal output and the Markdown reports always show
    identical cell content.
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.headers)} headers"
            )
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    def render(self) -> str:
        """Fixed-width text, in the spirit of the paper's tables."""
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.rjust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """The same rows as a GitHub-flavored Markdown table."""
        lines: List[str] = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---:" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def report_sections() -> Tuple[Tuple[str, str], ...]:
    """``(experiment name, section title)`` pairs, in report order.

    Derived from the experiment registry, so registering a new
    experiment automatically adds its section to ``repro-experiments
    report``.
    """
    from repro.experiments.registry import all_experiments

    return tuple(
        (experiment.name, experiment.title) for experiment in all_experiments()
    )


def generate_report(
    settings: RunSettings = STANDARD,
    sections: Optional[Sequence[str]] = None,
    *,
    context: StudyContext = StudyContext(),
) -> str:
    """Run the selected experiments and return the Markdown report.

    Args:
        settings: Run lengths for the simulation experiments.
        sections: Optional list of section-title substrings to include
            (case-insensitive); ``None`` runs everything.
        context: Execution context (workers, cache, progress) shared by
            every simulation experiment in the report.
    """
    from repro.experiments.registry import all_experiments

    chosen = [
        experiment
        for experiment in all_experiments()
        if sections is None
        or any(needle.lower() in experiment.title.lower() for needle in sections)
    ]
    if not chosen:
        raise ValueError(f"no report sections match {sections!r}")

    lines: List[str] = [
        "# Reproduction report",
        "",
        "Carey, Livny & Lu — *Dynamic Task Allocation in a Distributed "
        "Database System* (ICDCS 1985).",
        "",
        f"Run settings: warmup {settings.warmup:g}, duration "
        f"{settings.duration:g}, replications {settings.replications}, "
        f"base seed {settings.base_seed}.",
        "",
    ]
    for experiment in chosen:
        started = time.perf_counter()
        output = experiment.run(settings, context)
        elapsed = time.perf_counter() - started
        lines.append(f"## {experiment.title}")
        lines.append("")
        lines.append("```")
        lines.append(output.rstrip())
        lines.append("```")
        lines.append("")
        lines.append(f"*generated in {elapsed:.1f}s*")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: Union[str, pathlib.Path],
    settings: RunSettings = STANDARD,
    sections: Optional[Sequence[str]] = None,
    *,
    context: StudyContext = StudyContext(),
) -> None:
    """Generate a report and write it to *path*."""
    pathlib.Path(path).write_text(
        generate_report(settings, sections, context=context),
        encoding="utf-8",
    )


__all__ = [
    "TextTable",
    "improvement_pct",
    "report_sections",
    "generate_report",
    "write_report",
]
