"""Run-length presets for the simulation experiments.

Each experiment can run at three scales:

* ``quick`` — short runs for the benchmark harness and smoke tests;
  trends are visible but individual cells are noisy.
* ``standard`` — the default for regenerating tables interactively.
* ``paper`` — long runs with replications, used to produce the numbers
  recorded in EXPERIMENTS.md.

A :class:`RunSettings` also carries the replication count; replications use
independently derived master seeds and results are averaged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.faults.plan import FaultPlan
from repro.workloads.spec import WorkloadSpec, normalize_workload


@dataclass(frozen=True)
class RunSettings:
    """Warmup/measurement lengths and replication control for one run.

    ``faults`` optionally installs a fault plan in every run made from
    these settings (each replication executes the same plan under its own
    derived seed); ``None`` — and a no-op plan — keeps the runs faultless.
    ``workload`` optionally drives the runs with an open workload spec;
    ``None`` — and the default closed spec — keeps the paper's closed
    terminals.
    """

    warmup: float = 3000.0
    duration: float = 15000.0
    replications: int = 1
    base_seed: int = 20250705
    faults: Optional[FaultPlan] = None
    workload: Optional[WorkloadSpec] = None

    def __post_init__(self) -> None:
        if self.warmup < 0 or self.duration <= 0:
            raise ValueError("need warmup >= 0 and duration > 0")
        if self.replications < 1:
            raise ValueError("need at least one replication")
        if self.faults is not None and self.faults.is_noop:
            # Normalize: a no-op plan is the same run as no plan, and the
            # cache key must agree.
            object.__setattr__(self, "faults", None)
        # Same normalization for workloads: the default closed spec is the
        # same run as no spec, and the cache key must agree.
        object.__setattr__(self, "workload", normalize_workload(self.workload))

    def with_faults(self, faults: Optional[FaultPlan]) -> "RunSettings":
        """These settings with *faults* installed (``None`` to clear)."""
        return replace(self, faults=faults)

    def with_workload(
        self, workload: Optional[WorkloadSpec]
    ) -> "RunSettings":
        """These settings driven by *workload* (``None`` to go closed)."""
        return replace(self, workload=workload)

    def seed_for(self, replication: int) -> int:
        """Master seed of one replication (stable, well separated)."""
        return self.base_seed + 1_000_003 * replication

    def scaled(self, factor: float) -> "RunSettings":
        """Proportionally longer/shorter runs (factor > 0)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self, warmup=self.warmup * factor, duration=self.duration * factor
        )


#: Scale presets, by name.
QUICK = RunSettings(warmup=1500.0, duration=6000.0, replications=1)
STANDARD = RunSettings(warmup=3000.0, duration=15000.0, replications=1)
PAPER = RunSettings(warmup=5000.0, duration=30000.0, replications=3)

SCALES = {"quick": QUICK, "standard": STANDARD, "paper": PAPER}


def settings_for(scale: str) -> RunSettings:
    """Look up a preset by name ('quick', 'standard', 'paper')."""
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None


__all__ = ["RunSettings", "QUICK", "STANDARD", "PAPER", "SCALES", "settings_for"]
