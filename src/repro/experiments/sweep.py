"""Generic parameter sweeps with CSV export.

The table modules reproduce the paper's exact sweeps; this module is the
general tool for everything else: sweep any config dimension against any
set of policies, collect :class:`~repro.experiments.common.AveragedResults`
per cell, and export a flat CSV for external analysis.

Example — how does the paper's story change with slower disks?::

    spec = SweepSpec(
        name="disk-speed",
        base=paper_defaults(),
        parameter="site.disk_time",
        values=(0.5, 1.0, 2.0),
        policies=("LOCAL", "BNQ", "LERT"),
    )
    result = run_sweep(spec, STANDARD)
    write_csv(result, "disk_speed.csv")

Parameters are addressed by dotted path into the config dataclasses
(``"site.mpl"``, ``"network.msg_length"``, ``"num_sites"``, ...); the sweep
rebuilds a frozen config per value with :func:`dataclasses.replace`.
"""

from __future__ import annotations

import csv
import dataclasses
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple, Union

from repro.experiments.common import AveragedResults
from repro.experiments.context import StudyContext
from repro.experiments.parallel import simulate_many
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.model.config import SystemConfig


def set_config_parameter(
    config: SystemConfig, dotted_path: str, value: Any
) -> SystemConfig:
    """Return a copy of *config* with the dotted-path field replaced.

    Supports one level of nesting (``section.field``) over the frozen
    dataclass structure; top-level fields use the bare name.
    """
    parts = dotted_path.split(".")
    if len(parts) == 1:
        field = parts[0]
        if field not in {f.name for f in dataclasses.fields(config)}:
            raise KeyError(f"SystemConfig has no field {field!r}")
        return dataclasses.replace(config, **{field: value})
    if len(parts) == 2:
        section_name, field = parts
        if section_name not in {f.name for f in dataclasses.fields(config)}:
            raise KeyError(f"SystemConfig has no section {section_name!r}")
        section = getattr(config, section_name)
        if not dataclasses.is_dataclass(section):
            raise KeyError(f"{section_name!r} is not a nested config section")
        if field not in {f.name for f in dataclasses.fields(section)}:
            raise KeyError(f"{section_name} has no field {field!r}")
        return dataclasses.replace(
            config, **{section_name: dataclasses.replace(section, **{field: value})}
        )
    raise KeyError(f"unsupported parameter path {dotted_path!r}")


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a one-dimensional sweep."""

    name: str
    base: SystemConfig
    parameter: str
    values: Tuple[Any, ...]
    policies: Tuple[str, ...] = ("LOCAL", "BNQ", "LERT")

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a sweep needs at least one value")
        if not self.policies:
            raise ValueError("a sweep needs at least one policy")
        # Fail fast on typos before burning simulation time.
        set_config_parameter(self.base, self.parameter, self.values[0])


@dataclass(frozen=True)
class SweepResult:
    """All cells of one sweep."""

    spec: SweepSpec
    settings: RunSettings
    cells: Dict[Tuple[Any, str], AveragedResults]

    def result(self, value: Any, policy: str) -> AveragedResults:
        return self.cells[(value, policy)]

    def series(self, policy: str, metric: str = "mean_waiting_time") -> List[float]:
        """One policy's metric across the swept values, in order."""
        return [
            getattr(self.cells[(value, policy)], metric)
            for value in self.spec.values
        ]


def run_sweep(
    spec: SweepSpec,
    settings: RunSettings = STANDARD,
    *,
    context: StudyContext = StudyContext(),
) -> SweepResult:
    """Execute the sweep (common random numbers across policies per cell).

    *context* carries the execution options: ``context.jobs`` fans the
    cells (and their replications) over a process pool and
    ``context.cache`` reuses previously simulated cells.  Results are
    identical to a serial, uncached run in all cases.
    """
    keys: List[Tuple[Any, str]] = []
    pairs: List[Tuple[SystemConfig, str]] = []
    for value in spec.values:
        config = set_config_parameter(spec.base, spec.parameter, value)
        for policy in spec.policies:
            keys.append((value, policy))
            pairs.append((config, policy))
    averaged = simulate_many(
        pairs,
        settings,
        jobs=context.jobs,
        cache=context.cache,
        progress=context.progress,
    )
    cells: Dict[Tuple[Any, str], AveragedResults] = dict(zip(keys, averaged))
    return SweepResult(spec=spec, settings=settings, cells=cells)


#: Columns exported per cell, in order.
CSV_COLUMNS = (
    "sweep",
    "parameter",
    "value",
    "policy",
    "mean_waiting_time",
    "mean_response_time",
    "fairness",
    "subnet_utilization",
    "cpu_utilization",
    "disk_utilization",
    "remote_fraction",
    "completions",
)


def write_csv(result: SweepResult, path: Union[str, pathlib.Path]) -> None:
    """Export every cell as one CSV row (columns: :data:`CSV_COLUMNS`)."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for value in result.spec.values:
            for policy in result.spec.policies:
                cell = result.cells[(value, policy)]
                writer.writerow(
                    [
                        result.spec.name,
                        result.spec.parameter,
                        value,
                        policy,
                        f"{cell.mean_waiting_time:.6g}",
                        f"{cell.mean_response_time:.6g}",
                        "" if cell.fairness is None else f"{cell.fairness:.6g}",
                        f"{cell.subnet_utilization:.6g}",
                        f"{cell.cpu_utilization:.6g}",
                        f"{cell.disk_utilization:.6g}",
                        f"{cell.remote_fraction:.6g}",
                        cell.completions,
                    ]
                )


__all__ = [
    "SweepSpec",
    "SweepResult",
    "set_config_parameter",
    "run_sweep",
    "write_csv",
    "CSV_COLUMNS",
]
