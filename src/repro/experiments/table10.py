"""Experiment E5 — Table 10: system capacity (max mpl per response bound).

"The multiprogramming level of each of the DB sites can be increased without
decreasing the mean query response time" — Table 10 quantifies that by
reporting, for each expected-response-time bound, the largest mpl the system
sustains under LOCAL versus LERT.

Implementation: measure mean response time over a grid of mpl values for
each policy (response time is monotone in mpl in a closed system), then for
each bound report the largest mpl whose measured response stays at or below
the bound.  Simulation noise is handled by isotonic smoothing of the
response curve (running maximum), which preserves monotonicity.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import TextTable
from repro.experiments.parallel import simulate_many
from repro.experiments.paper_data import TABLE10_CAPACITY
from repro.experiments.context import StudyContext
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.model.config import paper_defaults

BOUNDS: Tuple[float, ...] = (40.0, 50.0, 60.0, 70.0, 80.0)
POLICIES: Tuple[str, ...] = ("LOCAL", "LERT")
DEFAULT_MPL_GRID: Tuple[int, ...] = tuple(range(6, 41, 2))


@dataclass(frozen=True)
class Table10Result:
    """Response-time curves and the derived capacity table."""

    mpl_grid: Tuple[int, ...]
    response_curves: Dict[str, Tuple[float, ...]]
    settings: RunSettings

    def smoothed_curve(self, policy: str) -> List[float]:
        """Monotone (running-max) response-time curve over the mpl grid."""
        smoothed: List[float] = []
        best = float("-inf")
        for value in self.response_curves[policy]:
            best = max(best, value)
            smoothed.append(best)
        return smoothed

    def max_mpl(self, policy: str, bound: float) -> int:
        """Largest grid mpl whose smoothed response is within *bound*."""
        curve = self.smoothed_curve(policy)
        feasible = [
            mpl for mpl, rt in zip(self.mpl_grid, curve) if rt <= bound
        ]
        return max(feasible) if feasible else 0


def run_experiment(
    settings: RunSettings = STANDARD,
    mpl_grid: Tuple[int, ...] = DEFAULT_MPL_GRID,
    *,
    context: StudyContext = StudyContext(),
) -> Table10Result:
    pairs = [
        (paper_defaults(mpl=mpl), name) for mpl in mpl_grid for name in POLICIES
    ]
    averaged = iter(simulate_many(
        pairs,
        settings,
        jobs=context.jobs,
        cache=context.cache,
        progress=context.progress,
    ))
    curves: Dict[str, List[float]] = {name: [] for name in POLICIES}
    for _mpl in mpl_grid:
        for name in POLICIES:
            curves[name].append(next(averaged).mean_response_time)
    return Table10Result(
        mpl_grid=tuple(mpl_grid),
        response_curves={k: tuple(v) for k, v in curves.items()},
        settings=settings,
    )


def format_table(result: Table10Result) -> str:
    table = TextTable(
        ["RT bound", "LOCAL", "LERT", "paper LOCAL", "paper LERT"],
        title="Table 10: maximum mpl versus response time",
    )
    for bound in BOUNDS:
        paper = TABLE10_CAPACITY.get(bound, ("", ""))
        table.add_row(
            f"<= {bound:.0f}",
            str(result.max_mpl("LOCAL", bound)),
            str(result.max_mpl("LERT", bound)),
            str(paper[0]),
            str(paper[1]),
        )
    return table.render()


def main(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead::

        get_experiment("table10").run(settings, context)

    Kept for callers of the pre-registry per-table spelling; the AST pin
    in tests/experiments/test_registry.py keeps src/repro itself clean.
    """
    warnings.warn(
        "table10.main() is deprecated; use "
        "repro.experiments.registry.get_experiment('table10')"
        ".run(settings, context) (see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    context = StudyContext(jobs=jobs, cache=cache)
    output = format_table(run_experiment(settings, context=context))
    print(output)
    return output


if __name__ == "__main__":
    print(format_table(run_experiment()))
