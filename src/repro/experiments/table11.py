"""Experiment E6 — Table 11: waiting time and subnet utilization vs sites.

Sweeps the number of DB sites from 2 to 10 for LOCAL, BNQ and LERT.  The
paper's observation to reproduce: improvement over LOCAL peaks at an
intermediate number of sites (6–8 for these parameters) because more sites
improve placement options but also congest the shared token ring.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    AveragedResults,
    TextTable,
    improvement_pct,
)
from repro.experiments.parallel import simulate_many
from repro.experiments.paper_data import TABLE11_SITES
from repro.experiments.context import StudyContext
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.model.config import paper_defaults

SITE_COUNTS: Tuple[int, ...] = (2, 4, 6, 8, 10)
POLICIES: Tuple[str, ...] = ("LOCAL", "BNQ", "LERT")


@dataclass(frozen=True)
class Table11Row:
    num_sites: int
    results: Dict[str, AveragedResults]

    @property
    def w_local(self) -> float:
        return self.results["LOCAL"].mean_waiting_time

    def vs_local(self, policy: str) -> float:
        return improvement_pct(self.results[policy].mean_waiting_time, self.w_local)

    def subnet_utilization(self, policy: str) -> float:
        return 100.0 * self.results[policy].subnet_utilization


@dataclass(frozen=True)
class Table11Result:
    rows: Tuple[Table11Row, ...]
    settings: RunSettings

    def peak_improvement_sites(self, policy: str = "LERT") -> int:
        """Number of sites where the improvement over LOCAL peaks."""
        best = max(self.rows, key=lambda row: row.vs_local(policy))
        return best.num_sites


def run_experiment(
    settings: RunSettings = STANDARD,
    site_counts: Tuple[int, ...] = SITE_COUNTS,
    *,
    context: StudyContext = StudyContext(),
) -> Table11Result:
    pairs = [
        (paper_defaults(num_sites=num_sites), name)
        for num_sites in site_counts
        for name in POLICIES
    ]
    averaged = iter(simulate_many(
        pairs,
        settings,
        jobs=context.jobs,
        cache=context.cache,
        progress=context.progress,
    ))
    rows: List[Table11Row] = []
    for num_sites in site_counts:
        results = {name: next(averaged) for name in POLICIES}
        rows.append(Table11Row(num_sites=num_sites, results=results))
    return Table11Result(rows=tuple(rows), settings=settings)


def format_table(result: Table11Result) -> str:
    table = TextTable(
        [
            "sites",
            "who",
            "W_LOCAL",
            "dBNQ%",
            "dLERT%",
            "subnet BNQ%",
            "subnet LERT%",
        ],
        title="Table 11: waiting time and subnet utilization versus number of sites",
    )
    for row in result.rows:
        table.add_row(
            str(row.num_sites),
            "repro",
            f"{row.w_local:.2f}",
            f"{row.vs_local('BNQ'):.2f}",
            f"{row.vs_local('LERT'):.2f}",
            f"{row.subnet_utilization('BNQ'):.2f}",
            f"{row.subnet_utilization('LERT'):.2f}",
        )
        paper = TABLE11_SITES.get(row.num_sites)
        if paper is not None:
            table.add_row("", "paper", "21.53", *[f"{v:.2f}" for v in paper])
    return table.render()


def main(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead::

        get_experiment("table11").run(settings, context)

    Kept for callers of the pre-registry per-table spelling; the AST pin
    in tests/experiments/test_registry.py keeps src/repro itself clean.
    """
    warnings.warn(
        "table11.main() is deprecated; use "
        "repro.experiments.registry.get_experiment('table11')"
        ".run(settings, context) (see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    context = StudyContext(jobs=jobs, cache=cache)
    output = format_table(run_experiment(settings, context=context))
    print(output)
    return output


if __name__ == "__main__":
    print(format_table(run_experiment()))
