"""Experiment E7 — Table 12: W̄ and fairness F versus class_io_prob.

Varies the I/O-bound class probability from 0.3 to 0.8, which skews the
system toward favoring one class under LOCAL.  Reproduction targets:

* F_LOCAL moves from negative (I/O class favored) through ~0 to positive
  (CPU class favored) as class_io_prob rises;
* dynamic allocation improves W̄ at every mix;
* dynamic allocation shrinks |F| whenever |F_LOCAL| is appreciable
  (the paper's ΔF entries are negative only around the F≈0 crossover,
  where the baseline is already fair and relative changes are unstable).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    AveragedResults,
    TextTable,
    improvement_pct,
)
from repro.experiments.parallel import simulate_many
from repro.experiments.paper_data import TABLE12_FAIRNESS
from repro.experiments.context import StudyContext
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.model.config import paper_defaults

IO_PROBS: Tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
POLICIES: Tuple[str, ...] = ("LOCAL", "BNQ", "LERT")


@dataclass(frozen=True)
class Table12Row:
    class_io_prob: float
    results: Dict[str, AveragedResults]

    @property
    def w_local(self) -> float:
        return self.results["LOCAL"].mean_waiting_time

    @property
    def f_local(self) -> float:
        return self.results["LOCAL"].fairness or 0.0

    @property
    def rho_ratio(self) -> float:
        return self.results["LOCAL"].rho_ratio

    def vs_local(self, policy: str) -> float:
        return improvement_pct(self.results[policy].mean_waiting_time, self.w_local)

    def fairness_improvement(self, policy: str) -> float:
        """ΔF_X,LOCAL / F_LOCAL in percent, on |F| (shrinking is positive)."""
        f_local = abs(self.f_local)
        f_policy = abs(self.results[policy].fairness or 0.0)
        if f_local == 0:
            return 0.0
        return 100.0 * (f_local - f_policy) / f_local


@dataclass(frozen=True)
class Table12Result:
    rows: Tuple[Table12Row, ...]
    settings: RunSettings

    def f_local_crosses_zero(self) -> bool:
        """Whether F_LOCAL changes sign across the sweep (paper: yes)."""
        values = [row.f_local for row in self.rows]
        return min(values) < 0 < max(values)


def run_experiment(
    settings: RunSettings = STANDARD,
    io_probs: Tuple[float, ...] = IO_PROBS,
    *,
    context: StudyContext = StudyContext(),
) -> Table12Result:
    pairs = [
        (paper_defaults(class_io_prob=prob), name)
        for prob in io_probs
        for name in POLICIES
    ]
    averaged = iter(simulate_many(
        pairs,
        settings,
        jobs=context.jobs,
        cache=context.cache,
        progress=context.progress,
    ))
    rows: List[Table12Row] = []
    for prob in io_probs:
        results = {name: next(averaged) for name in POLICIES}
        rows.append(Table12Row(class_io_prob=prob, results=results))
    return Table12Result(rows=tuple(rows), settings=settings)


def format_table(result: Table12Result) -> str:
    table = TextTable(
        [
            "io_prob",
            "who",
            "rho_d/rho_c",
            "W_LOCAL",
            "dBNQ%",
            "dLERT%",
            "F_LOCAL",
            "dF BNQ%",
            "dF LERT%",
        ],
        title="Table 12: W and F versus class_io_prob",
    )
    for row in result.rows:
        table.add_row(
            f"{row.class_io_prob:.1f}",
            "repro",
            f"{row.rho_ratio:.2f}",
            f"{row.w_local:.2f}",
            f"{row.vs_local('BNQ'):.2f}",
            f"{row.vs_local('LERT'):.2f}",
            f"{row.f_local:+.3f}",
            f"{row.fairness_improvement('BNQ'):.2f}",
            f"{row.fairness_improvement('LERT'):.2f}",
        )
        paper = TABLE12_FAIRNESS.get(round(row.class_io_prob, 1))
        if paper is not None:
            table.add_row(
                "",
                "paper",
                f"{paper[0]:.2f}",
                f"{paper[1]:.2f}",
                f"{paper[2]:.2f}",
                f"{paper[3]:.2f}",
                f"{paper[4]:+.3f}",
                f"{paper[5]:.2f}",
                f"{paper[6]:.2f}",
            )
    return table.render()


def main(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead::

        get_experiment("table12").run(settings, context)

    Kept for callers of the pre-registry per-table spelling; the AST pin
    in tests/experiments/test_registry.py keeps src/repro itself clean.
    """
    warnings.warn(
        "table12.main() is deprecated; use "
        "repro.experiments.registry.get_experiment('table12')"
        ".run(settings, context) (see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    context = StudyContext(jobs=jobs, cache=cache)
    output = format_table(run_experiment(settings, context=context))
    print(output)
    return output


if __name__ == "__main__":
    print(format_table(run_experiment()))
