"""Experiment E1 — Table 5: Waiting Improvement Factor WIF(L, i).

Analytic (exact MVA); no simulation involved.  For each of the paper's six
CPU-demand pairs and six arrival conditions, computes how much the optimal
allocation improves the arriving query's expected waiting time per cycle
over the minimal-QD ("balance the number of queries") allocation.
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.improvement import (
    PAPER_CPU_PAIRS,
    PAPER_LOADS,
    ImprovementCell,
    improvement_grid,
)
from repro.experiments.common import TextTable
from repro.experiments.paper_data import TABLE5_WIF


@dataclass(frozen=True)
class Table5Result:
    """The full WIF grid plus the paper's values for comparison."""

    grid: Tuple[Tuple[ImprovementCell, ...], ...]

    def measured_row(self, cpu_pair: Tuple[float, float]) -> List[float]:
        index = PAPER_CPU_PAIRS.index(cpu_pair)
        return [cell.wif for cell in self.grid[index]]

    def paper_row(self, cpu_pair: Tuple[float, float]) -> List[float]:
        return list(TABLE5_WIF[cpu_pair])


def run_experiment() -> Table5Result:
    """Compute the Table 5 grid."""
    grid = improvement_grid()
    return Table5Result(grid=tuple(tuple(row) for row in grid))


def format_table(result: Table5Result) -> str:
    headers = ["cpu1/cpu2", "who"] + [
        f"L{c + 1}.i{i + 1}" for c in range(len(PAPER_LOADS)) for i in range(2)
    ]
    table = TextTable(headers, title="Table 5: Waiting Improvement Factor WIF(L,i)")
    for pair in PAPER_CPU_PAIRS:
        label = f"{pair[0]:.2f}/{pair[1]:.2f}"
        table.add_row(label, "repro", *[f"{v:.2f}" for v in result.measured_row(pair)])
        table.add_row("", "paper", *[f"{v:.2f}" for v in result.paper_row(pair)])
    return table.render()


def main() -> str:
    """Deprecated shim — go through the experiment registry instead::

        get_experiment("table5").run(settings, context)
    """
    warnings.warn(
        "table5.main() is deprecated; use repro.experiments.registry."
        "get_experiment('table5').run(settings, context) "
        "(see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    output = format_table(run_experiment())
    print(output)
    return output


if __name__ == "__main__":
    print(format_table(run_experiment()))
