"""Experiment E2 — Table 6: Fairness Improvement Factor FIF(L, i).

Analytic (exact MVA).  Same grid as Table 5, but measuring how much the
fairest allocation improves the system fairness measure (the absolute
difference of the classes' normalized waiting times) over the minimal-QD
allocation.
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.improvement import (
    PAPER_CPU_PAIRS,
    PAPER_LOADS,
    ImprovementCell,
    improvement_grid,
)
from repro.experiments.common import TextTable
from repro.experiments.paper_data import TABLE6_FIF


@dataclass(frozen=True)
class Table6Result:
    """The full FIF grid plus the paper's values for comparison."""

    grid: Tuple[Tuple[ImprovementCell, ...], ...]

    def measured_row(self, cpu_pair: Tuple[float, float]) -> List[float]:
        index = PAPER_CPU_PAIRS.index(cpu_pair)
        return [cell.fif for cell in self.grid[index]]

    def paper_row(self, cpu_pair: Tuple[float, float]) -> List[float]:
        return list(TABLE6_FIF[cpu_pair])

    def mean_absolute_deviation(self, cpu_pair: Tuple[float, float]) -> float:
        measured = self.measured_row(cpu_pair)
        paper = self.paper_row(cpu_pair)
        return sum(abs(a - b) for a, b in zip(measured, paper)) / len(paper)


def run_experiment() -> Table6Result:
    """Compute the Table 6 grid (shares the MVA cache with Table 5)."""
    grid = improvement_grid()
    return Table6Result(grid=tuple(tuple(row) for row in grid))


def format_table(result: Table6Result) -> str:
    headers = ["cpu1/cpu2", "who"] + [
        f"L{c + 1}.i{i + 1}" for c in range(len(PAPER_LOADS)) for i in range(2)
    ] + ["MAD"]
    table = TextTable(headers, title="Table 6: Fairness Improvement Factor FIF(L,i)")
    for pair in PAPER_CPU_PAIRS:
        mad = result.mean_absolute_deviation(pair)
        table.add_row(
            f"{pair[0]:.2f}/{pair[1]:.2f}",
            "repro",
            *[f"{v:.2f}" for v in result.measured_row(pair)],
            f"{mad:.3f}",
        )
        table.add_row("", "paper", *[f"{v:.2f}" for v in result.paper_row(pair)], "")
    return table.render()


def main() -> str:
    """Deprecated shim — go through the experiment registry instead::

        get_experiment("table6").run(settings, context)
    """
    warnings.warn(
        "table6.main() is deprecated; use repro.experiments.registry."
        "get_experiment('table6').run(settings, context) "
        "(see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    output = format_table(run_experiment())
    print(output)
    return output


if __name__ == "__main__":
    print(format_table(run_experiment()))
