"""Experiment E3 — Table 8: waiting time versus think time.

Simulates the four policies (LOCAL, BNQ, BNQRD, LERT) across the paper's
think-time range 150–450 and reports, per think time:

* the CPU utilization ρ_c under LOCAL,
* W̄_LOCAL,
* the percentage improvements of each dynamic policy over LOCAL, and
* the improvements of the information-based policies over BNQ.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    AveragedResults,
    TextTable,
    improvement_pct,
)
from repro.experiments.parallel import simulate_many
from repro.experiments.paper_data import TABLE8_THINK
from repro.experiments.context import StudyContext
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.model.config import paper_defaults

THINK_TIMES: Tuple[float, ...] = (150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0)
POLICIES: Tuple[str, ...] = ("LOCAL", "BNQ", "BNQRD", "LERT")


@dataclass(frozen=True)
class Table8Row:
    """One think-time row: results per policy plus derived improvements."""

    think_time: float
    results: Dict[str, AveragedResults]

    @property
    def rho_c(self) -> float:
        return self.results["LOCAL"].cpu_utilization

    @property
    def w_local(self) -> float:
        return self.results["LOCAL"].mean_waiting_time

    def vs_local(self, policy: str) -> float:
        return improvement_pct(
            self.results[policy].mean_waiting_time, self.w_local
        )

    def vs_bnq(self, policy: str) -> float:
        return improvement_pct(
            self.results[policy].mean_waiting_time,
            self.results["BNQ"].mean_waiting_time,
        )


@dataclass(frozen=True)
class Table8Result:
    rows: Tuple[Table8Row, ...]
    settings: RunSettings


def run_experiment(
    settings: RunSettings = STANDARD,
    think_times: Tuple[float, ...] = THINK_TIMES,
    *,
    context: StudyContext = StudyContext(),
) -> Table8Result:
    """Sweep think_time × policy with common random numbers.

    All cells fan out together when ``jobs > 1``; reassembly is
    deterministic, so the result is identical to a serial run.
    """
    pairs = [
        (paper_defaults(think_time=think_time), name)
        for think_time in think_times
        for name in POLICIES
    ]
    averaged = iter(simulate_many(
        pairs,
        settings,
        jobs=context.jobs,
        cache=context.cache,
        progress=context.progress,
    ))
    rows: List[Table8Row] = []
    for think_time in think_times:
        results = {name: next(averaged) for name in POLICIES}
        rows.append(Table8Row(think_time=think_time, results=results))
    return Table8Result(rows=tuple(rows), settings=settings)


def format_table(result: Table8Result) -> str:
    table = TextTable(
        [
            "think",
            "who",
            "rho_c",
            "W_LOCAL",
            "dBNQ%",
            "dBNQRD%",
            "dLERT%",
            "dBNQRD/BNQ%",
            "dLERT/BNQ%",
        ],
        title="Table 8: waiting time versus think time",
    )
    for row in result.rows:
        table.add_row(
            f"{row.think_time:.0f}",
            "repro",
            f"{row.rho_c:.2f}",
            f"{row.w_local:.2f}",
            f"{row.vs_local('BNQ'):.2f}",
            f"{row.vs_local('BNQRD'):.2f}",
            f"{row.vs_local('LERT'):.2f}",
            f"{row.vs_bnq('BNQRD'):.2f}",
            f"{row.vs_bnq('LERT'):.2f}",
        )
        paper = TABLE8_THINK.get(row.think_time)
        if paper is not None:
            table.add_row(
                "", "paper", *[f"{v:.2f}" for v in paper]
            )
    return table.render()


def main(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead::

        get_experiment("table8").run(settings, context)

    Kept for callers of the pre-registry per-table spelling; the AST pin
    in tests/experiments/test_registry.py keeps src/repro itself clean.
    """
    warnings.warn(
        "table8.main() is deprecated; use "
        "repro.experiments.registry.get_experiment('table8')"
        ".run(settings, context) (see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    context = StudyContext(jobs=jobs, cache=cache)
    output = format_table(run_experiment(settings, context=context))
    print(output)
    return output


if __name__ == "__main__":
    print(format_table(run_experiment()))
