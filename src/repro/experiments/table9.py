"""Experiment E4 — Table 9: waiting time versus multiprogramming level.

Same comparison structure as Table 8, but system load is varied by the
number of terminals per site (mpl 15–35) at the default think time 350.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    AveragedResults,
    TextTable,
    improvement_pct,
)
from repro.experiments.parallel import simulate_many
from repro.experiments.paper_data import TABLE9_MPL
from repro.experiments.context import StudyContext
from repro.experiments.runconfig import STANDARD, RunSettings
from repro.model.config import paper_defaults

MPL_VALUES: Tuple[int, ...] = (15, 20, 25, 30, 35)
POLICIES: Tuple[str, ...] = ("LOCAL", "BNQ", "BNQRD", "LERT")


@dataclass(frozen=True)
class Table9Row:
    mpl: int
    results: Dict[str, AveragedResults]

    @property
    def rho_c(self) -> float:
        return self.results["LOCAL"].cpu_utilization

    @property
    def w_local(self) -> float:
        return self.results["LOCAL"].mean_waiting_time

    def vs_local(self, policy: str) -> float:
        return improvement_pct(self.results[policy].mean_waiting_time, self.w_local)

    def vs_bnq(self, policy: str) -> float:
        return improvement_pct(
            self.results[policy].mean_waiting_time,
            self.results["BNQ"].mean_waiting_time,
        )


@dataclass(frozen=True)
class Table9Result:
    rows: Tuple[Table9Row, ...]
    settings: RunSettings


def run_experiment(
    settings: RunSettings = STANDARD,
    mpl_values: Tuple[int, ...] = MPL_VALUES,
    *,
    context: StudyContext = StudyContext(),
) -> Table9Result:
    pairs = [
        (paper_defaults(mpl=mpl), name) for mpl in mpl_values for name in POLICIES
    ]
    averaged = iter(simulate_many(
        pairs,
        settings,
        jobs=context.jobs,
        cache=context.cache,
        progress=context.progress,
    ))
    rows: List[Table9Row] = []
    for mpl in mpl_values:
        results = {name: next(averaged) for name in POLICIES}
        rows.append(Table9Row(mpl=mpl, results=results))
    return Table9Result(rows=tuple(rows), settings=settings)


def format_table(result: Table9Result) -> str:
    table = TextTable(
        [
            "mpl",
            "who",
            "rho_c",
            "W_LOCAL",
            "dBNQ%",
            "dBNQRD%",
            "dLERT%",
            "dBNQRD/BNQ%",
            "dLERT/BNQ%",
        ],
        title="Table 9: waiting time versus mpl",
    )
    for row in result.rows:
        table.add_row(
            str(row.mpl),
            "repro",
            f"{row.rho_c:.2f}",
            f"{row.w_local:.2f}",
            f"{row.vs_local('BNQ'):.2f}",
            f"{row.vs_local('BNQRD'):.2f}",
            f"{row.vs_local('LERT'):.2f}",
            f"{row.vs_bnq('BNQRD'):.2f}",
            f"{row.vs_bnq('LERT'):.2f}",
        )
        paper = TABLE9_MPL.get(row.mpl)
        if paper is not None:
            table.add_row("", "paper", *[f"{v:.2f}" for v in paper])
    return table.render()


def main(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead::

        get_experiment("table9").run(settings, context)

    Kept for callers of the pre-registry per-table spelling; the AST pin
    in tests/experiments/test_registry.py keeps src/repro itself clean.
    """
    warnings.warn(
        "table9.main() is deprecated; use "
        "repro.experiments.registry.get_experiment('table9')"
        ".run(settings, context) (see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    context = StudyContext(jobs=jobs, cache=cache)
    output = format_table(run_experiment(settings, context=context))
    print(output)
    return output


if __name__ == "__main__":
    print(format_table(run_experiment()))
