"""Substrate validation experiment: simulator vs exact MVA vs bounds.

Ties the three substrates together in one runnable check: for a set of
closed networks spanning the model's station types, solve exactly, solve
approximately, simulate on the DES kernel, and bound analytically — then
report everything side by side.  Any systematic disagreement would
invalidate the reproduction, so this is both a demo and a health check
(`repro-experiments validation`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.common import TextTable
from repro.experiments.runconfig import RunSettings, STANDARD
from repro.queueing.amva import solve_amva
from repro.queueing.bounds import asymptotic_bounds
from repro.queueing.mva import solve_mva
from repro.queueing.network import ClosedNetwork, closed_network
from repro.queueing.simulate import simulate_network
from repro.queueing.stations import fcfs, multiserver, ps


@dataclass(frozen=True)
class ValidationCase:
    """One network/population pair to cross-validate."""

    name: str
    network: ClosedNetwork
    population: Tuple[int, ...]


def standard_cases() -> Tuple[ValidationCase, ...]:
    """Networks spanning every station type the model uses."""
    return (
        ValidationCase(
            "machine-repairman",
            closed_network([fcfs("server", [1.0])], ["jobs"], [10.0]),
            (8,),
        ),
        ValidationCase(
            "db-site (per-disk)",
            closed_network(
                [
                    fcfs("disk0", [0.5, 0.5]),
                    fcfs("disk1", [0.5, 0.5]),
                    ps("cpu", [0.05, 1.0]),
                ],
                ["io", "cpu"],
            ),
            (2, 2),
        ),
        ValidationCase(
            "db-site (pooled)",
            closed_network(
                [multiserver("disks", [1.0, 1.0], 2), ps("cpu", [0.05, 1.0])],
                ["io", "cpu"],
            ),
            (3, 2),
        ),
        ValidationCase(
            "terminal-driven",
            closed_network(
                [fcfs("disk", [1.0]), ps("cpu", [0.5])], ["jobs"], [8.0]
            ),
            (12,),
        ),
    )


@dataclass(frozen=True)
class ValidationRow:
    """Cross-validated throughput of one class in one case."""

    case: str
    class_name: str
    exact: float
    approximate: float
    simulated: float
    bound_low: float
    bound_high: float

    @property
    def sim_vs_exact_pct(self) -> float:
        if self.exact == 0:
            return 0.0
        return 100.0 * (self.simulated - self.exact) / self.exact

    @property
    def exact_within_bounds(self) -> bool:
        # Bounds are single-class constructs; multiclass rows carry NaN-ish
        # sentinels (negative) and skip the check.
        if self.bound_low < 0:
            return True
        return self.bound_low - 1e-9 <= self.exact <= self.bound_high + 1e-9


@dataclass(frozen=True)
class ValidationResult:
    rows: Tuple[ValidationRow, ...]

    def worst_sim_error_pct(self) -> float:
        return max(abs(row.sim_vs_exact_pct) for row in self.rows)

    def all_within_bounds(self) -> bool:
        return all(row.exact_within_bounds for row in self.rows)


def run_experiment(settings: RunSettings = STANDARD) -> ValidationResult:
    """Cross-validate all standard cases.

    The simulation horizon scales with the settings' duration so `quick`
    runs stay quick.
    """
    horizon = max(10000.0, settings.duration * 2)
    rows: List[ValidationRow] = []
    for index, case in enumerate(standard_cases()):
        exact = solve_mva(case.network, case.population)
        approx = solve_amva(case.network, case.population)
        simulated = simulate_network(
            case.network, case.population, horizon=horizon, seed=settings.base_seed + index
        )
        single_class = case.network.class_count == 1
        if single_class:
            bounds = asymptotic_bounds(case.network, sum(case.population))
            low, high = bounds.lower, bounds.upper
        else:
            low, high = -1.0, -1.0
        for k, class_name in enumerate(case.network.class_names):
            if case.population[k] == 0:
                continue
            rows.append(
                ValidationRow(
                    case=case.name,
                    class_name=class_name,
                    exact=exact.throughputs[k],
                    approximate=approx.throughputs[k],
                    simulated=simulated.throughputs[k],
                    bound_low=low if single_class else -1.0,
                    bound_high=high if single_class else -1.0,
                )
            )
    return ValidationResult(rows=tuple(rows))


def format_table(result: ValidationResult) -> str:
    table = TextTable(
        ["case", "class", "exact X", "AMVA X", "sim X", "sim err %", "in bounds"],
        title="Substrate cross-validation (throughputs)",
    )
    for row in result.rows:
        table.add_row(
            row.case,
            row.class_name,
            f"{row.exact:.4f}",
            f"{row.approximate:.4f}",
            f"{row.simulated:.4f}",
            f"{row.sim_vs_exact_pct:+.2f}",
            "yes" if row.exact_within_bounds else "NO",
        )
    return table.render()


def main(settings: RunSettings = STANDARD, *, jobs: int = 1, cache=None) -> str:
    """Deprecated shim — go through the experiment registry instead::

        get_experiment("validation").run(settings, context)
    """
    # jobs/cache were always accepted for CLI uniformity but unused: this
    # experiment cross-validates the queueing substrates (network-level
    # simulation and MVA solvers), which are cheap and not keyed like
    # DB-system runs.
    del jobs, cache
    warnings.warn(
        "validation.main() is deprecated; use repro.experiments.registry."
        "get_experiment('validation').run(settings, context) "
        "(see docs/ablation.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    output = format_table(run_experiment(settings))
    print(output)
    return output


__all__ = [
    "ValidationCase",
    "ValidationRow",
    "ValidationResult",
    "standard_cases",
    "run_experiment",
    "format_table",
    "main",
]
