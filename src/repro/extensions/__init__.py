"""Extensions: the paper's §6.2 future work plus deferred design questions.

* :class:`StaleInfoDatabase` — periodic load-information broadcast instead
  of the paper's free always-current oracle.
* :class:`MigratingDatabase` — query migration between read cycles.
* :class:`PartialReplicationDatabase` / :class:`ReplicationMap` —
  allocation restricted to sites holding a copy of the query's data.
* :class:`UpdateWorkloadDatabase` — update transactions with replica
  propagation (the paper's read-only footnote, made concrete).
* :class:`HeterogeneousDatabase` / :class:`HeterogeneousLERTPolicy` —
  unequal CPU speeds across sites and a speed-aware LERT.
* :class:`SubqueryDatabase` — distributed queries as dynamically
  allocated subquery pipelines with data moves (the paper's §6.2 goal).
"""

from repro.extensions.heterogeneous import (
    HeterogeneousDatabase,
    HeterogeneousLERTPolicy,
)
from repro.extensions.migration import MigratingDatabase
from repro.extensions.partial_replication import (
    PartialReplicationDatabase,
    ReplicationMap,
)
from repro.extensions.stale_info import StaleInfoDatabase
from repro.extensions.subqueries import SubqueryDatabase
from repro.extensions.updates import UpdateWorkloadDatabase

__all__ = [
    "StaleInfoDatabase",
    "MigratingDatabase",
    "PartialReplicationDatabase",
    "ReplicationMap",
    "SubqueryDatabase",
    "UpdateWorkloadDatabase",
    "HeterogeneousDatabase",
    "HeterogeneousLERTPolicy",
]
