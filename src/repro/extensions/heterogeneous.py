"""Heterogeneous sites: unequal CPU speeds across replicas.

The paper "assume[s] throughout ... that the system is completely
homogeneous".  Real fleets are not: replicas differ in CPU generation.
This extension gives each site a CPU *speed factor* (1.0 = baseline; 2.0
serves CPU bursts twice as fast) and adds a speed-aware LERT variant.

What to expect (and what the heterogeneity experiment shows):

* LOCAL suffers — terminals attached to slow sites are stuck with them;
* count-based balancing (BNQ) misreads slow sites as attractive whenever
  their queue is numerically short;
* speed-aware LERT (:class:`HeterogeneousLERTPolicy`) divides estimated
  CPU time by the target site's speed and recovers most of the loss,
  widening the information-based policies' edge relative to the
  homogeneous case.
"""

from __future__ import annotations

from typing import Sequence

from repro.model.config import SystemConfig
from repro.model.query import Query
from repro.model.system import DistributedDatabase
from repro.policies.base import AllocationPolicy
from repro.policies.lert import LERTPolicy


class HeterogeneousDatabase(DistributedDatabase):
    """A system whose sites have unequal CPU speeds.

    CPU bursts drawn from the workload are divided by the executing site's
    speed factor; disk hardware stays identical (mixing disk generations is
    left as data, not code: pass a slower ``disk_time`` instead).

    Args:
        config: Model parameters.
        policy: Allocation policy.  Plain paper policies work but are blind
            to speed; see :class:`HeterogeneousLERTPolicy`.
        cpu_speed_factors: One positive factor per site.
        seed: Master seed.
    """

    def __init__(
        self,
        config: SystemConfig,
        policy: AllocationPolicy,
        cpu_speed_factors: Sequence[float],
        seed: int = 0,
    ) -> None:
        factors = tuple(float(f) for f in cpu_speed_factors)
        if len(factors) != config.num_sites:
            raise ValueError(
                f"{len(factors)} speed factors for {config.num_sites} sites"
            )
        if any(f <= 0 for f in factors):
            raise ValueError("speed factors must be > 0")
        self.cpu_speed_factors = factors
        super().__init__(config, policy, seed=seed)

    def execute_query(self, query: Query, query_rng):
        # Reuse the base life cycle, but scale CPU bursts by the execution
        # site's speed.  The base implementation draws bursts inline, so we
        # interpose on the workload's cpu-burst draw for this query via a
        # scaled wrapper around the generator.  Simplest correct approach:
        # replicate the base loop with the speed factor applied.
        from repro.model.ring import Message
        from repro.sim.process import WaitFor

        sim = self.sim
        execution_site = self.policy.select(query, self.view_for(query.home_site))
        if not 0 <= execution_site < self.config.num_sites:
            raise ValueError(
                f"policy {self.policy.name} chose invalid site {execution_site}"
            )
        query.allocated_at = sim.now
        query.execution_site = execution_site
        self.load_board.register(query, execution_site)

        if execution_site != query.home_site:
            yield WaitFor(
                lambda resume: self.ring.send(
                    Message(
                        source=query.home_site,
                        destination=execution_site,
                        transfer_time=self._query_transfer_time(query),
                        deliver=resume,
                        kind="query",
                        size_bytes=query.spec.query_size,
                    )
                )
            )

        site = self.sites[execution_site]
        speed = self.cpu_speed_factors[execution_site]
        query.started_at = sim.now
        spec = query.spec
        for _ in range(query.actual_reads):
            disk_time = self.workload.disk_time(query_rng)
            yield site.disk_service(disk_time, query_rng)
            query.service_acquired += disk_time
            cpu_time = query_rng.expovariate(1.0 / spec.page_cpu_time) / speed
            yield site.cpu_service(cpu_time)
            query.service_acquired += cpu_time
        query.finished_at = sim.now

        if execution_site != query.home_site:
            result_bytes = int(
                spec.result_fraction * query.actual_reads * self.config.network.page_size
            )
            yield WaitFor(
                lambda resume: self.ring.send(
                    Message(
                        source=execution_site,
                        destination=query.home_site,
                        transfer_time=self._result_transfer_time(
                            query, query.actual_reads
                        ),
                        deliver=resume,
                        kind="result",
                        size_bytes=result_bytes,
                    )
                )
            )

        query.completed_at = sim.now
        self.load_board.deregister(query, execution_site)
        self.metrics.record(query)


class HeterogeneousLERTPolicy(LERTPolicy):
    """LERT with per-site CPU speed awareness.

    Figure 6's ``cpu_time`` and ``cpu_wait`` terms are divided by the
    candidate site's speed factor — the natural generalization when the
    optimizer's CPU estimates are expressed in baseline-CPU seconds.
    Requires binding to a :class:`HeterogeneousDatabase`.
    """

    name = "LERT-HET"

    def site_cost(self, query: Query, site: int) -> float:
        system = self.system
        if not isinstance(system, HeterogeneousDatabase):
            raise RuntimeError("LERT-HET requires a HeterogeneousDatabase")
        config = system.config
        site_spec = config.site
        speed = system.cpu_speed_factors[site]
        cpu_time = query.estimated_cpu_demand / speed
        io_time = query.estimated_io_demand(site_spec.disk_time)
        if site == self._view.arrival_site:
            net_time = 0.0
        else:
            net_time = system.estimated_transfer_time(
                query
            ) + system.estimated_return_time(query)
        cpu_wait = cpu_time * self.loads.num_cpu_queries(site)
        io_wait = io_time * (self.loads.num_io_queries(site) / site_spec.num_disks)
        return cpu_time + cpu_wait + io_time + io_wait + net_time


__all__ = ["HeterogeneousDatabase", "HeterogeneousLERTPolicy"]
