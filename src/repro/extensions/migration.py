"""Query migration at operation boundaries (the paper's first future-work item).

§6.2: "we intend to investigate the possibility of moving partially executed
queries from site to site at certain critical times, which will require
determining when a query can be economically moved (probably between its
primitive relational operations)".

This extension implements that idea conservatively:

* every ``check_interval`` completed read cycles, a running query re-costs
  its remaining work at every candidate site using the bound policy's cost
  function (only cost-based policies can migrate — LOCAL/RANDOM have no
  cost notion);
* the query moves only if the best remote cost times ``threshold`` is
  still below the local cost — hysteresis against thrashing;
* moving transfers the query descriptor *plus the partial results
  accumulated so far* over the token ring (the paper notes partially
  written temporaries make mid-operation moves unreasonable; at operation
  boundaries the state to ship is the intermediate result);
* a per-query migration budget (``max_migrations``) bounds ping-ponging.

Waiting-time accounting is unchanged: transfer time counts as waiting.
"""

from __future__ import annotations

from repro.model.config import SystemConfig
from repro.model.query import Query
from repro.model.ring import Message
from repro.model.system import DistributedDatabase
from repro.policies.base import AllocationPolicy, CostBasedPolicy
from repro.sim.process import WaitFor


class MigratingDatabase(DistributedDatabase):
    """A system whose queries may migrate between read cycles.

    Args:
        config: Model parameters.
        policy: Allocation policy; migration decisions reuse its
            ``site_cost`` when it is cost-based.
        seed: Master seed.
        check_interval: Read cycles between migration checks.
        threshold: Required cost advantage factor (>1) before moving.
        max_migrations: Per-query cap on mid-execution moves.
    """

    def __init__(
        self,
        config: SystemConfig,
        policy: AllocationPolicy,
        seed: int = 0,
        check_interval: int = 5,
        threshold: float = 1.5,
        max_migrations: int = 2,
    ) -> None:
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        if threshold < 1.0:
            raise ValueError("threshold must be >= 1 (hysteresis)")
        if max_migrations < 0:
            raise ValueError("max_migrations must be >= 0")
        self.check_interval = check_interval
        self.threshold = threshold
        self.max_migrations = max_migrations
        self.total_migrations = 0
        super().__init__(config, policy, seed=seed)

    # ------------------------------------------------------------------
    # Migration decision
    # ------------------------------------------------------------------
    def _migration_target(self, query: Query, current_site: int, reads_left: int):
        """Best site for the remaining work, or None to stay put."""
        if not isinstance(self.policy, CostBasedPolicy):
            return None
        # Re-cost the remaining work: a lightweight clone whose optimizer
        # estimate is the unfinished read count.
        remainder = Query(
            class_index=query.class_index,
            spec=query.spec,
            home_site=query.home_site,
            estimated_reads=float(reads_left),
            actual_reads=reads_left,
            io_bound=query.io_bound,
        )
        # Re-costing happens from the query's *current* site: point the
        # policy's active view there so arrival-aware cost functions (LERT,
        # LERT-MVA) zero the network term for staying put.
        self.policy._view = self.view_for(current_site)
        local_cost = self.policy.site_cost(remainder, current_site)
        best_site, best_cost = current_site, local_cost
        for site in self.candidate_sites(remainder):
            if site == current_site:
                continue
            cost = self.policy.site_cost(remainder, site)
            if cost < best_cost:
                best_site, best_cost = site, cost
        if best_site == current_site:
            return None
        if best_cost * self.threshold >= local_cost:
            return None
        return best_site

    def _partial_result_bytes(self, query: Query, reads_done: int) -> int:
        return int(
            query.spec.result_fraction * reads_done * self.config.network.page_size
        )

    def _migration_transfer_time(self, query: Query, reads_done: int) -> float:
        network = self.config.network
        if network.msg_length is not None:
            return network.msg_length
        payload = query.spec.query_size + self._partial_result_bytes(query, reads_done)
        return payload * network.msg_time

    # ------------------------------------------------------------------
    # Overridden query life cycle
    # ------------------------------------------------------------------
    def execute_query(self, query: Query, query_rng):
        sim = self.sim
        execution_site = self.policy.select(query, self.view_for(query.home_site))
        query.allocated_at = sim.now
        query.execution_site = execution_site
        self.load_board.register(query, execution_site)

        if execution_site != query.home_site:
            yield WaitFor(
                lambda resume: self.ring.send(
                    Message(
                        source=query.home_site,
                        destination=execution_site,
                        transfer_time=self._query_transfer_time(query),
                        deliver=resume,
                        kind="query",
                        size_bytes=query.spec.query_size,
                    )
                )
            )

        query.started_at = sim.now
        spec = query.spec
        reads_done = 0
        since_check = 0
        while reads_done < query.actual_reads:
            site = self.sites[execution_site]
            disk_time = self.workload.disk_time(query_rng)
            yield site.disk_service(disk_time, query_rng)
            query.service_acquired += disk_time
            cpu_time = query_rng.expovariate(1.0 / spec.page_cpu_time)
            yield site.cpu_service(cpu_time)
            query.service_acquired += cpu_time
            reads_done += 1
            since_check += 1

            if (
                reads_done < query.actual_reads
                and since_check >= self.check_interval
                and query.migrations < self.max_migrations
            ):
                since_check = 0
                target = self._migration_target(
                    query, execution_site, query.actual_reads - reads_done
                )
                if target is not None:
                    self.load_board.deregister(query, execution_site)
                    self.load_board.register(query, target)
                    transfer = self._migration_transfer_time(query, reads_done)
                    source = execution_site
                    yield WaitFor(
                        lambda resume: self.ring.send(
                            Message(
                                source=source,
                                destination=target,
                                transfer_time=transfer,
                                deliver=resume,
                                kind="migration",
                                size_bytes=self._partial_result_bytes(
                                    query, reads_done
                                ),
                            )
                        )
                    )
                    execution_site = target
                    query.execution_site = target
                    query.migrations += 1
                    self.total_migrations += 1

        query.finished_at = sim.now
        if execution_site != query.home_site:
            result_bytes = int(
                spec.result_fraction * query.actual_reads * self.config.network.page_size
            )
            source = execution_site
            yield WaitFor(
                lambda resume: self.ring.send(
                    Message(
                        source=source,
                        destination=query.home_site,
                        transfer_time=self._result_transfer_time(
                            query, query.actual_reads
                        ),
                        deliver=resume,
                        kind="result",
                        size_bytes=result_bytes,
                    )
                )
            )

        query.completed_at = sim.now
        self.load_board.deregister(query, execution_site)
        self.metrics.record(query)


__all__ = ["MigratingDatabase"]
