"""Partial replication (the paper's second future-work item).

§6.2: "we intend to address the general problem of dynamically allocating
subqueries of distributed queries to sites in an environment with only
partially replicated data".  This extension takes the first step the paper
sketches: each query references one *data item*, each item is replicated at
``k`` of the ``S`` sites, and the allocator may only choose among the
holders.  All of the paper's policies work unchanged — the candidate-site
set simply shrinks from "all sites" to "sites holding a copy".

The replication map is static for a run (data placement changes on a much
slower timescale than query allocation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.model.config import SystemConfig
from repro.model.query import Query
from repro.model.system import DistributedDatabase
from repro.policies.base import AllocationPolicy


@dataclass(frozen=True)
class ReplicationMap:
    """Static placement of data items onto sites.

    Attributes:
        num_sites: Total sites in the system.
        placement: ``placement[item]`` is the tuple of sites holding a copy
            of that item.
    """

    num_sites: int
    placement: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.placement:
            raise ValueError("need at least one data item")
        for item, holders in enumerate(self.placement):
            if not holders:
                raise ValueError(f"data item {item} has no copies")
            if len(set(holders)) != len(holders):
                raise ValueError(f"data item {item} lists duplicate holders")
            if any(not 0 <= s < self.num_sites for s in holders):
                raise ValueError(f"data item {item} placed on invalid site")

    @property
    def num_items(self) -> int:
        return len(self.placement)

    def holders(self, item: int) -> Tuple[int, ...]:
        return self.placement[item]

    @property
    def mean_copies(self) -> float:
        return sum(len(h) for h in self.placement) / self.num_items

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def full(cls, num_sites: int, num_items: int = 1) -> "ReplicationMap":
        """Every item everywhere — degenerates to the base model."""
        everywhere = tuple(range(num_sites))
        return cls(num_sites, tuple(everywhere for _ in range(num_items)))

    @classmethod
    def random_k(
        cls,
        num_sites: int,
        num_items: int,
        copies: int,
        seed: int = 0,
    ) -> "ReplicationMap":
        """Each item on ``copies`` sites chosen uniformly at random."""
        if not 1 <= copies <= num_sites:
            raise ValueError(f"copies must be in [1, {num_sites}], got {copies}")
        # Placement happens before the simulation starts and is a pure
        # function of the explicit seed argument — it never touches the
        # run's stream registry, so replay cannot be perturbed by it.
        rng = random.Random(seed)  # reprolint: disable=RL014
        placement = tuple(
            tuple(sorted(rng.sample(range(num_sites), copies)))
            for _ in range(num_items)
        )
        return cls(num_sites, placement)

    @classmethod
    def round_robin_k(
        cls, num_sites: int, num_items: int, copies: int
    ) -> "ReplicationMap":
        """Item ``i`` on sites ``i, i+1, ..., i+copies-1`` (mod S).

        A balanced deterministic placement: every site holds the same
        number of items.
        """
        if not 1 <= copies <= num_sites:
            raise ValueError(f"copies must be in [1, {num_sites}], got {copies}")
        placement = tuple(
            tuple(sorted((item + offset) % num_sites for offset in range(copies)))
            for item in range(num_items)
        )
        return cls(num_sites, placement)


class PartialReplicationDatabase(DistributedDatabase):
    """A system where queries may only run at sites holding their data.

    Each query draws its data item uniformly at random (from its private
    stream, so the item sequence is policy-independent); optionally a skew
    can be supplied as per-item weights.
    """

    def __init__(
        self,
        config: SystemConfig,
        policy: AllocationPolicy,
        replication: ReplicationMap,
        seed: int = 0,
        item_weights: Optional[Sequence[float]] = None,
    ) -> None:
        if replication.num_sites != config.num_sites:
            raise ValueError(
                f"replication map covers {replication.num_sites} sites, "
                f"config has {config.num_sites}"
            )
        if item_weights is not None:
            if len(item_weights) != replication.num_items:
                raise ValueError("item_weights must match the number of items")
            if any(w < 0 for w in item_weights) or sum(item_weights) <= 0:
                raise ValueError("item_weights must be non-negative, positive sum")
            total = float(sum(item_weights))
            cumulative = []
            acc = 0.0
            for w in item_weights:
                acc += w / total
                cumulative.append(acc)
            cumulative[-1] = 1.0
            self._item_cdf: Optional[Tuple[float, ...]] = tuple(cumulative)
        else:
            self._item_cdf = None
        self.replication = replication
        super().__init__(config, policy, seed=seed)

    def _draw_item(self, query_rng: random.Random) -> int:
        if self._item_cdf is None:
            return query_rng.randrange(self.replication.num_items)
        u = query_rng.random()
        for item, threshold in enumerate(self._item_cdf):
            if u < threshold:
                return item
        return len(self._item_cdf) - 1

    def candidate_sites(self, query: Query):
        if query.data_item is None:
            return range(self.config.num_sites)
        return self.replication.holders(query.data_item)

    def execute_query(self, query: Query, query_rng):
        query.data_item = self._draw_item(query_rng)
        yield from super().execute_query(query, query_rng)


__all__ = ["ReplicationMap", "PartialReplicationDatabase"]
