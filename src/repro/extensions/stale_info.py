"""Stale load information: relaxing the paper's free-oracle assumption.

The paper assumes every site knows the *instantaneous* loads of all other
sites and explicitly defers the design of the information-exchange policy
("a good information exchange policy will not overburden either the sites
or the communications subnetwork, and yet it will provide the sites with
information that is sufficiently current...").  This extension implements
the obvious candidate — periodic broadcast — and lets the ablation bench
measure how quickly the heuristics' advantage decays with staleness:

* every ``refresh_interval`` time units a snapshot of the true load board
  is taken; allocation decisions between refreshes use the snapshot;
* optionally, each refresh charges the token ring ``broadcast_cost`` of
  channel time per site (the status messages the paper chose to neglect).

With ``refresh_interval=0`` this degenerates to the paper's oracle.
"""

from __future__ import annotations

from typing import Optional

from repro.model.config import SystemConfig
from repro.model.loadboard import FrozenLoadView, LoadView
from repro.model.ring import Message
from repro.model.system import DistributedDatabase
from repro.policies.base import AllocationPolicy
from repro.sim.process import Hold


class StaleInfoDatabase(DistributedDatabase):
    """A system whose policies see periodically refreshed load snapshots.

    Args:
        config: Model parameters.
        policy: Allocation policy (reads the stale view transparently).
        seed: Master seed.
        refresh_interval: Time between snapshot refreshes; 0 means
            always-current (the paper's assumption).
        broadcast_cost: Channel time per site charged to the token ring at
            every refresh (0 reproduces the paper's "overhead of load
            status messages is negligible").
    """

    _stale_view: Optional[FrozenLoadView] = None

    def __init__(
        self,
        config: SystemConfig,
        policy: AllocationPolicy,
        seed: int = 0,
        refresh_interval: float = 50.0,
        broadcast_cost: float = 0.0,
    ) -> None:
        if refresh_interval < 0:
            raise ValueError("refresh_interval must be >= 0")
        if broadcast_cost < 0:
            raise ValueError("broadcast_cost must be >= 0")
        self.refresh_interval = refresh_interval
        self.broadcast_cost = broadcast_cost
        self.refreshes = 0
        self._last_refresh = 0.0
        super().__init__(config, policy, seed=seed)
        if refresh_interval > 0:
            self._stale_view = self.load_board.snapshot()
            self._last_refresh = self.sim.now
            self.sim.launch(self._refresher(), name="load-broadcaster")

    @property
    def load_view(self) -> LoadView:
        if self._stale_view is not None:
            return self._stale_view
        return self.load_board

    def load_info_age(self) -> float:
        """Time since the snapshot policies currently see was taken.

        ``0.0`` when refreshing is disabled (the paper's oracle).
        """
        if self._stale_view is None:
            return 0.0
        return self.sim.now - self._last_refresh

    def _refresher(self):
        """Periodic snapshot process (plus optional channel charges)."""
        while True:
            yield Hold(self.refresh_interval)
            self._stale_view = self.load_board.snapshot()
            self._last_refresh = self.sim.now
            self.refreshes += 1
            if self.broadcast_cost > 0 and self.config.num_sites > 1:
                for site in range(self.config.num_sites):
                    self.ring.send(
                        Message(
                            source=site,
                            destination=(site + 1) % self.config.num_sites,
                            transfer_time=self.broadcast_cost,
                            deliver=lambda: None,
                            kind="control",
                        )
                    )


__all__ = ["StaleInfoDatabase"]
