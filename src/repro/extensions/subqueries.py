"""Subquery allocation: the paper's stated eventual goal, implemented.

§1.1 describes how distributed queries are "decomposed into sequences of
*data moves* and *subqueries*", and §6.2 names the end goal: "dynamically
allocating subqueries of distributed queries to sites in an environment
with only partially replicated data".  This extension implements exactly
that pipeline model:

* a fraction ``multi_prob`` of queries are *distributed*: a chain of
  ``subquery_count`` stages, each referencing its own data item (so each
  stage has its own candidate-site set under the replication map);
* each stage is allocated *when it starts*, using the bound policy's cost
  function over the stage's candidate sites — so allocation decisions see
  the load state at stage time, not plan time (the dynamic part);
* between consecutive stages executed at different sites, the intermediate
  result crosses the subnet (a data move), sized by the work done so far;
* the final stage's results return to the home terminal as usual.

The paper's §1.2.4 point is respected: a *running* stage never moves;
re-decision happens only at stage boundaries, where the only state to ship
is the intermediate result.

Stage allocation reuses the policy's ``site_cost`` with a stage-local
pseudo-query whose "arrival site" is wherever the pipeline currently is,
so LERT's network term naturally prices the data move.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.extensions.partial_replication import (
    PartialReplicationDatabase,
    ReplicationMap,
)
from repro.model.config import SystemConfig
from repro.model.query import Query
from repro.model.ring import Message
from repro.policies.base import AllocationPolicy, CostBasedPolicy
from repro.sim.process import WaitFor


class SubqueryDatabase(PartialReplicationDatabase):
    """Distributed queries as dynamically allocated subquery pipelines.

    Args:
        config: Model parameters.
        policy: Allocation policy; cost-based policies are consulted per
            stage, others (LOCAL/RANDOM) fall back to their whole-query
            behavior per stage.
        replication: Data placement (each stage draws its own item).
        seed: Master seed.
        multi_prob: Probability a query is distributed (multi-stage).
        subquery_count: Stages per distributed query (>= 2).
        item_weights: Optional access skew over data items.
    """

    def __init__(
        self,
        config: SystemConfig,
        policy: AllocationPolicy,
        replication: ReplicationMap,
        seed: int = 0,
        multi_prob: float = 0.5,
        subquery_count: int = 2,
        item_weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not 0 <= multi_prob <= 1:
            raise ValueError("multi_prob must be in [0, 1]")
        if subquery_count < 2:
            raise ValueError("distributed queries need >= 2 subqueries")
        self.multi_prob = multi_prob
        self.subquery_count = subquery_count
        self.distributed_queries = 0
        self.data_moves = 0
        super().__init__(
            config, policy, replication, seed=seed, item_weights=item_weights
        )

    # ------------------------------------------------------------------
    # Stage allocation
    # ------------------------------------------------------------------
    def _stage_candidates(self, item: int) -> Tuple[int, ...]:
        return self.replication.holders(item)

    def _allocate_stage(
        self, stage_query: Query, current_site: int
    ) -> int:
        """Pick the stage's execution site among its item's holders."""
        candidates = list(self._stage_candidates(stage_query.data_item))
        policy = self.policy
        if isinstance(policy, CostBasedPolicy):
            # Present the pipeline's current location as the arrival site so
            # cost models that price network transfers do so correctly.
            policy._view = self.view_for(current_site)
            if current_site in candidates:
                best, best_cost = current_site, policy.site_cost(
                    stage_query, current_site
                )
            else:
                best, best_cost = -1, float("inf")
            for site in candidates:
                if site == current_site:
                    continue
                cost = policy.site_cost(stage_query, site)
                if cost < best_cost:
                    best, best_cost = site, cost
            return best
        # Non-cost policies: prefer to stay, else nearest holder.
        if current_site in candidates:
            return current_site
        return min(
            candidates,
            key=lambda s: (s - current_site) % self.config.num_sites,
        )

    def _move_transfer_time(self, query: Query, reads_done: int) -> float:
        network = self.config.network
        if network.msg_length is not None:
            return network.msg_length
        payload = query.spec.query_size + int(
            query.spec.result_fraction * reads_done * network.page_size
        )
        return payload * network.msg_time

    # ------------------------------------------------------------------
    # Overridden life cycle
    # ------------------------------------------------------------------
    def execute_query(self, query: Query, query_rng):
        if query_rng.random() >= self.multi_prob:
            # Single-site query: the inherited partial-replication path.
            yield from super().execute_query(query, query_rng)
            return

        self.distributed_queries += 1
        sim = self.sim
        stages = self.subquery_count
        # Split the read budget across stages (every stage >= 1 read).
        base, extra = divmod(query.actual_reads, stages)
        stage_reads = [max(1, base + (1 if s < extra else 0)) for s in range(stages)]
        stage_items = [self._draw_item(query_rng) for _ in range(stages)]

        query.allocated_at = sim.now
        current_site = query.home_site
        reads_done = 0
        registered_site: Optional[int] = None

        for stage_index in range(stages):
            reads = stage_reads[stage_index]
            stage_query = Query(
                class_index=query.class_index,
                spec=query.spec,
                home_site=current_site,
                estimated_reads=float(reads),
                actual_reads=reads,
                io_bound=query.io_bound,
                data_item=stage_items[stage_index],
            )
            target = self._allocate_stage(stage_query, current_site)

            # Re-commit the query to its stage site on the load board.
            if registered_site is not None:
                self.load_board.deregister(query, registered_site)
            self.load_board.register(query, target)
            registered_site = target

            if target != current_site:
                self.data_moves += 1
                transfer = self._move_transfer_time(query, reads_done)
                source = current_site
                yield WaitFor(
                    lambda resume: self.ring.send(
                        Message(
                            source=source,
                            destination=target,
                            transfer_time=transfer,
                            deliver=resume,
                            kind="data-move",
                            size_bytes=int(
                                query.spec.result_fraction
                                * reads_done
                                * self.config.network.page_size
                            ),
                        )
                    )
                )
                current_site = target

            if stage_index == 0:
                query.started_at = sim.now
            query.execution_site = current_site
            site = self.sites[current_site]
            for _ in range(reads):
                disk_time = self.workload.disk_time(query_rng)
                yield site.disk_service(disk_time, query_rng)
                query.service_acquired += disk_time
                cpu_time = query_rng.expovariate(1.0 / query.spec.page_cpu_time)
                yield site.cpu_service(cpu_time)
                query.service_acquired += cpu_time
            reads_done += reads

        query.finished_at = sim.now
        if current_site != query.home_site:
            result_bytes = int(
                query.spec.result_fraction
                * query.actual_reads
                * self.config.network.page_size
            )
            source = current_site
            yield WaitFor(
                lambda resume: self.ring.send(
                    Message(
                        source=source,
                        destination=query.home_site,
                        transfer_time=self._result_transfer_time(
                            query, query.actual_reads
                        ),
                        deliver=resume,
                        kind="result",
                        size_bytes=result_bytes,
                    )
                )
            )

        query.completed_at = sim.now
        if registered_site is not None:
            self.load_board.deregister(query, registered_site)
        self.metrics.record(query)


__all__ = ["SubqueryDatabase"]
