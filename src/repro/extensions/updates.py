"""Update transactions and replica propagation.

The paper studies read-only queries and argues in a footnote that this "is
not a major problem, as updates must be propagated to all sites regardless
of the processing site".  This extension makes that argument concrete: a
fraction of the workload are *update* queries that, after executing at
their allocated site, broadcast their write set to every other replica,
where an apply task consumes real disk and CPU time.

Modeling decisions:

* the updating user's response time ends when its own execution finishes
  (asynchronous replication — the propagation is background work);
* one propagation message per remote site crosses the token ring, so
  update-heavy workloads visibly congest the channel;
* each apply task performs ``update_pages`` disk writes and CPU bursts at
  the replica, drawn from a replica-local stream (applies are not part of
  the common-random-numbers contract since they exist only in this
  extension);
* the apply backlog is observable (``pending_applies``) — sustained growth
  means the system cannot keep up with its write rate.

The paper's footnote predicts that update load, being allocation-invariant,
*dilutes* the benefit of dynamic allocation rather than changing the policy
ranking; the update-fraction experiment confirms exactly that.
"""

from __future__ import annotations

from repro.model.config import SystemConfig
from repro.model.query import Query
from repro.model.ring import Message
from repro.model.system import DistributedDatabase
from repro.policies.base import AllocationPolicy


class UpdateWorkloadDatabase(DistributedDatabase):
    """A system whose workload mixes read-only queries and updates.

    Args:
        config: Model parameters.
        policy: Allocation policy (applies to the executing copy; the
            propagation is policy-independent, per the paper's footnote).
        seed: Master seed.
        update_prob: Probability that a query is an update.
        update_pages: Pages written per replica when an update is applied.
        apply_cpu_time: Mean CPU burst per applied page.
    """

    def __init__(
        self,
        config: SystemConfig,
        policy: AllocationPolicy,
        seed: int = 0,
        update_prob: float = 0.2,
        update_pages: int = 4,
        apply_cpu_time: float = 0.05,
    ) -> None:
        if not 0 <= update_prob <= 1:
            raise ValueError("update_prob must be in [0, 1]")
        if update_pages < 1:
            raise ValueError("update_pages must be >= 1")
        if apply_cpu_time <= 0:
            raise ValueError("apply_cpu_time must be > 0")
        self.update_prob = update_prob
        self.update_pages = update_pages
        self.apply_cpu_time = apply_cpu_time
        self.updates_executed = 0
        self.applies_completed = 0
        self._applies_started = 0
        super().__init__(config, policy, seed=seed)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def pending_applies(self) -> int:
        """Apply tasks announced but not yet finished."""
        return self._applies_started - self.applies_completed

    # ------------------------------------------------------------------
    # Propagation machinery
    # ------------------------------------------------------------------
    def _propagation_transfer_time(self) -> float:
        network = self.config.network
        if network.msg_length is not None:
            return network.msg_length
        return self.update_pages * network.page_size * network.msg_time

    def _apply_process(self, site_index: int, update_id: int):
        """Apply one update's write set at one replica."""
        site = self.sites[site_index]
        rng = self.sim.rng.stream(f"apply.s{site_index}.u{update_id}")
        for _ in range(self.update_pages):
            yield site.disk_service(self.workload.disk_time(rng), rng)
            yield site.cpu_service(rng.expovariate(1.0 / self.apply_cpu_time))
        self.applies_completed += 1

    def _propagate(self, query: Query, execution_site: int) -> None:
        for site_index in range(self.config.num_sites):
            if site_index == execution_site:
                continue
            self._applies_started += 1

            def start_apply(site_index=site_index, update_id=query.qid):
                self.sim.launch(
                    self._apply_process(site_index, update_id),
                    name=f"apply.u{update_id}.s{site_index}",
                )

            self.ring.send(
                Message(
                    source=execution_site,
                    destination=site_index,
                    transfer_time=self._propagation_transfer_time(),
                    deliver=start_apply,
                    kind="update",
                    size_bytes=self.update_pages * self.config.network.page_size,
                )
            )

    # ------------------------------------------------------------------
    # Overridden life cycle
    # ------------------------------------------------------------------
    def execute_query(self, query: Query, query_rng):
        is_update = query_rng.random() < self.update_prob
        yield from super().execute_query(query, query_rng)
        if is_update:
            self.updates_executed += 1
            self._propagate(query, query.execution_site)


__all__ = ["UpdateWorkloadDatabase"]
