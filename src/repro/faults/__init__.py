"""Deterministic fault injection and resilience (``repro.faults``).

The paper's allocators assume every site is always up and every load
broadcast arrives.  This package drops that assumption without giving up
reproducibility: a frozen :class:`~repro.faults.plan.FaultPlan` declares
site outages (deterministic schedules or stochastic MTBF/MTTR processes),
token-ring message faults, and load-board broadcast outages; the
:class:`~repro.faults.injector.FaultInjector` executes the plan off the
simulator's event loop using named random streams, so the same
``(seed, plan)`` pair replays byte-identically — including across the
parallel runner.

Degraded-mode semantics (see ``docs/faults.md``):

* in-flight queries at a crashed site are aborted and re-allocated with
  bounded retry and exponential backoff;
* policies see only *available* sites through a
  :class:`~repro.model.view.SystemView` (stale load entries for down
  sites are masked);
* :class:`~repro.model.metrics.SystemResults` gains availability metrics
  (per-site downtime, aborted/retried/lost counts, response time
  conditioned on failure exposure).
"""

from repro.faults.errors import FaultError, NoAvailableSiteError, SiteCrashedError
from repro.faults.injector import FAULT_PRIORITY, FaultInjector
from repro.faults.plan import (
    FaultPlan,
    LoadBoardOutage,
    MessageFaults,
    RandomOutages,
    SiteOutage,
    site_outage_schedule,
)

__all__ = [
    "FaultError",
    "SiteCrashedError",
    "NoAvailableSiteError",
    "FaultPlan",
    "SiteOutage",
    "RandomOutages",
    "MessageFaults",
    "LoadBoardOutage",
    "site_outage_schedule",
    "FaultInjector",
    "FAULT_PRIORITY",
]
