"""Exceptions raised by the fault-injection layer."""

from __future__ import annotations

from repro.sim.errors import SimulationError


class FaultError(SimulationError):
    """Base class of every fault-layer error."""


class SiteCrashedError(FaultError):
    """Thrown into a query process when its execution site goes down.

    The degraded-mode query life cycle catches this to abort and
    re-allocate the query; anything else letting it escape is a bug.
    """

    def __init__(self, site: int) -> None:
        super().__init__(f"site {site} crashed")
        self.site = site


class NoAvailableSiteError(FaultError):
    """Raised by a :class:`~repro.model.view.SystemView` when every
    candidate site for a query is currently down."""


__all__ = ["FaultError", "SiteCrashedError", "NoAvailableSiteError"]
