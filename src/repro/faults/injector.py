"""Deterministic execution of a :class:`~repro.faults.plan.FaultPlan`.

The :class:`FaultInjector` turns a declarative plan into simulator events:

* deterministic site outages become pre-scheduled crash/recover events;
* stochastic MTBF/MTTR processes become self-rescheduling event chains,
  each drawing from its own named random stream
  (``faults.outage{i}.s{site}``), so the failure schedule is a pure
  function of ``(seed, plan)`` and never perturbs workload streams;
* load-board outages freeze the load information policies see;
* message faults are consulted by the degraded query life cycle in
  :meth:`repro.model.system.DistributedDatabase.execute_query` through
  :attr:`FaultInjector.net_rng` (stream ``faults.net``).

Crash/recover events are scheduled at :data:`FAULT_PRIORITY`, which is
*below* the default priority: when a crash and a service completion land
on the same timestamp, the crash fires first and the completion is
retracted (``Simulator.cancel`` on the already-fired loser is a documented
no-op).  This tie-break is pinned by a regression test.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional

from repro.faults.errors import SiteCrashedError
from repro.faults.plan import FaultPlan, RandomOutages
from repro.model.loadboard import LoadView
from repro.model.metrics import AvailabilitySummary
from repro.model.query import Query
from repro.sim.monitor import Tally, TimeWeighted
from repro.sim.process import Process
from repro.telemetry.events import SiteCrashed, SiteRecovered

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import DistributedDatabase

#: Event priority of crash/recover/outage edges.  Lower than
#: :data:`repro.sim.events.DEFAULT_PRIORITY`, so fault transitions fire
#: before same-timestamp model events (the documented tie-break).
FAULT_PRIORITY = -10


class FaultInjector:
    """Executes a fault plan against one :class:`DistributedDatabase`.

    Constructed (and fully scheduled) at simulated time 0 by
    :meth:`~repro.model.system.DistributedDatabase.install_faults`.

    Attributes:
        system: The system under fault.
        plan: The declarative plan being executed.
        crashes / recoveries: Site transitions observed so far.
        queries_aborted / queries_retried / queries_lost: Degraded-mode
            query counters.
        messages_dropped: Subnet transfers lost so far.
        degraded_completions: Completions with ``fault_exposure > 0``.
    """

    def __init__(self, system: "DistributedDatabase", plan: FaultPlan) -> None:
        plan.validate_for(system.config.num_sites)
        self.system = system
        self.plan = plan
        sim = system.sim
        num_sites = system.config.num_sites
        # A site is down while its depth is > 0; depths (not booleans) make
        # overlapping outage intervals compose correctly.
        self._down_depth: List[int] = [0] * num_sites
        self._down_monitors: List[TimeWeighted] = [
            TimeWeighted(sim, name=f"faults.down{s}") for s in range(num_sites)
        ]
        #: Processes currently executing a query at each site, in
        #: registration order (determinism: interrupts replay identically).
        self._executing: List[List[Process]] = [[] for _ in range(num_sites)]
        self._dark_depth = 0
        self._dark_view: Optional[LoadView] = None
        self.crashes = 0
        self.recoveries = 0
        self.queries_aborted = 0
        self.queries_retried = 0
        self.queries_lost = 0
        self.messages_dropped = 0
        self.degraded_completions = 0
        self.clean_responses = Tally(name="faults.clean_response")
        self.degraded_responses = Tally(name="faults.degraded_response")
        self._schedule_plan()

    # ------------------------------------------------------------------
    # Plan scheduling
    # ------------------------------------------------------------------
    def _schedule_plan(self) -> None:
        sim = self.system.sim
        for outage in self.plan.site_outages:
            site = outage.site
            sim.schedule_at(
                outage.at,
                lambda s=site: self._crash(s),
                priority=FAULT_PRIORITY,
                label=f"faults:crash{site}",
            )
            sim.schedule_at(
                outage.at + outage.duration,
                lambda s=site: self._recover(s),
                priority=FAULT_PRIORITY,
                label=f"faults:recover{site}",
            )
        num_sites = self.system.config.num_sites
        for index, process_spec in enumerate(self.plan.random_outages):
            if process_spec.site is None:
                for site in range(num_sites):
                    self._start_outage_chain(index, process_spec, site)
            else:
                self._start_outage_chain(index, process_spec, process_spec.site)
        for outage in self.plan.loadboard_outages:
            sim.schedule_at(
                outage.at,
                self._board_dark,
                priority=FAULT_PRIORITY,
                label="faults:board-dark",
            )
            sim.schedule_at(
                outage.at + outage.duration,
                self._board_restore,
                priority=FAULT_PRIORITY,
                label="faults:board-restore",
            )

    def _start_outage_chain(
        self, index: int, spec: RandomOutages, site: int
    ) -> None:
        """Start one crash/repair renewal process at *site*.

        The chain is a pair of mutually-scheduling callbacks; both draws
        (up-time then down-time) come from a stream named after the plan
        entry and the site, so schedules replay exactly and independent
        chains never share randomness.
        """
        sim = self.system.sim
        rng = sim.rng.stream(f"faults.outage{index}.s{site}")

        def schedule_crash() -> None:
            up_time = rng.expovariate(1.0 / spec.mtbf)
            sim.schedule(
                up_time,
                crash,
                priority=FAULT_PRIORITY,
                label=f"faults:crash{site}",
            )

        def crash() -> None:
            self._crash(site)
            down_time = rng.expovariate(1.0 / spec.mttr)
            sim.schedule(
                down_time,
                recover,
                priority=FAULT_PRIORITY,
                label=f"faults:recover{site}",
            )

        def recover() -> None:
            self._recover(site)
            schedule_crash()

        schedule_crash()

    # ------------------------------------------------------------------
    # Site state transitions
    # ------------------------------------------------------------------
    def _crash(self, site: int) -> None:
        self._down_depth[site] += 1
        if self._down_depth[site] > 1:
            return  # already down (overlapping outages)
        self.crashes += 1
        self._down_monitors[site].set(1)
        sim = self.system.sim
        bus = sim.bus
        if bus.active and bus.wants(SiteCrashed):
            bus.emit(SiteCrashed(time=sim.now, site=site))
        # Tear down the site's service centers first (cancels completion
        # events), then interrupt the victims in registration order.
        self.system.sites[site].abort_all()
        victims = self._executing[site]
        self._executing[site] = []
        for process in victims:
            process.interrupt(SiteCrashedError(site))

    def _recover(self, site: int) -> None:
        if self._down_depth[site] <= 0:
            return  # spurious (should not happen; defensive)
        self._down_depth[site] -= 1
        if self._down_depth[site] > 0:
            return  # still inside an overlapping outage
        self.recoveries += 1
        self._down_monitors[site].set(0)
        sim = self.system.sim
        bus = sim.bus
        if bus.active and bus.wants(SiteRecovered):
            bus.emit(SiteRecovered(time=sim.now, site=site))

    def _board_dark(self) -> None:
        self._dark_depth += 1
        if self._dark_depth == 1:
            self._dark_view = self.system.load_board.snapshot()

    def _board_restore(self) -> None:
        if self._dark_depth <= 0:
            return
        self._dark_depth -= 1
        if self._dark_depth == 0:
            self._dark_view = None

    # ------------------------------------------------------------------
    # Queries read through these
    # ------------------------------------------------------------------
    def is_up(self, site: int) -> bool:
        """Whether *site* is currently available."""
        return self._down_depth[site] == 0

    @property
    def available_sites(self) -> List[int]:
        """Sites currently up, in index order."""
        return [s for s, depth in enumerate(self._down_depth) if depth == 0]

    @property
    def dark_view(self) -> Optional[LoadView]:
        """The frozen load snapshot while broadcasts are dark, else None."""
        return self._dark_view

    @property
    def net_rng(self) -> random.Random:
        """The message-fault stream (``faults.net``)."""
        return self.system.sim.rng.stream("faults.net")

    # ------------------------------------------------------------------
    # Degraded-mode bookkeeping (called by the query life cycle)
    # ------------------------------------------------------------------
    def begin_execution(self, site: int, process: Process) -> None:
        """Register *process* as executing at *site* (crash victim set)."""
        self._executing[site].append(process)

    def end_execution(self, site: int, process: Process) -> None:
        """Deregister *process*; idempotent (a crash empties the set)."""
        try:
            self._executing[site].remove(process)
        except ValueError:
            pass

    def record_completion(self, query: Query) -> None:
        """Classify a completion as clean or degraded for the metrics."""
        if query.fault_exposure > 0:
            self.degraded_completions += 1
            self.degraded_responses.record(query.response_time)
        else:
            self.clean_responses.record(query.response_time)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Truncate availability statistics (end of warmup)."""
        for monitor in self._down_monitors:
            monitor.reset()
        self.crashes = 0
        self.recoveries = 0
        self.queries_aborted = 0
        self.queries_retried = 0
        self.queries_lost = 0
        self.messages_dropped = 0
        self.degraded_completions = 0
        self.clean_responses.reset()
        self.degraded_responses.reset()

    def availability_summary(self) -> AvailabilitySummary:
        """Snapshot the availability metrics since the last reset."""
        return AvailabilitySummary(
            site_downtime=tuple(m.integral for m in self._down_monitors),
            crashes=self.crashes,
            recoveries=self.recoveries,
            queries_aborted=self.queries_aborted,
            queries_retried=self.queries_retried,
            queries_lost=self.queries_lost,
            messages_dropped=self.messages_dropped,
            degraded_completions=self.degraded_completions,
            clean_response_time=self.clean_responses.mean,
            degraded_response_time=self.degraded_responses.mean,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        down = [s for s, d in enumerate(self._down_depth) if d > 0]
        return f"<FaultInjector down={down} aborted={self.queries_aborted}>"


__all__ = ["FAULT_PRIORITY", "FaultInjector"]
