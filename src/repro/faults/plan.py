"""Declarative, hashable fault plans.

A :class:`FaultPlan` *describes* every fault a run should experience —
deterministic site outages, stochastic crash/repair processes, token-ring
message faults, and load-board broadcast outages — without executing any
of them.  Execution belongs to :class:`~repro.faults.injector.FaultInjector`,
which derives all of its randomness from the run's named
:class:`~repro.sim.rng.RandomStreams`, so the same ``(seed, plan)`` pair
replays byte-identically.

Plans are frozen dataclasses built from primitives and tuples only: they
are hashable (usable as cache-key components), comparable, and round-trip
through JSON via :func:`repro.model.serialization.fault_plan_to_dict`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.faults.errors import FaultError


def _require_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise FaultError(f"{name} must be finite, got {value!r}")


@dataclass(frozen=True, slots=True)
class SiteOutage:
    """One deterministic site outage: down at ``at``, up at ``at + duration``.

    Attributes:
        site: The site taken down.
        at: Absolute simulated time the outage starts.
        duration: How long the site stays down (> 0).
    """

    site: int
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.site < 0:
            raise FaultError(f"site must be >= 0, got {self.site}")
        _require_finite("at", self.at)
        _require_finite("duration", self.duration)
        if self.at < 0:
            raise FaultError(f"at must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise FaultError(f"duration must be > 0, got {self.duration}")


@dataclass(frozen=True, slots=True)
class RandomOutages:
    """A stochastic crash/repair process (exponential MTBF / MTTR).

    Up-times are exponential with mean ``mtbf`` and down-times exponential
    with mean ``mttr``, drawn from a named random stream per affected site,
    so the schedule is a deterministic function of ``(seed, plan)``.

    Attributes:
        mtbf: Mean time between failures (mean up-time, > 0).
        mttr: Mean time to repair (mean down-time, > 0).
        site: The affected site, or ``None`` to run one independent
            crash/repair process at *every* site.
    """

    mtbf: float
    mttr: float
    site: Optional[int] = None

    def __post_init__(self) -> None:
        _require_finite("mtbf", self.mtbf)
        _require_finite("mttr", self.mttr)
        if self.mtbf <= 0:
            raise FaultError(f"mtbf must be > 0, got {self.mtbf}")
        if self.mttr <= 0:
            raise FaultError(f"mttr must be > 0, got {self.mttr}")
        if self.site is not None and self.site < 0:
            raise FaultError(f"site must be >= 0 or None, got {self.site}")


@dataclass(frozen=True, slots=True)
class MessageFaults:
    """Token-ring message faults: i.i.d. loss and constant extra delay.

    Attributes:
        loss_prob: Probability that any one query/result transfer is lost
            (per transmission attempt, in ``[0, 1)``).
        extra_delay: Constant extra latency added to every transfer.
        retransmit_timeout: How long a sender waits before retransmitting
            a lost message (> 0).
        max_retransmits: Bound on retransmissions per transfer; exceeding
            it aborts the query's current attempt (>= 1).
    """

    loss_prob: float = 0.0
    extra_delay: float = 0.0
    retransmit_timeout: float = 10.0
    max_retransmits: int = 10

    def __post_init__(self) -> None:
        _require_finite("loss_prob", self.loss_prob)
        _require_finite("extra_delay", self.extra_delay)
        _require_finite("retransmit_timeout", self.retransmit_timeout)
        if not 0.0 <= self.loss_prob < 1.0:
            raise FaultError(f"loss_prob must be in [0, 1), got {self.loss_prob}")
        if self.extra_delay < 0:
            raise FaultError(f"extra_delay must be >= 0, got {self.extra_delay}")
        if self.retransmit_timeout <= 0:
            raise FaultError(
                f"retransmit_timeout must be > 0, got {self.retransmit_timeout}"
            )
        if self.max_retransmits < 1:
            raise FaultError(
                f"max_retransmits must be >= 1, got {self.max_retransmits}"
            )

    @property
    def is_noop(self) -> bool:
        """Whether these message faults change nothing."""
        return self.loss_prob == 0.0 and self.extra_delay == 0.0


@dataclass(frozen=True, slots=True)
class LoadBoardOutage:
    """A load-board broadcast outage: load information goes dark.

    While dark, policies see the last snapshot taken at outage start
    (stale-frozen), not live counts.  Site up/down knowledge is *not*
    affected — failure detection is modelled as a separate, faster channel.

    Attributes:
        at: Absolute simulated time the outage starts.
        duration: How long broadcasts stay dark (> 0).
    """

    at: float
    duration: float

    def __post_init__(self) -> None:
        _require_finite("at", self.at)
        _require_finite("duration", self.duration)
        if self.at < 0:
            raise FaultError(f"at must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise FaultError(f"duration must be > 0, got {self.duration}")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Everything that can go wrong in one run, declared up front.

    The default ``FaultPlan()`` is a strict no-op: installing it is
    guaranteed (and pinned by tests) to leave results byte-identical to a
    run with no plan at all.

    Attributes:
        site_outages: Deterministic site outages.
        random_outages: Stochastic MTBF/MTTR crash/repair processes.
        messages: Token-ring message faults, or ``None`` for a perfect
            subnet.
        loadboard_outages: Load-information broadcast outages.
        max_retries: How many times an aborted query is re-allocated
            before being counted lost (>= 0; 0 means never retry).
        retry_backoff: Base delay before the first retry (> 0).
        backoff_factor: Multiplier applied to the backoff per further
            retry (>= 1; exponential backoff).
    """

    site_outages: Tuple[SiteOutage, ...] = ()
    random_outages: Tuple[RandomOutages, ...] = ()
    messages: Optional[MessageFaults] = None
    loadboard_outages: Tuple[LoadBoardOutage, ...] = ()
    max_retries: int = 5
    retry_backoff: float = 1.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "site_outages", tuple(self.site_outages))
        object.__setattr__(self, "random_outages", tuple(self.random_outages))
        object.__setattr__(self, "loadboard_outages", tuple(self.loadboard_outages))
        if self.max_retries < 0:
            raise FaultError(f"max_retries must be >= 0, got {self.max_retries}")
        _require_finite("retry_backoff", self.retry_backoff)
        _require_finite("backoff_factor", self.backoff_factor)
        if self.retry_backoff <= 0:
            raise FaultError(f"retry_backoff must be > 0, got {self.retry_backoff}")
        if self.backoff_factor < 1:
            raise FaultError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    @property
    def is_noop(self) -> bool:
        """Whether installing this plan can change a run at all.

        A no-op plan injects nothing: the system treats it exactly like
        ``faults=None`` (the runner normalizes it away before caching).
        """
        return (
            not self.site_outages
            and not self.random_outages
            and (self.messages is None or self.messages.is_noop)
            and not self.loadboard_outages
        )

    def backoff(self, attempt: int) -> float:
        """Backoff delay before retry number *attempt* (1-based)."""
        if attempt < 1:
            raise FaultError(f"attempt must be >= 1, got {attempt}")
        return self.retry_backoff * self.backoff_factor ** (attempt - 1)

    def validate_for(self, num_sites: int) -> None:
        """Check that every referenced site exists in a ``num_sites`` system.

        Raises:
            FaultError: If any outage names a site outside
                ``range(num_sites)``, or a deterministic outage schedule
                would leave *every* site down simultaneously forever.
        """
        for outage in self.site_outages:
            if outage.site >= num_sites:
                raise FaultError(
                    f"site outage names site {outage.site}, but the system "
                    f"has only {num_sites} sites"
                )
        for process in self.random_outages:
            if process.site is not None and process.site >= num_sites:
                raise FaultError(
                    f"random outage names site {process.site}, but the "
                    f"system has only {num_sites} sites"
                )


def site_outage_schedule(
    outages: Sequence[SiteOutage],
) -> Tuple[Tuple[float, int, int], ...]:
    """Flatten deterministic outages into sorted ``(time, site, delta)`` edges.

    ``delta`` is ``+1`` for a crash edge and ``-1`` for a recovery edge.
    Sorted by time then site then delta so overlapping outages resolve
    deterministically.  Exposed mainly for tests and plan visualization.
    """
    edges: List[Tuple[float, int, int]] = []
    for outage in outages:
        edges.append((outage.at, outage.site, +1))
        edges.append((outage.at + outage.duration, outage.site, -1))
    return tuple(sorted(edges))


__all__ = [
    "SiteOutage",
    "RandomOutages",
    "MessageFaults",
    "LoadBoardOutage",
    "FaultPlan",
    "site_outage_schedule",
]
