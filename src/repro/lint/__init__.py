"""reprolint — determinism & simulation-invariant static analysis.

The repository's results are only credible if every simulation run is
exactly reproducible: the parallel runner and the content-addressed result
cache (PR 1) both *assume* bit-identical re-execution.  That assumption
rests on project-specific coding invariants that no off-the-shelf linter
knows about — named RNG streams instead of global random state, simulated
time instead of wall-clock time, order-independent aggregation, complete
serialization coverage of every config/results field.

``reprolint`` enforces those invariants *by construction*, with a custom
AST-based static-analysis pass:

* a pluggable rule framework (:mod:`repro.lint.base`) with a registry,
  per-rule codes (``RL001``...), and module/project scopes;
* the determinism rules themselves (:mod:`repro.lint.rules`);
* an engine (:mod:`repro.lint.engine`) handling file discovery, parsing,
  and ``# reprolint: disable=RL0xx`` suppression pragmas;
* human-readable and JSON reporting (:mod:`repro.lint.report`);
* a CLI (:mod:`repro.lint.cli`), installed as ``repro-lint`` and runnable
  as ``python -m repro.lint``.

Typical use::

    $ repro-lint src/repro
    $ repro-lint --list-rules
    $ repro-lint --format json src/repro | jq .violation_count

Exit codes: 0 = clean, 1 = violations found, 2 = usage or parse error.
See ``docs/linting.md`` for every rule's rationale.
"""

from __future__ import annotations

from repro.lint.base import (
    ModuleContext,
    ProjectContext,
    Rule,
    Violation,
    iter_rules,
    rule_codes,
)
from repro.lint.cli import main
from repro.lint.engine import LintResult, lint_paths

__all__ = [
    "Violation",
    "Rule",
    "ModuleContext",
    "ProjectContext",
    "iter_rules",
    "rule_codes",
    "LintResult",
    "lint_paths",
    "main",
]
