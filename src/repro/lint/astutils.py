"""Small AST helpers shared by the lint rules.

The rules never execute the code they inspect; everything here is pure
syntax analysis.  The one piece of real machinery is *import-aware name
resolution*: ``collect_imports`` builds a table mapping local names to the
dotted path they were imported from, and ``resolve_name`` uses it to turn
an attribute chain like ``np.random.seed`` into ``numpy.random.seed`` so a
rule can match on canonical names regardless of aliasing
(``import numpy as np``, ``from random import seed as s``, ...).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Mapping, Optional, Tuple


def collect_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Map local names bound by imports to their canonical dotted origin.

    * ``import random``             -> ``{"random": "random"}``
    * ``import numpy as np``        -> ``{"np": "numpy"}``
    * ``import numpy.random``       -> ``{"numpy": "numpy"}``
    * ``from random import seed``   -> ``{"seed": "random.seed"}``
    * ``from numpy import random as npr`` -> ``{"npr": "numpy.random"}``

    Relative imports are resolved against *module*'s package so that
    ``from .rng import RandomStreams`` inside ``repro.sim.engine`` maps to
    ``repro.sim.rng.RandomStreams``.
    """
    table: Dict[str, str] = {}
    package_parts = module.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def dotted(node: ast.AST) -> Optional[str]:
    """The raw dotted form of a ``Name``/``Attribute`` chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def resolve_name(node: ast.AST, imports: Mapping[str, str]) -> Optional[str]:
    """Canonical dotted name of an expression, substituting import aliases.

    Returns the chain unchanged when its head is not an imported alias
    (builtins and local variables resolve to themselves), and ``None`` for
    expressions that are not plain ``Name``/``Attribute`` chains.
    """
    chain = dotted(node)
    if chain is None:
        return None
    head, dot, rest = chain.partition(".")
    base = imports.get(head)
    if base is None:
        return chain
    return f"{base}{dot}{rest}" if rest else base


def resolve_imported(node: ast.AST, imports: Mapping[str, str]) -> Optional[str]:
    """Like :func:`resolve_name`, but only for names rooted in an import.

    Returns ``None`` when the chain's head is a local name rather than an
    imported module/object — the right behaviour for rules matching
    *module-level* functions (``random.seed``, ``time.time``, ...), where
    a parameter that happens to be called ``random`` must not match.
    """
    chain = dotted(node)
    if chain is None:
        return None
    head, dot, rest = chain.partition(".")
    base = imports.get(head)
    if base is None:
        return None
    return f"{base}{dot}{rest}" if rest else base


def iteration_sites(tree: ast.Module) -> Iterator[Tuple[ast.expr, ast.AST]]:
    """Yield ``(iterable_expression, owning_node)`` for every iteration.

    Covers ``for``/``async for`` statements and every ``for`` clause of
    list/set/dict comprehensions and generator expressions — the places
    where an unordered iterable silently injects nondeterminism.
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for comp in node.generators:
                yield comp.iter, node


def call_name(node: ast.AST, imports: Mapping[str, str]) -> Optional[str]:
    """Canonical dotted name of a call's callee (``None`` for non-calls)."""
    if isinstance(node, ast.Call):
        return resolve_name(node.func, imports)
    return None


def is_dataclass_decorator(node: ast.expr, imports: Mapping[str, str]) -> bool:
    """True for ``@dataclass``, ``@dataclass(...)``, and aliased forms."""
    target: ast.AST = node.func if isinstance(node, ast.Call) else node
    name = resolve_name(target, imports)
    return name in ("dataclass", "dataclasses.dataclass")


def is_classvar_annotation(node: ast.expr, imports: Mapping[str, str]) -> bool:
    """True when an annotation is ``ClassVar`` / ``ClassVar[...]``."""
    target: ast.AST = node.value if isinstance(node, ast.Subscript) else node
    name = resolve_name(target, imports)
    return name in ("ClassVar", "typing.ClassVar")


__all__ = [
    "collect_imports",
    "dotted",
    "resolve_name",
    "resolve_imported",
    "iteration_sites",
    "call_name",
    "is_dataclass_decorator",
    "is_classvar_annotation",
]
