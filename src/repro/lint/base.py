"""Rule framework: violations, module/project contexts, and the registry.

A rule is a small class with a unique code (``RL001``...), a *scope* (the
dotted-module prefixes it applies to), and one or both of two hooks:

* :meth:`Rule.check_module` — called once per in-scope module with a
  parsed :class:`ModuleContext`; yields :class:`Violation` objects.
* :meth:`Rule.check_project` — called once per lint run with the
  :class:`ProjectContext` holding *every* parsed module, for cross-module
  invariants (e.g. RL006's serialization-coverage check).

Rules self-register via the :func:`register` decorator; the engine asks
:func:`iter_rules` for one instance of each, sorted by code.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Type, TypeVar

from repro.lint.astutils import collect_imports, resolve_imported, resolve_name


@dataclass(frozen=True)
class Violation:
    """One rule finding at a specific source location."""

    code: str
    message: str
    path: str
    line: int
    column: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (schema version 1)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
        }

    def render(self) -> str:
        """``path:line:col: CODE message`` — the human output line."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.code)


@dataclass
class ModuleContext:
    """One parsed source file, plus derived lookup tables."""

    path: pathlib.Path
    module: str
    source: str
    tree: ast.Module
    imports: Mapping[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: pathlib.Path, module: str, source: str) -> "ModuleContext":
        """Parse *source* and build the import-resolution table.

        Raises:
            SyntaxError: When the file does not parse.
        """
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            imports=collect_imports(tree, module),
        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of *node* (import-alias aware).

        Local names resolve to themselves, so builtins like ``sum`` and
        ``print`` are matchable.
        """
        return resolve_name(node, self.imports)

    def resolve_imported(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of *node*, only if rooted in an import.

        ``None`` for chains headed by a local name — use this when
        matching module-level functions so that a parameter named (say)
        ``random`` never matches ``random.*``.
        """
        return resolve_imported(node, self.imports)


@dataclass(eq=False)
class ProjectContext:
    """Every module parsed in this lint run, keyed by dotted module name.

    Identity semantics (``eq=False``): two contexts are never "the same
    run", and the flow layer keys its per-run analysis cache on context
    identity (see :func:`repro.lint.flow.flow_program`).
    """

    modules: Dict[str, ModuleContext] = field(default_factory=dict)

    def get(self, module: str) -> Optional[ModuleContext]:
        return self.modules.get(module)


class Rule:
    """Base class for lint rules; subclass and :func:`register`."""

    #: Unique rule code, e.g. ``"RL001"``.
    code: str = "RL000"
    #: Short kebab-case rule name for listings.
    name: str = "unnamed-rule"
    #: One-line human summary of what the rule enforces and why.
    summary: str = ""
    #: Dotted-module prefixes :meth:`check_module` applies to.
    scope: Tuple[str, ...] = ("repro",)
    #: Whole-program rules (RL013+) are more expensive — they build a
    #: project-wide symbol table and call graph — so the engine only runs
    #: them when ``--flow`` is passed or the code is named in ``--select``.
    flow: bool = False

    def applies_to(self, module: str) -> bool:
        """Whether *module* falls under this rule's scope prefixes."""
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Per-module hook; default: no findings."""
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        """Whole-project hook for cross-module rules; default: no findings."""
        return iter(())

    def violation(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` located at *node* in *ctx*."""
        return Violation(
            code=self.code,
            message=message,
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
        )


_REGISTRY: Dict[str, Type[Rule]] = {}

RuleT = TypeVar("RuleT", bound=Type[Rule])


def register(cls: RuleT) -> RuleT:
    """Class decorator adding a rule to the global registry.

    Raises:
        ValueError: On duplicate rule codes — each code must be unique so
            suppression pragmas and ``--select``/``--ignore`` are
            unambiguous.
    """
    if cls.code in _REGISTRY:
        raise ValueError(
            f"duplicate rule code {cls.code}: "
            f"{_REGISTRY[cls.code].__name__} vs {cls.__name__}"
        )
    _REGISTRY[cls.code] = cls
    return cls


def iter_rules() -> List[Rule]:
    """One instance of every registered rule, sorted by code."""
    # Importing the rule modules populates the registry on first use.
    import repro.lint.flow.rules  # noqa: F401  (import for side effect)
    import repro.lint.rules  # noqa: F401  (import for side effect)

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rule_codes() -> List[str]:
    """All registered rule codes, sorted."""
    import repro.lint.flow.rules  # noqa: F401  (import for side effect)
    import repro.lint.rules  # noqa: F401  (import for side effect)

    return sorted(_REGISTRY)


__all__ = [
    "Violation",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "register",
    "iter_rules",
    "rule_codes",
]
