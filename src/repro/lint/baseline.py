"""Baseline / ratchet support for accepted findings.

A baseline is a committed JSON file listing findings that are *known and
accepted* — typically flow findings whose fix is a judgment call that
was made explicitly (see ``docs/linting.md``).  Applying a baseline
subtracts those findings from a run, so CI stays green on the accepted
set while any **new** finding still fails.  The ratchet works in both
directions: a baseline entry that no longer matches anything is *stale*
and also fails the run, so the accepted set can only shrink.

Findings are matched by fingerprint — ``(code, path, message)``, with
the path normalized to a ``/``-separated form relative to the current
working directory when possible.  Line numbers are deliberately **not**
part of the fingerprint: unrelated edits move code around, and a
baseline that churns on every edit trains people to regenerate it
blindly, which defeats the ratchet.

File format (schema version 1, stable key order)::

    {
      "version": 1,
      "entries": [
        {"code": "RL017", "path": "src/repro/telemetry/session.py",
         "message": "subscriber _on_warmup_ended() can schedule ..."}
      ]
    }
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.base import Violation
from repro.lint.engine import LintResult

#: Schema version of the baseline file.
BASELINE_VERSION = 1

#: Default baseline filename, auto-detected in the working directory.
DEFAULT_BASELINE = "lint-baseline.json"

Fingerprint = Tuple[str, str, str]


def _normalize_path(path: str) -> str:
    """Repo-relative ``/``-separated form of *path* when possible."""
    candidate = pathlib.Path(path)
    if candidate.is_absolute():
        try:
            candidate = candidate.relative_to(pathlib.Path.cwd())
        except ValueError:
            pass
    return candidate.as_posix()


def fingerprint(violation: Violation) -> Fingerprint:
    """The baseline identity of *violation* (line numbers excluded)."""
    return (violation.code, _normalize_path(violation.path), violation.message)


@dataclass
class Baseline:
    """The accepted-findings set loaded from (or written to) disk."""

    entries: List[Fingerprint] = field(default_factory=list)

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        """Read a baseline file.

        Raises:
            ValueError: On malformed JSON or an unsupported schema.
            OSError: When the file cannot be read.
        """
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON ({error})") from error
        if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline schema "
                f"(expected version {BASELINE_VERSION})"
            )
        entries: List[Fingerprint] = []
        raw_entries = document.get("entries", [])
        if not isinstance(raw_entries, list):
            raise ValueError(f"{path}: 'entries' must be a list")
        for raw in raw_entries:
            if (
                not isinstance(raw, dict)
                or not isinstance(raw.get("code"), str)
                or not isinstance(raw.get("path"), str)
                or not isinstance(raw.get("message"), str)
            ):
                raise ValueError(
                    f"{path}: each entry needs string 'code', 'path', "
                    "and 'message' fields"
                )
            entries.append((raw["code"], raw["path"], raw["message"]))
        return cls(entries=entries)

    @classmethod
    def from_result(cls, result: LintResult) -> "Baseline":
        """A baseline accepting every violation in *result*."""
        return cls(entries=sorted(fingerprint(v) for v in result.violations))

    def write(self, path: pathlib.Path) -> None:
        """Write the baseline file (sorted entries, stable key order)."""
        document = {
            "version": BASELINE_VERSION,
            "entries": [
                {"code": code, "path": rel_path, "message": message}
                for code, rel_path, message in sorted(self.entries)
            ],
        }
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


@dataclass
class BaselineOutcome:
    """Result of subtracting a baseline from a lint run."""

    #: Violations not covered by the baseline — still fail the run.
    new_violations: List[Violation]
    #: Baseline entries that matched nothing (ratchet: must be removed).
    stale_entries: List[Fingerprint]
    #: How many findings the baseline absorbed.
    matched: int


def apply_baseline(
    result: LintResult,
    baseline: Baseline,
    active_codes: Iterable[str],
) -> BaselineOutcome:
    """Subtract *baseline* from *result*.

    Matching is multiset-aware: two identical findings need two baseline
    entries.  Staleness is only judged for *active_codes* — an entry for
    a rule that did not run this time (e.g. a flow code in a non-flow
    run) is neither matched nor stale.
    """
    budget: Dict[Fingerprint, int] = Counter(baseline.entries)
    active: Set[str] = set(active_codes)
    new_violations: List[Violation] = []
    matched = 0
    for violation in result.violations:
        key = fingerprint(violation)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched += 1
        else:
            new_violations.append(violation)
    stale: List[Fingerprint] = []
    for key in sorted(budget):
        if key[0] not in active:
            continue
        stale.extend([key] * budget[key])
    return BaselineOutcome(
        new_violations=new_violations, stale_entries=stale, matched=matched
    )


__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE",
    "Fingerprint",
    "fingerprint",
    "Baseline",
    "BaselineOutcome",
    "apply_baseline",
]
