"""The ``repro-lint`` command line interface.

Usage::

    repro-lint [paths ...]              # default: src/repro (or ./repro)
    repro-lint --flow src/repro         # + whole-program rules RL013-RL018
    repro-lint --format json src/repro
    repro-lint --format sarif src/repro > lint.sarif
    repro-lint --select RL001,RL004 src/repro
    repro-lint --ignore RL009 src/repro
    repro-lint --flow --update-baseline src/repro
    repro-lint --list-rules

Also runnable as ``python -m repro.lint``.  Exit codes: 0 = clean,
1 = violations found, 2 = usage error, unparseable input files, or a
stale baseline entry.

Baselines: ``--baseline FILE`` subtracts a committed accepted-findings
file from the run (new findings still fail; stale entries fail the
ratchet).  With ``--flow`` and no explicit ``--baseline``, a
``lint-baseline.json`` in the working directory is applied
automatically, so ``repro-lint --flow src/repro`` in CI needs no extra
flags.  ``--update-baseline`` rewrites the file from the current
findings instead of failing on them.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import DEFAULT_BASELINE, Baseline, apply_baseline
from repro.lint.engine import lint_paths
from repro.lint.report import (
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
)


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    """``"RL001, RL004"`` -> ``["RL001", "RL004"]`` (None passes through)."""
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def default_paths() -> List[pathlib.Path]:
    """``src/repro`` (repo layout) or ``repro`` (installed/cwd layout)."""
    for candidate in (pathlib.Path("src") / "repro", pathlib.Path("repro")):
        if candidate.is_dir():
            return [candidate]
    return []


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & simulation-invariant linter for the "
            "repro codebase (see docs/linting.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=pathlib.Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "also run the whole-program flow rules (RL013-RL018): "
            "symbol table + call graph analysis across every linted file"
        ),
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=pathlib.Path,
        help=(
            "accepted-findings file to subtract from the run "
            f"(default with --flow: ./{DEFAULT_BASELINE} if present)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def _baseline_path(args: argparse.Namespace) -> Optional[pathlib.Path]:
    """The baseline file to use, or ``None`` when baselining is off."""
    if args.baseline is not None:
        return pathlib.Path(args.baseline)
    if args.flow:
        candidate = pathlib.Path(DEFAULT_BASELINE)
        if candidate.is_file() or args.update_baseline:
            return candidate
    return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    paths: List[pathlib.Path] = list(args.paths) or default_paths()
    if not paths:
        print(
            "repro-lint: no paths given and no src/repro or repro directory "
            "found",
            file=sys.stderr,
        )
        return 2

    try:
        result = lint_paths(
            paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
            flow=args.flow,
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    baseline_file = _baseline_path(args)
    if args.update_baseline:
        if baseline_file is None:
            print(
                "repro-lint: --update-baseline needs --baseline FILE "
                "(or --flow for the default)",
                file=sys.stderr,
            )
            return 2
        Baseline.from_result(result).write(baseline_file)
        print(
            f"repro-lint: wrote {len(result.violations)} accepted "
            f"finding(s) to {baseline_file}"
        )
        return 0

    stale_failure = False
    if baseline_file is not None and baseline_file.is_file():
        try:
            baseline = Baseline.load(baseline_file)
        except (OSError, ValueError) as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2
        outcome = apply_baseline(result, baseline, _active_codes(args))
        result.violations = outcome.new_violations
        for code, rel_path, message in outcome.stale_entries:
            print(
                f"repro-lint: stale baseline entry in {baseline_file}: "
                f"{code} {rel_path}: {message!r} no longer matches any "
                "finding — remove it (the accepted set only shrinks)",
                file=sys.stderr,
            )
            stale_failure = True

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    if stale_failure:
        return 2
    return result.exit_code


def _active_codes(args: argparse.Namespace) -> List[str]:
    """Codes of the rules that actually ran, for staleness judgment."""
    from repro.lint.base import iter_rules

    selected = _split_codes(args.select)
    ignored = set(_split_codes(args.ignore) or [])
    codes: List[str] = []
    for rule in iter_rules():
        if selected is not None:
            if rule.code in selected and rule.code not in ignored:
                codes.append(rule.code)
        elif rule.code not in ignored and (args.flow or not rule.flow):
            codes.append(rule.code)
    return codes


__all__ = ["build_parser", "default_paths", "main"]
