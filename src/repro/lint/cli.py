"""The ``repro-lint`` command line interface.

Usage::

    repro-lint [paths ...]              # default: src/repro (or ./repro)
    repro-lint --format json src/repro
    repro-lint --select RL001,RL004 src/repro
    repro-lint --ignore RL009 src/repro
    repro-lint --list-rules

Also runnable as ``python -m repro.lint``.  Exit codes: 0 = clean,
1 = violations found, 2 = usage error or unparseable input files.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import lint_paths
from repro.lint.report import render_json, render_rule_list, render_text


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    """``"RL001, RL004"`` -> ``["RL001", "RL004"]`` (None passes through)."""
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def default_paths() -> List[pathlib.Path]:
    """``src/repro`` (repo layout) or ``repro`` (installed/cwd layout)."""
    for candidate in (pathlib.Path("src") / "repro", pathlib.Path("repro")):
        if candidate.is_dir():
            return [candidate]
    return []


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & simulation-invariant linter for the "
            "repro codebase (see docs/linting.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=pathlib.Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    paths: List[pathlib.Path] = list(args.paths) or default_paths()
    if not paths:
        print(
            "repro-lint: no paths given and no src/repro or repro directory "
            "found",
            file=sys.stderr,
        )
        return 2

    try:
        result = lint_paths(
            paths,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


__all__ = ["build_parser", "default_paths", "main"]
