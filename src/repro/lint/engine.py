"""Lint engine: file discovery, parsing, suppressions, rule execution.

The engine is the only part of reprolint that touches the filesystem.  A
run proceeds in phases:

1. discover ``.py`` files under the requested paths (sorted, so output is
   stable across machines — rule RL010 applies to us too);
2. parse each file into a :class:`~repro.lint.base.ModuleContext` and
   extract its suppression pragmas from comment tokens;
3. run every selected rule's module hook on in-scope modules, then every
   project hook once with the full :class:`~repro.lint.base.ProjectContext`;
4. drop violations silenced by pragmas and report unknown pragma codes as
   ``RL000`` findings (a typo in a pragma must not silently disable
   nothing).

Suppression syntax (checked case-sensitively, comma lists allowed)::

    do_thing()  # reprolint: disable=RL004
    do_thing()  # reprolint: disable=RL004,RL010
    # reprolint: disable-file=RL009      (anywhere in the file)
    do_thing()  # reprolint: disable=all
"""

from __future__ import annotations

import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.base import (
    ModuleContext,
    ProjectContext,
    Rule,
    Violation,
    iter_rules,
    rule_codes,
)

#: Matches one pragma comment; group 1 is "disable" or "disable-file",
#: group 2 the comma-separated code list (or "all").
_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

_ALL = "all"


@dataclass
class Suppressions:
    """Pragmas of one file: per-line and file-level disabled codes."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_level: Set[str] = field(default_factory=set)
    #: (line, column, bad_code) for pragma codes naming no known rule.
    unknown: List[Tuple[int, int, str]] = field(default_factory=list)
    #: Tokenizer failure message when the pragma scan could not run; the
    #: file's pragmas are unknown, so the engine must surface this rather
    #: than silently lint the file as if it had none.
    failure: Optional[str] = None

    def silences(self, code: str, line: int) -> bool:
        for codes in (self.file_level, self.by_line.get(line, set())):
            if _ALL in codes or code in codes:
                return True
        return False


def parse_suppressions(source: str, known_codes: Iterable[str]) -> Suppressions:
    """Extract ``# reprolint: disable=...`` pragmas from comment tokens.

    Uses the tokenizer (not a regex over raw lines) so pragma-shaped text
    inside string literals is never misread as a pragma.  When the
    tokenizer fails on a file the parser accepted, the returned object
    carries a :attr:`Suppressions.failure` message — the engine reports
    it as an ``RL000`` finding, because a file whose pragmas cannot be
    read must not be linted as if it simply had none.
    """
    known = set(known_codes)
    result = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError) as error:
        result.failure = f"{type(error).__name__}: {error}"
        return result
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        kind = match.group(1)
        codes = {code.strip() for code in match.group(2).split(",")}
        line = token.start[0]
        for code in sorted(codes):
            if code != _ALL and code not in known:
                result.unknown.append((line, token.start[1], code))
        codes &= known | {_ALL}
        if kind == "disable-file":
            result.file_level.update(codes)
        else:
            result.by_line.setdefault(line, set()).update(codes)
    return result


def discover_files(paths: Sequence[pathlib.Path]) -> List[pathlib.Path]:
    """All ``.py`` files under *paths* (files kept as-is), sorted, deduped.

    Raises:
        FileNotFoundError: When a requested path does not exist.
    """
    found: Set[pathlib.Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.is_file():
            found.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module name of *path*, anchored at the ``repro`` package.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine`` (works equally for
    temporary fixture trees, which anchor at their own ``repro/`` dir).
    Files outside any ``repro`` package fall back to their stem.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return parts[-1] if parts else str(path)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    #: Fatal per-file problems (unreadable / syntax errors), as messages.
    errors: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 = clean, 1 = violations, 2 = files could not be analyzed."""
        if self.errors:
            return 2
        return 1 if self.violations else 0


def _selected_rules(
    select: Optional[Iterable[str]],
    ignore: Optional[Iterable[str]],
    flow: bool = False,
) -> List[Rule]:
    """Registry rules filtered by ``--select`` / ``--ignore`` code lists.

    Flow rules (whole-program analysis, RL013+) are skipped by default —
    they run when *flow* is true or when their code is explicitly named
    in *select*.

    Raises:
        ValueError: When a requested code names no registered rule.
    """
    rules = iter_rules()
    known = {rule.code for rule in rules}
    if select is not None:
        wanted = set(select)
    elif flow:
        wanted = set(known)
    else:
        wanted = {rule.code for rule in rules if not rule.flow}
    dropped = set(ignore) if ignore is not None else set()
    unknown = sorted((wanted | dropped) - known)
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [
        rule
        for rule in rules
        if rule.code in wanted and rule.code not in dropped
    ]


def lint_paths(
    paths: Sequence[pathlib.Path],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    flow: bool = False,
) -> LintResult:
    """Run the selected rules over every Python file under *paths*.

    Returns a :class:`LintResult`; violations are sorted by
    ``(path, line, column, code)`` and already filtered through the
    suppression pragmas.  Unknown pragma codes surface as ``RL000``
    violations so typos cannot silently disable nothing.  Pass
    ``flow=True`` to also run the whole-program flow rules (RL013+).
    """
    rules = _selected_rules(select, ignore, flow)
    known = rule_codes()
    result = LintResult()

    contexts: List[ModuleContext] = []
    suppressions: Dict[str, Suppressions] = {}
    for path in discover_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            result.errors.append(f"{path}: unreadable ({error})")
            continue
        module = module_name_for(path)
        try:
            ctx = ModuleContext.parse(path, module, source)
        except SyntaxError as error:
            result.errors.append(
                f"{path}:{error.lineno or 0}: syntax error: {error.msg}"
            )
            continue
        contexts.append(ctx)
        suppressions[str(path)] = parse_suppressions(source, known)
    result.files_checked = len(contexts)

    project = ProjectContext({ctx.module: ctx for ctx in contexts})
    raw: List[Violation] = []
    for ctx in contexts:
        for rule in rules:
            if rule.applies_to(ctx.module):
                raw.extend(rule.check_module(ctx))
    for rule in rules:
        raw.extend(rule.check_project(project))

    no_pragmas = Suppressions()
    kept = [
        violation
        for violation in raw
        if not suppressions.get(violation.path, no_pragmas).silences(
            violation.code, violation.line
        )
    ]
    for path_str, pragmas in sorted(suppressions.items()):
        for line, column, bad_code in pragmas.unknown:
            kept.append(
                Violation(
                    code="RL000",
                    message=(
                        f"suppression pragma names unknown rule code "
                        f"{bad_code!r}; known codes: {', '.join(known)}"
                    ),
                    path=path_str,
                    line=line,
                    column=column,
                )
            )
        if pragmas.failure is not None:
            kept.append(
                Violation(
                    code="RL000",
                    message=(
                        "suppression pragmas could not be scanned "
                        f"(tokenizer failed: {pragmas.failure}); pragmas "
                        "in this file are being ignored"
                    ),
                    path=path_str,
                    line=1,
                    column=0,
                )
            )
    result.errors.sort()
    result.violations = sorted(kept, key=lambda v: v.sort_key)
    return result


__all__ = [
    "Suppressions",
    "parse_suppressions",
    "discover_files",
    "module_name_for",
    "LintResult",
    "lint_paths",
]
