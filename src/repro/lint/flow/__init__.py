"""Whole-program determinism analysis (the ``--flow`` pass).

The per-file rules (RL001–RL012) cannot see across module boundaries: a
policy that mutates :class:`~repro.model.view.SystemView` state through a
helper defined two modules away, a telemetry subscriber that schedules
events back into the simulation, or one named RNG stream consumed from
two unrelated call paths all look locally innocent.  This subpackage
layers a project-wide analysis on top of the existing engine:

1. :mod:`repro.lint.flow.symbols` — a symbol table of every function,
   method, and class (with resolved base classes) in the linted tree;
2. :mod:`repro.lint.flow.callgraph` — a conservative call graph over
   those symbols (direct calls, imported calls, ``self.m()`` virtual
   dispatch through the class hierarchy, and name-based method
   resolution as a fallback);
3. :mod:`repro.lint.flow.dataflow` — named-RNG-stream provenance:
   where each ``rng("...")`` / ``stream("...")`` is fetched, which
   local variables hold streams, and which functions draw from them;
4. :mod:`repro.lint.flow.purity` — per-function side-effect summaries
   (which parameter or ``self.<attr>`` roots are mutated, whether the
   function schedules simulation events or draws randomness),
   propagated to a fixpoint over the call graph;
5. :mod:`repro.lint.flow.rules` — the flow rules themselves
   (RL013–RL018), registered in the ordinary rule registry but gated
   behind ``repro-lint --flow``.

Everything is still pure syntax analysis: no linted code is imported or
executed.  :func:`flow_program` builds (and caches per lint run) the
shared :class:`FlowProgram` bundle the rules consume.
"""

from __future__ import annotations

from repro.lint.flow.program import FlowProgram, flow_program

__all__ = ["FlowProgram", "flow_program"]
