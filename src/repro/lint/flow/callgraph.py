"""A conservative project-wide call graph over the symbol table.

Resolution is purely syntactic, in decreasing order of confidence:

1. direct calls to module-level functions — local (``helper()``) or
   imported (``from repro.sim.rng import bernoulli; bernoulli(...)``),
   with aliases resolved through the import table;
2. class instantiation (``SystemView(...)``) → the class ``__init__``;
3. ``self.method()`` → *virtual dispatch*: the method on the class, its
   ancestors, and every subclass override (a template method calling
   ``self.hook()`` may land anywhere in the hierarchy);
4. ``obj.method()`` on anything else → *name-based dispatch*: every
   class in the project defining ``method``.  This over-approximates,
   which is the right direction for the purity/reachability rules — a
   missed edge hides a violation, a spurious edge at worst asks for a
   justification pragma.

Unresolvable calls (lambdas, calls on call results, builtins) produce no
edges; the analyses that need them (scheduling, RNG draws) match those
patterns structurally instead (see :mod:`repro.lint.flow.purity`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.astutils import dotted
from repro.lint.flow.symbols import FunctionSymbol, SymbolTable


@dataclass
class CallSite:
    """One resolved call expression inside a function body."""

    caller: str
    node: ast.Call
    #: Qualnames of the possible callees (sorted, deduplicated).
    callees: Tuple[str, ...]
    #: The receiver expression for method-style calls (``x`` in
    #: ``x.m(...)``), ``None`` for plain function calls.
    receiver: Optional[ast.expr]
    #: Whether the callees are methods invoked *on* ``receiver`` (their
    #: parameter 0 binds to the receiver object).
    is_method_call: bool
    #: Whether this is a class instantiation: the callee is ``__init__``,
    #: its parameter 0 binds a *fresh* object (not any caller expression),
    #: and positional argument *i* binds parameter ``i + 1``.
    is_constructor: bool = False


class CallGraph:
    """Edges and call sites between :class:`FunctionSymbol` qualnames."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: Dict[str, Set[str]] = {}
        self.sites: Dict[str, List[CallSite]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        graph = cls(table)
        for symbol in table.iter_functions():
            graph._index_function(symbol)
        return graph

    def _index_function(self, symbol: FunctionSymbol) -> None:
        edges = self.edges.setdefault(symbol.qualname, set())
        sites = self.sites.setdefault(symbol.qualname, [])
        for node in ast.walk(symbol.node):
            if not isinstance(node, ast.Call):
                continue
            site = self._resolve(symbol, node)
            if site is None:
                continue
            edges.update(site.callees)
            sites.append(site)

    def _site(
        self,
        symbol: FunctionSymbol,
        node: ast.Call,
        callees: Set[str],
        receiver: Optional[ast.expr],
        is_method: bool,
        is_constructor: bool = False,
    ) -> Optional[CallSite]:
        if not callees:
            return None
        return CallSite(
            caller=symbol.qualname,
            node=node,
            callees=tuple(sorted(callees)),
            receiver=receiver,
            is_method_call=is_method,
            is_constructor=is_constructor,
        )

    def _resolve(
        self, symbol: FunctionSymbol, node: ast.Call
    ) -> Optional[CallSite]:
        func = node.func
        table = self.table
        ctx = symbol.ctx

        if isinstance(func, ast.Name):
            name = func.id
            local = table.module_function(symbol.module, name)
            if local is not None:
                return self._site(symbol, node, {local.qualname}, None, False)
            resolved = ctx.imports.get(name)
            if resolved is not None:
                target = table.functions.get(resolved)
                if target is not None:
                    return self._site(
                        symbol, node, {target.qualname}, None, False
                    )
                init = self._class_init(resolved)
                if init is not None:
                    return self._site(
                        symbol, node, {init}, None, True, is_constructor=True
                    )
            init = self._class_init(f"{symbol.module}.{name}")
            if init is not None:
                return self._site(
                    symbol, node, {init}, None, True, is_constructor=True
                )
            return None

        if isinstance(func, ast.Attribute):
            chain = dotted(func)
            # self.m(...) — virtual dispatch through the hierarchy.
            if (
                chain is not None
                and chain == f"self.{func.attr}"
                and symbol.class_qualname is not None
            ):
                targets = table.resolve_method(symbol.class_qualname, func.attr)
                return self._site(
                    symbol,
                    node,
                    {t.qualname for t in targets},
                    func.value,
                    True,
                )
            # super().m(...) — the enclosing class's ancestors.
            if self._is_super_call(func.value) and symbol.class_qualname:
                targets = {
                    ancestor.methods[func.attr].qualname
                    for ancestor in table.ancestors(symbol.class_qualname)
                    if func.attr in ancestor.methods
                }
                # super() binds the *current* instance: map the implicit
                # receiver back to the caller's own parameter 0.
                receiver: Optional[ast.expr] = None
                if symbol.params:
                    receiver = ast.Name(id=symbol.params[0], ctx=ast.Load())
                return self._site(symbol, node, targets, receiver, True)
            # Fully resolvable dotted call (imported module attribute).
            resolved = ctx.resolve(func)
            if resolved is not None:
                target = table.functions.get(resolved)
                if target is not None:
                    return self._site(
                        symbol,
                        node,
                        {target.qualname},
                        func.value,
                        target.is_method,
                    )
                init = self._class_init(resolved)
                if init is not None:
                    return self._site(
                        symbol, node, {init}, None, True, is_constructor=True
                    )
            # Name-based dispatch: every known method with this name.
            # Dunders are excluded — ``__init__`` & co. appear on nearly
            # every class, so name dispatch would weld the whole project
            # into one blob (constructors resolve via _class_init above).
            if not func.attr.startswith("__"):
                methods = table.methods_by_name.get(func.attr, [])
                if methods:
                    return self._site(
                        symbol,
                        node,
                        {m.qualname for m in methods},
                        func.value,
                        True,
                    )
        return None

    @staticmethod
    def _is_super_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "super"
        )

    def _class_init(self, class_qualname: str) -> Optional[str]:
        cls_symbol = self.table.classes.get(class_qualname)
        if cls_symbol is None:
            return None
        init = cls_symbol.methods.get("__init__")
        return None if init is None else init.qualname

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def reachable(self, roots: List[str]) -> Set[str]:
        """All qualnames reachable from *roots* (roots included)."""
        seen: Set[str] = set()
        queue = list(roots)
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.edges.get(current, ()))
        return seen


__all__ = ["CallSite", "CallGraph"]
