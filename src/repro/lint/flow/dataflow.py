"""Named-RNG-stream provenance: fetches, bindings, and draw sites.

The RNG-stream discipline behind every replay guarantee in this repo is:

* streams are *fetched* from the registry by name —
  ``sim.rng.stream("think.s0.t1")`` or ``view.rng("policy.sq")``;
* each named stream has exactly **one owning call path** that draws from
  it, so adding or removing draws in one activity can never perturb
  another;
* stream objects may be passed *down* (``dist.sample(rng)``) but are
  never stashed globally or re-seeded.

This module finds, per function: the fetch sites (with the stream name
when it is a constant, or a normalized ``{}``-pattern for f-strings),
which local variables are bound to streams, and the *draw* sites —
method calls on stream-bound expressions, stream arguments handed to
callees, and draw methods on parameters that follow the codebase's
``rng`` naming convention.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lint.flow.symbols import FunctionSymbol, SymbolTable

#: ``random.Random`` / generator methods that consume stream state.
DRAW_METHODS: FrozenSet[str] = frozenset(
    {
        "random",
        "uniform",
        "triangular",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "expovariate",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "betavariate",
        "gammavariate",
    }
)

#: Parameter names conventionally carrying a stream object; draw-method
#: calls on these count as draws even without a visible fetch.
STREAM_PARAM_NAMES: FrozenSet[str] = frozenset({"rng", "stream", "random_stream"})


@dataclass
class StreamFetch:
    """One registry fetch: ``...stream("name")`` or ``view.rng("name")``."""

    #: The stream name — exact for constants, a ``{}``-pattern for
    #: f-strings (``"faults.outage{}.s{}"``), ``None`` when dynamic.
    name: Optional[str]
    is_pattern: bool
    node: ast.Call
    function: str


@dataclass
class StreamDraw:
    """One consumption of stream state inside a function."""

    #: Stream name/pattern when the receiver's provenance is known.
    name: Optional[str]
    method: str
    node: ast.AST
    function: str


def _fetch_name(node: ast.Call) -> Tuple[Optional[str], bool]:
    """The stream-name argument: (name-or-pattern, is_pattern)."""
    if not node.args:
        return None, False
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, False
    if isinstance(arg, ast.JoinedStr):
        parts: List[str] = []
        for value in arg.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("{}")
        return "".join(parts), True
    return None, False


def _is_fetch_call(node: ast.Call) -> bool:
    """Whether *node* looks like a registry fetch.

    ``<anything>.stream(<one arg>)`` and ``<anything>.rng(<one arg>)``
    both count; the flow rules scope out modules where these spellings
    mean something else.
    """
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr == "stream" and len(node.args) == 1:
        return True
    return func.attr == "rng" and len(node.args) == 1


@dataclass
class FunctionStreams:
    """Stream facts of one function."""

    fetches: List[StreamFetch]
    draws: List[StreamDraw]
    #: Local names bound to a fetched stream -> stream name (or None).
    bindings: Dict[str, Optional[str]]

    @property
    def draws_directly(self) -> bool:
        return bool(self.draws)


class RngFlow:
    """Stream fetches/draws for every function in the program."""

    def __init__(self) -> None:
        self.per_function: Dict[str, FunctionStreams] = {}

    def all_fetches(self) -> List[StreamFetch]:
        """Every fetch in the program, in deterministic function order."""
        fetches: List[StreamFetch] = []
        for qualname in sorted(self.per_function):
            fetches.extend(self.per_function[qualname].fetches)
        return fetches


def _analyze_function(symbol: FunctionSymbol) -> FunctionStreams:
    fetches: List[StreamFetch] = []
    draws: List[StreamDraw] = []
    bindings: Dict[str, Optional[str]] = {}

    for name in symbol.params:
        if name in STREAM_PARAM_NAMES:
            bindings[name] = None

    # Pass 1: fetches and the locals they are assigned to.
    for node in ast.walk(symbol.node):
        if isinstance(node, ast.Call) and _is_fetch_call(node):
            name, is_pattern = _fetch_name(node)
            fetches.append(
                StreamFetch(
                    name=name,
                    is_pattern=is_pattern,
                    node=node,
                    function=symbol.qualname,
                )
            )
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _is_fetch_call(node.value):
                name, _ = _fetch_name(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings[target.id] = name
        if isinstance(node, ast.AnnAssign) and isinstance(node.value, ast.Call):
            if _is_fetch_call(node.value) and isinstance(node.target, ast.Name):
                name, _ = _fetch_name(node.value)
                bindings[node.target.id] = name

    def stream_name_of(expr: ast.expr) -> Tuple[bool, Optional[str]]:
        """(is-a-stream, known-name) for a receiver/argument expression."""
        if isinstance(expr, ast.Name) and expr.id in bindings:
            return True, bindings[expr.id]
        if isinstance(expr, ast.Call) and _is_fetch_call(expr):
            name, _ = _fetch_name(expr)
            return True, name
        return False, None

    # Pass 2: draws — method calls on streams, streams passed onward.
    for node in ast.walk(symbol.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in DRAW_METHODS:
            is_stream, name = stream_name_of(func.value)
            if is_stream:
                draws.append(
                    StreamDraw(
                        name=name,
                        method=func.attr,
                        node=node,
                        function=symbol.qualname,
                    )
                )
                continue
        # A stream handed to a callee is consumed by that call path.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            is_stream, name = stream_name_of(arg)
            if is_stream and not _is_fetch_call(node):
                draws.append(
                    StreamDraw(
                        name=name,
                        method="<argument>",
                        node=node,
                        function=symbol.qualname,
                    )
                )
    return FunctionStreams(fetches=fetches, draws=draws, bindings=bindings)


def build_rng_flow(table: SymbolTable) -> RngFlow:
    """Analyze every function in *table* (the module-level entry point)."""
    flow = RngFlow()
    for symbol in table.iter_functions():
        flow.per_function[symbol.qualname] = _analyze_function(symbol)
    return flow


__all__ = [
    "DRAW_METHODS",
    "STREAM_PARAM_NAMES",
    "StreamFetch",
    "StreamDraw",
    "FunctionStreams",
    "RngFlow",
    "build_rng_flow",
]
