"""The shared whole-program bundle consumed by every flow rule.

Building the symbol table, call graph, RNG dataflow, and purity fixpoint
costs one pass over every module each — doing that once per *rule* would
multiply lint time by the number of flow rules.  :func:`flow_program`
memoizes the bundle per :class:`~repro.lint.base.ProjectContext`
identity, so all six flow rules of a lint run share one analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import MutableMapping
from weakref import WeakKeyDictionary

from repro.lint.base import ProjectContext
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.dataflow import RngFlow, build_rng_flow
from repro.lint.flow.purity import PurityAnalysis
from repro.lint.flow.symbols import SymbolTable


@dataclass
class FlowProgram:
    """Every analysis layer for one lint run, built once and shared."""

    project: ProjectContext
    symbols: SymbolTable
    callgraph: CallGraph
    rng: RngFlow
    purity: PurityAnalysis

    @classmethod
    def build(cls, project: ProjectContext) -> "FlowProgram":
        symbols = SymbolTable.build(project)
        callgraph = CallGraph.build(symbols)
        rng = build_rng_flow(symbols)
        purity = PurityAnalysis(symbols, callgraph, rng)
        return cls(
            project=project,
            symbols=symbols,
            callgraph=callgraph,
            rng=rng,
            purity=purity,
        )


_CACHE: MutableMapping[ProjectContext, FlowProgram] = WeakKeyDictionary()


def flow_program(project: ProjectContext) -> FlowProgram:
    """The (cached) :class:`FlowProgram` for *project*."""
    program = _CACHE.get(project)
    if program is None:
        program = FlowProgram.build(project)
        _CACHE[project] = program
    return program


__all__ = ["FlowProgram", "flow_program"]
