"""Side-effect summaries per function, propagated over the call graph.

This is the single-threaded analog of a race detector: instead of asking
"who writes this location concurrently", it asks "who writes this
location *from a context that must be read-only*".  Two contexts in this
codebase carry that contract:

* an :class:`~repro.policies.base.AllocationPolicy` decision — ``select``
  may read everything the :class:`~repro.model.view.SystemView` offers
  and mutate *its own* policy state, but never the view, the system, or
  the simulator behind it;
* a telemetry :class:`~repro.telemetry.bus.EventBus` subscriber — it may
  accumulate into its own collectors but must not feed back into the
  simulation (schedule events, draw randomness, mutate model state).

A summary records, per function: which *roots* it mutates (parameter
positions, with the attribute path that was written), whether it
schedules simulation events, and whether it consumes RNG streams.
Summaries start from direct syntactic effects and are propagated to a
fixpoint over the call graph, mapping callee parameter roots back onto
caller argument expressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.astutils import dotted
from repro.lint.flow.callgraph import CallGraph, CallSite
from repro.lint.flow.dataflow import RngFlow, _is_fetch_call
from repro.lint.flow.symbols import FunctionSymbol, SymbolTable

#: Method names that mutate their receiver in-place.
MUTATOR_METHODS: FrozenSet[str] = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "popleft",
        "appendleft",
        "clear",
        "sort",
        "reverse",
        "add",
        "discard",
        "update",
        "setdefault",
        "difference_update",
        "intersection_update",
        "symmetric_difference_update",
    }
)

#: Simulator entry points that feed events back into the run.
SCHEDULING_METHODS: FrozenSet[str] = frozenset(
    {"schedule", "schedule_at", "launch"}
)

#: Path length cap; guarantees the fixpoint terminates.
_MAX_PATH = 3


@dataclass(frozen=True)
class Mutation:
    """One mutated root: parameter position plus the written path."""

    param: int
    path: Tuple[str, ...]

    def prefixed(self, prefix: Tuple[str, ...], param: int) -> "Mutation":
        combined = (prefix + self.path)[:_MAX_PATH]
        return Mutation(param=param, path=combined)


@dataclass
class Summary:
    """Propagated side effects of one function."""

    mutations: Set[Mutation] = field(default_factory=set)
    schedules: bool = False
    draws: bool = False

    @property
    def is_pure(self) -> bool:
        return not self.mutations and not self.schedules and not self.draws


def _root_of(
    expr: ast.expr, symbol: FunctionSymbol
) -> Optional[Tuple[int, Tuple[str, ...]]]:
    """Map an expression chain to ``(param_index, attr_path)`` if rooted
    at one of the function's positional parameters (``self`` included).

    Subscripts are transparent (``self.xs[i].y`` roots at ``self`` with
    path ``("xs", "y")``); anything rooted at a local or a call result
    returns ``None``.
    """
    path: List[str] = []
    node = expr
    while True:
        if isinstance(node, ast.Attribute):
            path.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if not isinstance(node, ast.Name):
        return None
    index = symbol.param_index(node.id)
    if index is None:
        return None
    return index, tuple(reversed(path))[:_MAX_PATH]


def _direct_summary(symbol: FunctionSymbol, rng: RngFlow) -> Summary:
    summary = Summary()
    streams = rng.per_function.get(symbol.qualname)
    if streams is not None and streams.draws_directly:
        summary.draws = True

    for node in ast.walk(symbol.node):
        # Attribute / subscript assignment: x.a.b = v, x.a[i] = v, x.a += v.
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if isinstance(target, ast.Tuple):
                elements = list(target.elts)
            else:
                elements = [target]
            for element in elements:
                if not isinstance(element, (ast.Attribute, ast.Subscript)):
                    continue
                owner = (
                    element.value
                    if isinstance(element, ast.Attribute)
                    else element.value
                )
                root = _root_of(owner, symbol)
                if root is None:
                    continue
                index, path = root
                written = path
                if isinstance(element, ast.Attribute):
                    written = (path + (element.attr,))[:_MAX_PATH]
                summary.mutations.add(Mutation(param=index, path=written))

        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            # object.__setattr__(x, "a", v) — frozen-dataclass idiom.
            if (
                isinstance(func, ast.Name)
                and func.id == "setattr"
                and node.args
            ):
                root = _root_of(node.args[0], symbol)
                if root is not None:
                    index, path = root
                    summary.mutations.add(Mutation(param=index, path=path))
            continue
        if func.attr in SCHEDULING_METHODS:
            summary.schedules = True
        if func.attr in MUTATOR_METHODS:
            root = _root_of(func.value, symbol)
            if root is not None:
                index, path = root
                summary.mutations.add(Mutation(param=index, path=path))
        chain = dotted(func)
        if chain is not None and chain.endswith(".__setattr__"):
            # object.__setattr__(self, ...) spelled as a method chain.
            if node.args:
                root = _root_of(node.args[0], symbol)
                if root is not None:
                    index, path = root
                    summary.mutations.add(Mutation(param=index, path=path))
    return summary


class PurityAnalysis:
    """Fixpoint side-effect summaries for every function in the program."""

    def __init__(
        self, table: SymbolTable, graph: CallGraph, rng: RngFlow
    ) -> None:
        self.table = table
        self.graph = graph
        self.summaries: Dict[str, Summary] = {}
        for symbol in table.iter_functions():
            self.summaries[symbol.qualname] = _direct_summary(symbol, rng)
        self._propagate()

    # ------------------------------------------------------------------
    # Fixpoint propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> None:
        changed = True
        # Path truncation bounds the lattice, so this terminates; the
        # iteration cap is a belt-and-braces guard for adversarial input.
        iterations = 0
        cap = max(8, 2 * len(self.summaries))
        while changed and iterations < cap:
            changed = False
            iterations += 1
            for qualname in sorted(self.summaries):
                if self._update_one(qualname):
                    changed = True

    def _update_one(self, qualname: str) -> bool:
        symbol = self.table.functions.get(qualname)
        if symbol is None:
            return False
        summary = self.summaries[qualname]
        changed = False
        for site in self.graph.sites.get(qualname, ()):
            # Registry stream fetches (``.stream(name)`` / ``.rng(name)``)
            # are read-only by contract; the registry's internal cache
            # insert must not surface as a mutation of the fetch chain.
            if _is_fetch_call(site.node):
                continue
            for callee_name in site.callees:
                callee_summary = self.summaries.get(callee_name)
                callee_symbol = self.table.functions.get(callee_name)
                if callee_summary is None or callee_symbol is None:
                    continue
                if callee_summary.schedules and not summary.schedules:
                    summary.schedules = True
                    changed = True
                if callee_summary.draws and not summary.draws:
                    summary.draws = True
                    changed = True
                # Snapshot: for recursive calls, callee and caller share
                # the summary object being extended.
                for mutation in tuple(callee_summary.mutations):
                    mapped = self._map_mutation(
                        mutation, site, symbol, callee_symbol
                    )
                    if mapped is not None and mapped not in summary.mutations:
                        summary.mutations.add(mapped)
                        changed = True
        return changed

    def _map_mutation(
        self,
        mutation: Mutation,
        site: CallSite,
        caller: FunctionSymbol,
        callee: FunctionSymbol,
    ) -> Optional[Mutation]:
        """Translate a callee-root mutation into the caller's frame."""
        expr = self._argument_expr(mutation.param, site, callee)
        if expr is None:
            return None
        root = _root_of(expr, caller)
        if root is None:
            return None
        index, prefix = root
        return mutation.prefixed(prefix, index)

    @staticmethod
    def _argument_expr(
        param: int, site: CallSite, callee: FunctionSymbol
    ) -> Optional[ast.expr]:
        """The caller expression bound to the callee's parameter *param*."""
        offset = 0
        if site.is_constructor:
            # ``__init__``'s parameter 0 binds a fresh object the caller
            # owns — mutating it is not a side effect on any argument.
            if param == 0:
                return None
            offset = 1
        elif site.is_method_call:
            if param == 0:
                return site.receiver
            offset = 1
        positional = site.node.args
        index = param - offset
        if 0 <= index < len(positional):
            arg = positional[index]
            if isinstance(arg, ast.Starred):
                return None
            return arg
        if param < len(callee.params):
            wanted = callee.params[param]
            for keyword in site.node.keywords:
                if keyword.arg == wanted:
                    return keyword.value
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def summary(self, qualname: str) -> Summary:
        return self.summaries.get(qualname, Summary())

    def mutates_param(
        self, qualname: str, param: int, under: Optional[str] = None
    ) -> List[Mutation]:
        """Mutations of *param*; restricted to paths starting with *under*."""
        found = []
        for mutation in self.summary(qualname).mutations:
            if mutation.param != param:
                continue
            if under is not None and (
                not mutation.path or mutation.path[0] != under
            ):
                continue
            found.append(mutation)
        return sorted(found, key=lambda m: (m.param, m.path))


__all__ = [
    "MUTATOR_METHODS",
    "SCHEDULING_METHODS",
    "Mutation",
    "Summary",
    "PurityAnalysis",
]
