"""The whole-program flow rules, RL013–RL018.

All six are :class:`~repro.lint.base.Rule` subclasses registered in the
ordinary registry, but carry ``flow = True`` so the engine only runs
them under ``repro-lint --flow`` (or when explicitly ``--select``-ed).
Each works off the shared :class:`~repro.lint.flow.program.FlowProgram`
bundle; none imports or executes linted code.

The rules encode the three replay invariants the per-file rules cannot
see across module boundaries:

* **stream discipline** (RL013–RL015): each named RNG stream has one
  owning call path; RNGs are only created inside the registry; observer
  entry points (``__repr__`` & co.) never reach a draw;
* **context purity** (RL016–RL017): policy decisions and telemetry
  subscribers are read-only toward the simulation;
* **order sensitivity** (RL018): unordered iteration never feeds event
  scheduling or RNG consumption.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.base import ProjectContext, Rule, Violation, register
from repro.lint.flow.callgraph import CallSite
from repro.lint.flow.dataflow import DRAW_METHODS, StreamDraw
from repro.lint.flow.program import FlowProgram, flow_program
from repro.lint.flow.purity import SCHEDULING_METHODS
from repro.lint.flow.symbols import OBSERVER_DUNDERS, FunctionSymbol
from repro.lint.rules import _is_unordered_set_expr, _unwrap_order_preserving

#: The module that owns RNG construction; everything else must go through
#: the registry it exposes.
RNG_REGISTRY_MODULE = "repro.sim.rng"

#: ``random`` entry points that mint or reseed generator state.
RNG_CONSTRUCTORS = frozenset(
    {"random.Random", "random.SystemRandom", "random.seed", "random.setstate"}
)

#: ``self.<attr>`` roots inside a policy that reach shared simulation
#: state rather than private policy scratch space.
POLICY_FORBIDDEN_SELF = frozenset(
    {"system", "sim", "simulator", "model", "sites", "queue"}
)

#: Methods a subscriber must stay pure toward the simulation in.
SUBSCRIBE_METHODS = frozenset({"subscribe", "subscribe_all"})


class FlowRule(Rule):
    """Base for whole-program rules: resolves the shared bundle once."""

    flow = True

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        return self.check_flow(flow_program(project))

    def check_flow(self, program: FlowProgram) -> Iterator[Violation]:
        raise NotImplementedError


def _flow_violation(
    rule: Rule, symbol: FunctionSymbol, node: ast.AST, message: str
) -> Violation:
    return Violation(
        code=rule.code,
        message=message,
        path=str(symbol.ctx.path),
        line=getattr(node, "lineno", symbol.node.lineno),
        column=getattr(node, "col_offset", symbol.node.col_offset),
    )


@register
class StreamSingleOwner(FlowRule):
    """RL013 — each named RNG stream has exactly one owning call path.

    The replay guarantee is compositional *because* streams are
    partitioned by activity: adding a draw in one activity cannot shift
    another activity's sequence.  A stream name consumed from two
    unrelated functions silently couples them — a draw added in one
    perturbs the other.  Route the second consumer through its own named
    stream (or pass the stream object down explicitly from the owner).
    """

    code = "RL013"
    name = "stream-single-owner"
    summary = (
        "each named RNG stream must be drawn from exactly one owning "
        "function (single-owner stream discipline)"
    )

    def check_flow(self, program: FlowProgram) -> Iterator[Violation]:
        by_name: Dict[str, Dict[str, List[StreamDraw]]] = {}
        for qualname in sorted(program.rng.per_function):
            for draw in program.rng.per_function[qualname].draws:
                if draw.name is None:
                    continue
                by_name.setdefault(draw.name, {}).setdefault(
                    qualname, []
                ).append(draw)
        for name in sorted(by_name):
            owners = by_name[name]
            if len(owners) < 2:
                continue
            owner = sorted(owners)[0]
            for qualname in sorted(owners):
                if qualname == owner:
                    continue
                symbol = program.symbols.functions[qualname]
                for draw in owners[qualname]:
                    yield _flow_violation(
                        self,
                        symbol,
                        draw.node,
                        f'RNG stream "{name}" is also drawn from '
                        f"{owner}(); each named stream must have a "
                        "single owning call path — give this consumer "
                        "its own stream name",
                    )


@register
class RegistryOnlyRng(FlowRule):
    """RL014 — generators are minted only inside the stream registry.

    ``random.Random(seed)`` anywhere else creates RNG state invisible to
    the registry: it is not named, not derived from the run seed via the
    stream-derivation hash, and not captured by the replay sanitizer.
    Fetch a named stream (``sim.rng.stream("...")``) or ``spawn`` a
    family instead.
    """

    code = "RL014"
    name = "registry-only-rng"
    summary = (
        "random.Random/SystemRandom/seed/setstate only inside "
        "repro.sim.rng — all other code must fetch named streams"
    )

    def check_flow(self, program: FlowProgram) -> Iterator[Violation]:
        project = program.project
        for module_name in sorted(project.modules):
            if module_name == RNG_REGISTRY_MODULE:
                continue
            ctx = project.modules[module_name]
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = ctx.resolve_imported(node.func)
                if target in RNG_CONSTRUCTORS:
                    yield self.violation(
                        ctx,
                        node,
                        f"{target}() outside the stream registry "
                        f"({RNG_REGISTRY_MODULE}); RNG state created "
                        "here is invisible to seed derivation and "
                        "replay — fetch a named stream instead",
                    )


@register
class ObserverNoDraw(FlowRule):
    """RL015 — observer entry points must never reach an RNG draw.

    ``__repr__``, ``__eq__``, ``__hash__`` & co. run at unpredictable
    times — debugger hovers, log formatting, set membership — so a draw
    reachable from one makes the stream sequence depend on *observation*,
    the exact failure mode named streams exist to prevent.  Reachability
    is computed over the project call graph, so a draw three helpers deep
    is still found.
    """

    code = "RL015"
    name = "observer-entry-no-draw"
    summary = (
        "no RNG draw reachable from observer dunders "
        "(__repr__/__eq__/__hash__/...) — observation must not consume "
        "stream state"
    )

    def check_flow(self, program: FlowProgram) -> Iterator[Violation]:
        for symbol in program.symbols.iter_functions():
            if not symbol.is_method or symbol.name not in OBSERVER_DUNDERS:
                continue
            summary = program.purity.summary(symbol.qualname)
            if summary.draws:
                yield _flow_violation(
                    self,
                    symbol,
                    symbol.node,
                    f"{symbol.name} can reach an RNG draw; observer "
                    "entry points run at unpredictable times and must "
                    "never consume stream state",
                )


def _view_param(symbol: FunctionSymbol) -> Optional[int]:
    """The SystemView parameter of a ``select`` override."""
    index = symbol.param_index("view")
    if index is not None:
        return index
    return 2 if len(symbol.params) >= 3 else None


@register
class PolicyPurity(FlowRule):
    """RL016 — ``AllocationPolicy.select`` is read-only toward the run.

    A policy may keep private state (``self._scan_offset``) — that is
    replayed deterministically with the policy.  What it must never do,
    directly or through any helper, is mutate the :class:`SystemView` it
    was handed, reach through stashed ``self.system``/``self.sim``
    references into shared model state, or schedule events: allocation
    decisions feeding back into the world they observe breaks the
    query/decision separation the paper's policy comparison rests on.
    """

    code = "RL016"
    name = "policy-select-purity"
    summary = (
        "AllocationPolicy.select must not mutate the SystemView, reach "
        "into simulator/model state, or schedule events"
    )

    def check_flow(self, program: FlowProgram) -> Iterator[Violation]:
        for cls in program.symbols.subclasses_of_name("AllocationPolicy"):
            select = cls.methods.get("select")
            if select is None:
                continue
            summary = program.purity.summary(select.qualname)
            view = _view_param(select)
            if view is not None:
                for mutation in program.purity.mutates_param(
                    select.qualname, view
                ):
                    path = ".".join(mutation.path) or "<object>"
                    yield _flow_violation(
                        self,
                        select,
                        select.node,
                        f"select() mutates the SystemView argument "
                        f"(writes view.{path}, possibly via a helper); "
                        "policies must treat the view as read-only",
                    )
            for mutation in program.purity.mutates_param(select.qualname, 0):
                if (
                    mutation.path
                    and mutation.path[0] in POLICY_FORBIDDEN_SELF
                ):
                    path = ".".join(mutation.path)
                    yield _flow_violation(
                        self,
                        select,
                        select.node,
                        f"select() mutates shared simulation state "
                        f"(writes self.{path}, possibly via a helper); "
                        "allocation decisions must not feed back into "
                        "the model",
                    )
            if summary.schedules:
                yield _flow_violation(
                    self,
                    select,
                    select.node,
                    "select() can schedule simulation events (directly "
                    "or via a helper); allocation decisions must not "
                    "inject events into the run",
                )


def _callback_targets(
    program: FlowProgram, caller: FunctionSymbol, callback: ast.expr
) -> List[FunctionSymbol]:
    """Resolve a subscribe-callback expression to function symbols."""
    table = program.symbols
    if isinstance(callback, ast.Attribute):
        value = callback.value
        if (
            isinstance(value, ast.Name)
            and value.id == "self"
            and caller.class_qualname is not None
        ):
            return table.resolve_method(caller.class_qualname, callback.attr)
        return table.methods_by_name.get(callback.attr, [])
    if isinstance(callback, ast.Name):
        local = table.module_function(caller.module, callback.id)
        if local is not None:
            return [local]
        resolved = caller.ctx.imports.get(callback.id)
        if resolved is not None and resolved in table.functions:
            return [table.functions[resolved]]
    return []


@register
class SubscriberPurity(FlowRule):
    """RL017 — telemetry subscribers must not feed back into the run.

    The event bus is an *observation* channel: handlers may accumulate
    into their own collectors, but a handler that schedules events, draws
    from an RNG stream, or mutates the event it was handed turns
    telemetry on/off into a behavioral difference — the telemetry
    zero-overhead invariant (identical metrics with and without
    observation) only holds if every subscriber is pure toward the
    simulation.
    """

    code = "RL017"
    name = "subscriber-purity"
    summary = (
        "EventBus subscribers must not schedule events, draw RNG "
        "streams, or mutate the events they receive"
    )

    def check_flow(self, program: FlowProgram) -> Iterator[Violation]:
        for caller in program.symbols.iter_functions():
            for node in ast.walk(caller.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    not isinstance(func, ast.Attribute)
                    or func.attr not in SUBSCRIBE_METHODS
                    or not node.args
                ):
                    continue
                callback = node.args[-1]
                for target in _callback_targets(program, caller, callback):
                    yield from self._check_handler(
                        program, caller, node, target
                    )

    def _check_handler(
        self,
        program: FlowProgram,
        caller: FunctionSymbol,
        site: ast.Call,
        handler: FunctionSymbol,
    ) -> Iterator[Violation]:
        summary = program.purity.summary(handler.qualname)
        if summary.schedules:
            yield _flow_violation(
                self,
                caller,
                site,
                f"subscriber {handler.name}() can schedule simulation "
                "events (directly or via a helper); telemetry must "
                "observe the run, not steer it",
            )
        if summary.draws:
            yield _flow_violation(
                self,
                caller,
                site,
                f"subscriber {handler.name}() can draw from an RNG "
                "stream; observation must not consume stream state",
            )
        event_param = 1 if handler.is_method else 0
        if len(handler.params) > event_param:
            mutations = program.purity.mutates_param(
                handler.qualname, event_param
            )
            if mutations:
                yield _flow_violation(
                    self,
                    caller,
                    site,
                    f"subscriber {handler.name}() mutates the event it "
                    "receives; events are shared across subscribers and "
                    "must stay immutable",
                )


def _iteration_sites(node: ast.AST) -> Iterator[Tuple[ast.expr, ast.AST]]:
    """``(iterable, owner)`` for loops and comprehension clauses."""
    for child in ast.walk(node):
        if isinstance(child, (ast.For, ast.AsyncFor)):
            yield child.iter, child
        elif isinstance(
            child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for comp in child.generators:
                yield comp.iter, child


@register
class OrderDependentEffects(FlowRule):
    """RL018 — unordered iteration must not drive scheduling or draws.

    RL003 bans set iteration inside the core simulation modules outright.
    This rule closes the cross-module gap: *anywhere* in the tree, a loop
    over an unordered collection whose body schedules events or consumes
    RNG state — possibly through helpers resolved via the call graph —
    makes event order or stream sequences depend on hash/insertion
    history.  Sort the iterable.
    """

    code = "RL018"
    name = "no-order-dependent-effects"
    summary = (
        "loops over unordered set-like collections must not (directly "
        "or via callees) schedule events or draw RNG streams"
    )

    def check_flow(self, program: FlowProgram) -> Iterator[Violation]:
        for symbol in program.symbols.iter_functions():
            sites = program.callgraph.sites.get(symbol.qualname, [])
            for iterable, owner in _iteration_sites(symbol.node):
                unwrapped = _unwrap_order_preserving(iterable, symbol.ctx)
                if not _is_unordered_set_expr(unwrapped, symbol.ctx):
                    continue
                sink = self._find_sink(program, symbol, owner, sites)
                if sink is not None:
                    yield _flow_violation(
                        self,
                        symbol,
                        owner,
                        "iteration over an unordered set "
                        f"{sink}; event order and stream sequences must "
                        "not depend on hash/insertion order — wrap the "
                        "iterable in sorted(...)",
                    )

    def _find_sink(
        self,
        program: FlowProgram,
        symbol: FunctionSymbol,
        owner: ast.AST,
        sites: List[CallSite],
    ) -> Optional[str]:
        body_nodes: Set[int] = {id(n) for n in ast.walk(owner)}
        for node in ast.walk(owner):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in SCHEDULING_METHODS:
                    return "schedules simulation events"
                if func.attr in DRAW_METHODS:
                    return "draws from an RNG stream"
        for site in sites:
            if id(site.node) not in body_nodes:
                continue
            for callee in site.callees:
                summary = program.purity.summary(callee)
                if summary.schedules:
                    return (
                        "calls a function that schedules simulation events"
                    )
                if summary.draws:
                    return "calls a function that draws from an RNG stream"
        return None


__all__ = [
    "RNG_REGISTRY_MODULE",
    "RNG_CONSTRUCTORS",
    "POLICY_FORBIDDEN_SELF",
    "SUBSCRIBE_METHODS",
    "FlowRule",
    "StreamSingleOwner",
    "RegistryOnlyRng",
    "ObserverNoDraw",
    "PolicyPurity",
    "SubscriberPurity",
    "OrderDependentEffects",
]
