"""Project-wide symbol table: functions, methods, classes, hierarchies.

The symbol table is the ground layer of the flow analysis.  It assigns
every function and class a stable *qualified name* — the dotted module
name plus the lexical path (``repro.policies.base.CostBasedPolicy.select``)
— and resolves class bases through each module's import table so that the
hierarchy can be walked across module boundaries without importing
anything.

Nested functions (closures, generators defined inside a function) are
deliberately *not* given their own symbols: their bodies are attributed
to the enclosing function, which keeps reachability sound (if the outer
function is reachable, the closure may run) at the cost of a little
precision.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.lint.base import ModuleContext, ProjectContext

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Dunders that observers (repr/debug/comparison machinery) may call at
#: any time, in any order — they must never consume simulation randomness.
OBSERVER_DUNDERS: Tuple[str, ...] = (
    "__repr__",
    "__str__",
    "__format__",
    "__eq__",
    "__ne__",
    "__lt__",
    "__le__",
    "__gt__",
    "__ge__",
    "__hash__",
    "__len__",
    "__bool__",
)


@dataclass
class FunctionSymbol:
    """One module-level function or method (nested defs are folded in)."""

    qualname: str
    module: str
    name: str
    node: FunctionNode
    ctx: ModuleContext
    class_qualname: Optional[str] = None
    #: Positional parameter names, including ``self`` for methods.
    params: Tuple[str, ...] = ()

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None

    def param_index(self, name: str) -> Optional[int]:
        """Position of parameter *name*, or ``None``."""
        try:
            return self.params.index(name)
        except ValueError:
            return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<fn {self.qualname}>"


@dataclass
class ClassSymbol:
    """One class definition with its resolved base names and methods."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    ctx: ModuleContext
    #: Bases resolved through the import table (dotted names; a base
    #: defined in the same module is qualified with that module).
    base_names: Tuple[str, ...] = ()
    methods: Dict[str, FunctionSymbol] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<class {self.qualname}>"


def _positional_params(node: FunctionNode) -> Tuple[str, ...]:
    args = node.args
    return tuple(a.arg for a in args.posonlyargs) + tuple(a.arg for a in args.args)


class SymbolTable:
    """Every function, method, and class of one lint run, by qualname."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionSymbol] = {}
        self.classes: Dict[str, ClassSymbol] = {}
        #: Method name -> definitions across all classes (sorted by
        #: qualname so downstream analyses iterate deterministically).
        self.methods_by_name: Dict[str, List[FunctionSymbol]] = {}
        #: ``(module, local_name)`` -> module-level function.
        self._module_functions: Dict[Tuple[str, str], FunctionSymbol] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, project: ProjectContext) -> "SymbolTable":
        table = cls()
        for module_name in sorted(project.modules):
            table._index_module(project.modules[module_name])
        for methods in table.methods_by_name.values():
            methods.sort(key=lambda symbol: symbol.qualname)
        return table

    def _index_module(self, ctx: ModuleContext) -> None:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, stmt, class_symbol=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(ctx, stmt)

    def _add_function(
        self,
        ctx: ModuleContext,
        node: FunctionNode,
        class_symbol: Optional[ClassSymbol],
    ) -> FunctionSymbol:
        if class_symbol is None:
            qualname = f"{ctx.module}.{node.name}"
        else:
            qualname = f"{class_symbol.qualname}.{node.name}"
        symbol = FunctionSymbol(
            qualname=qualname,
            module=ctx.module,
            name=node.name,
            node=node,
            ctx=ctx,
            class_qualname=None if class_symbol is None else class_symbol.qualname,
            params=_positional_params(node),
        )
        self.functions[qualname] = symbol
        if class_symbol is None:
            self._module_functions[(ctx.module, node.name)] = symbol
        else:
            class_symbol.methods[node.name] = symbol
            self.methods_by_name.setdefault(node.name, []).append(symbol)
        return symbol

    def _add_class(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        qualname = f"{ctx.module}.{node.name}"
        bases: List[str] = []
        for base in node.bases:
            resolved = ctx.resolve(base)
            if resolved is None:
                continue
            if "." not in resolved:
                # A bare name: either a class in this module or an
                # unresolvable builtin/local; qualify optimistically.
                resolved = f"{ctx.module}.{resolved}"
            bases.append(resolved)
        symbol = ClassSymbol(
            qualname=qualname,
            module=ctx.module,
            name=node.name,
            node=node,
            ctx=ctx,
            base_names=tuple(bases),
        )
        self.classes[qualname] = symbol
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, stmt, class_symbol=symbol)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def module_function(self, module: str, name: str) -> Optional[FunctionSymbol]:
        """The module-level function *name* defined in *module*."""
        return self._module_functions.get((module, name))

    def ancestors(self, class_qualname: str) -> List[ClassSymbol]:
        """Known base classes of *class_qualname*, transitively (BFS order)."""
        seen = {class_qualname}
        queue = [class_qualname]
        found: List[ClassSymbol] = []
        while queue:
            symbol = self.classes.get(queue.pop(0))
            if symbol is None:
                continue
            for base in symbol.base_names:
                if base in seen:
                    continue
                seen.add(base)
                base_symbol = self.classes.get(base)
                if base_symbol is not None:
                    found.append(base_symbol)
                    queue.append(base)
        return found

    def descendants(self, class_qualname: str) -> List[ClassSymbol]:
        """Known subclasses of *class_qualname*, transitively (sorted)."""
        result: List[ClassSymbol] = []
        for qualname in sorted(self.classes):
            if qualname == class_qualname:
                continue
            ancestors = {a.qualname for a in self.ancestors(qualname)}
            if class_qualname in ancestors:
                result.append(self.classes[qualname])
        return result

    def subclasses_of_name(self, base_name: str) -> List[ClassSymbol]:
        """Classes whose resolved base chain reaches a base called *base_name*.

        Matches on the final dotted component, so fixture trees (where the
        real ``repro.policies.base`` module is absent and the base resolves
        only through the import table) still participate.  Classes *named*
        ``base_name`` themselves are included.
        """
        matches: List[ClassSymbol] = []
        for qualname in sorted(self.classes):
            symbol = self.classes[qualname]
            chain = [symbol.qualname]
            chain.extend(a.qualname for a in self.ancestors(qualname))
            # Unresolved bases (no ClassSymbol) still matter: a fixture
            # subclassing an imported-but-unlinted AllocationPolicy has
            # the base only as a dotted name.
            frontier = [symbol] + self.ancestors(qualname)
            for cls_symbol in frontier:
                chain.extend(cls_symbol.base_names)
            if any(name.rsplit(".", 1)[-1] == base_name for name in chain):
                matches.append(symbol)
        return matches

    def resolve_method(
        self, class_qualname: str, method_name: str
    ) -> List[FunctionSymbol]:
        """Possible targets of ``self.method_name()`` inside *class_qualname*.

        Virtual dispatch: the method as defined on the class itself, on any
        ancestor, and on any descendant override (a base-class method
        calling ``self.hook()`` may land in a subclass).
        """
        targets: List[FunctionSymbol] = []
        seen = set()
        own = self.classes.get(class_qualname)
        candidates: List[ClassSymbol] = []
        if own is not None:
            candidates.append(own)
        candidates.extend(self.ancestors(class_qualname))
        candidates.extend(self.descendants(class_qualname))
        for cls_symbol in candidates:
            method = cls_symbol.methods.get(method_name)
            if method is not None and method.qualname not in seen:
                seen.add(method.qualname)
                targets.append(method)
        return targets

    def iter_functions(self) -> Iterator[FunctionSymbol]:
        """All known functions, sorted by qualname (deterministic)."""
        for qualname in sorted(self.functions):
            yield self.functions[qualname]


__all__ = [
    "OBSERVER_DUNDERS",
    "FunctionNode",
    "FunctionSymbol",
    "ClassSymbol",
    "SymbolTable",
]
