"""Rendering of lint results: human text, machine JSON, and SARIF.

The JSON document is schema-versioned (``"version": 1``) and its key
order is stable (``sort_keys``), so CI jobs and tools can parse and diff
it::

    {
      "version": 1,
      "files_checked": 74,
      "violation_count": 2,
      "errors": [],
      "violations": [
        {"code": "RL004", "column": 15, "line": 81,
         "message": "...", "path": "src/repro/experiments/common.py"}
      ]
    }
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List

from repro.lint.base import iter_rules
from repro.lint.engine import LintResult

#: Schema version of the JSON report.
JSON_VERSION = 1

#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """One ``path:line:col: CODE message`` line per violation + summary."""
    lines = [error for error in result.errors]
    lines.extend(violation.render() for violation in result.violations)
    count = len(result.violations)
    noun = "violation" if count == 1 else "violations"
    summary = f"{count} {noun} in {result.files_checked} files checked"
    if result.errors:
        summary += f" ({len(result.errors)} files could not be analyzed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The schema-versioned JSON report (see module docstring)."""
    document = {
        "version": JSON_VERSION,
        "files_checked": result.files_checked,
        "violation_count": len(result.violations),
        "errors": list(result.errors),
        "violations": [violation.to_dict() for violation in result.violations],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _sarif_uri(path: str) -> str:
    """A ``/``-separated, preferably relative artifact URI for *path*."""
    candidate = pathlib.Path(path)
    if candidate.is_absolute():
        try:
            candidate = candidate.relative_to(pathlib.Path.cwd())
        except ValueError:
            pass
    return candidate.as_posix()


def render_sarif(result: LintResult) -> str:
    """A SARIF 2.1.0 log of the run, for code-scanning UIs.

    Every registered rule is listed in the driver (so suppressed-to-zero
    runs still document the rule set); findings become ``results`` with
    1-based line/column regions; per-file analysis errors become
    tool-execution notifications on the invocation.
    """
    rules: List[Dict[str, Any]] = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in iter_rules()
    ]
    results: List[Dict[str, Any]] = [
        {
            "ruleId": violation.code,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _sarif_uri(violation.path)},
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.column + 1,
                        },
                    }
                }
            ],
        }
        for violation in result.violations
    ]
    notifications: List[Dict[str, Any]] = [
        {"level": "error", "message": {"text": error}}
        for error in result.errors
    ]
    document: Dict[str, Any] = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "docs/linting.md",
                        "rules": rules,
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not result.errors,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` table: code, name, scope, and summary."""
    lines = []
    for rule in iter_rules():
        scope = ", ".join(rule.scope)
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"       scope: {scope}")
        lines.append(f"       {rule.summary}")
    return "\n".join(lines)


__all__ = [
    "JSON_VERSION",
    "SARIF_VERSION",
    "render_text",
    "render_json",
    "render_sarif",
    "render_rule_list",
]
