"""Rendering of lint results: human-readable text and machine JSON.

The JSON document is schema-versioned (``"version": 1``) and its key
order is stable (``sort_keys``), so CI jobs and tools can parse and diff
it::

    {
      "version": 1,
      "files_checked": 74,
      "violation_count": 2,
      "errors": [],
      "violations": [
        {"code": "RL004", "column": 15, "line": 81,
         "message": "...", "path": "src/repro/experiments/common.py"}
      ]
    }
"""

from __future__ import annotations

import json

from repro.lint.base import iter_rules
from repro.lint.engine import LintResult

#: Schema version of the JSON report.
JSON_VERSION = 1


def render_text(result: LintResult) -> str:
    """One ``path:line:col: CODE message`` line per violation + summary."""
    lines = [error for error in result.errors]
    lines.extend(violation.render() for violation in result.violations)
    count = len(result.violations)
    noun = "violation" if count == 1 else "violations"
    summary = f"{count} {noun} in {result.files_checked} files checked"
    if result.errors:
        summary += f" ({len(result.errors)} files could not be analyzed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The schema-versioned JSON report (see module docstring)."""
    document = {
        "version": JSON_VERSION,
        "files_checked": result.files_checked,
        "violation_count": len(result.violations),
        "errors": list(result.errors),
        "violations": [violation.to_dict() for violation in result.violations],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """The ``--list-rules`` table: code, name, scope, and summary."""
    lines = []
    for rule in iter_rules():
        scope = ", ".join(rule.scope)
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"       scope: {scope}")
        lines.append(f"       {rule.summary}")
    return "\n".join(lines)


__all__ = ["JSON_VERSION", "render_text", "render_json", "render_rule_list"]
