"""The determinism & simulation-invariant rules (RL001–RL012).

Each rule encodes one invariant the reproduction depends on.  RL001 and
RL004 directly guard the bit-identical parallel/cached-run guarantee from
PR 1; the others close the remaining nondeterminism channels (wall-clock
time, unordered iteration, hidden environment inputs, swallowed engine
errors) and keep the content-addressed cache key complete (RL006).

Rules are pure AST analyses — nothing here imports or executes the code
under inspection.  See ``docs/linting.md`` for the full rationale of every
rule and the suppression syntax.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.astutils import (
    is_classvar_annotation,
    is_dataclass_decorator,
    iteration_sites,
)
from repro.lint.base import (
    ModuleContext,
    ProjectContext,
    Rule,
    Violation,
    register,
)

#: Modules that run *inside* simulated time: they may consume only the
#: simulation clock and named RNG streams, never ambient host state.
CORE_SIM_SCOPE: Tuple[str, ...] = (
    "repro.sim",
    "repro.model",
    "repro.policies",
    "repro.queueing",
    "repro.workloads",
)

#: Modules whose job is aggregating floating-point results across
#: replications/batches — where ``sum()`` order-dependence breaks the
#: permutation-invariance the parallel runner relies on.
AGGREGATION_SCOPE: Tuple[str, ...] = (
    "repro.sim.stats",
    "repro.sim.monitor",
    "repro.model.metrics",
    "repro.experiments.common",
    "repro.experiments.parallel",
)

#: Modules holding the dataclasses that parameterize or summarize runs;
#: every field must be covered by ``repro.model.serialization`` so the
#: content-addressed cache key (and archived results) stay complete.
SERIALIZED_DATACLASS_SCOPE: Tuple[str, ...] = (
    "repro.model.config",
    "repro.model.metrics",
    "repro.sim.stats",
    "repro.experiments.common",
    "repro.workloads.arrivals",
    "repro.workloads.spec",
    "repro.ablation.spec",
    "repro.telemetry.tracing.spans",
    "repro.telemetry.tracing.decisions",
)

SERIALIZATION_MODULE = "repro.model.serialization"

#: Modules whose string constants count as serialized field coverage.
#: Study specs serialize themselves (``repro.ablation.spec`` holds both
#: the dataclasses and their JSON round-trip), and the tracing exporters
#: own the span/decision-record round-trip, so all three feed RL006.
SERIALIZATION_MODULES: Tuple[str, ...] = (
    SERIALIZATION_MODULE,
    "repro.ablation.spec",
    "repro.telemetry.tracing.export",
)


@register
class GlobalRandomState(Rule):
    """RL001 — samplers must draw from named streams, not global RNG state.

    ``random.random()``/``random.seed()``/``numpy.random.*`` module
    functions share hidden global state: any new call site perturbs every
    subsequent draw, silently changing results and breaking common random
    numbers across policies.  All sampling must go through a
    ``random.Random`` stream obtained from ``sim.rng.stream(name)``.
    """

    code = "RL001"
    name = "no-global-rng"
    summary = (
        "no global RNG state (random.* / numpy.random.* module functions); "
        "sample via sim.rng.stream(name)"
    )
    scope = ("repro",)

    _ALLOWED: FrozenSet[str] = frozenset(
        {
            "random.Random",  # constructing an owned stream is the fix
            "numpy.random.Generator",
            "numpy.random.default_rng",
            "numpy.random.SeedSequence",
        }
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_imported(node.func)
            if target is None or target in self._ALLOWED:
                continue
            if target.startswith("numpy.random."):
                yield self.violation(
                    ctx,
                    node,
                    f"call to {target} uses numpy's global/module RNG; "
                    "pass an explicit generator derived from a named "
                    "sim.rng stream",
                )
            elif target.startswith("random.") and target.count(".") == 1:
                yield self.violation(
                    ctx,
                    node,
                    f"call to {target} uses the process-global RNG; draw "
                    "from a named stream (sim.rng.stream(name)) instead",
                )


@register
class WallClock(Rule):
    """RL002 — simulated components must not read the wall clock.

    Wall-clock reads make runs time-of-day dependent and are never
    reproducible.  Core simulation code measures *simulated* time
    (``sim.now``); host timing is allowed only in the experiments layer's
    stderr diagnostics.
    """

    code = "RL002"
    name = "no-wall-clock"
    summary = (
        "no wall-clock reads (time.time/perf_counter/datetime.now) in "
        "sim/model/policies/queueing; use sim.now"
    )
    scope = CORE_SIM_SCOPE

    _CLOCKS: FrozenSet[str] = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "time.clock_gettime",
            "datetime.datetime.now",
            "datetime.datetime.today",
            "datetime.datetime.utcnow",
            "datetime.date.today",
        }
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_imported(node.func)
            if target in self._CLOCKS:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock read {target}() in core simulation code; "
                    "use the simulated clock (sim.now) — host timing "
                    "belongs in repro.experiments only",
                )


def _is_unordered_set_expr(node: ast.expr, ctx: ModuleContext) -> bool:
    """Whether *node* evaluates to an unordered set-like collection."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = ctx.resolve(node.func)
        if target in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return True
    return False


def _unwrap_order_preserving(node: ast.expr, ctx: ModuleContext) -> ast.expr:
    """Strip list/tuple/enumerate/reversed wrappers (they preserve order)."""
    while isinstance(node, ast.Call) and node.args:
        target = ctx.resolve(node.func)
        if target in ("list", "tuple", "enumerate", "reversed", "iter"):
            node = node.args[0]
        else:
            break
    return node


@register
class UnorderedIteration(Rule):
    """RL003 — never iterate a set in event-ordering/aggregation code.

    Set iteration order depends on insertion history and hash seeds of
    the *values*; iterating one while scheduling events or accumulating
    floats makes run output depend on incidental program history.  Wrap
    the iterable in ``sorted(...)`` to fix (or suppress where order is
    provably immaterial).
    """

    code = "RL003"
    name = "no-unordered-iteration"
    summary = (
        "no iteration over set/frozenset (or set-producing methods) in "
        "core sim code without an explicit sorted(...)"
    )
    scope = CORE_SIM_SCOPE

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        for iterable, owner in iteration_sites(ctx.tree):
            unwrapped = _unwrap_order_preserving(iterable, ctx)
            if _is_unordered_set_expr(unwrapped, ctx):
                yield self.violation(
                    ctx,
                    owner,
                    "iteration over an unordered set in core simulation "
                    "code; wrap the iterable in sorted(...) to fix the "
                    "order",
                )


@register
class FloatSum(Rule):
    """RL004 — replication/result aggregation must use ``math.fsum``.

    Built-in ``sum()`` accumulates rounding error in argument order, so
    reassembling parallel results in a different order changes the last
    bits of every average — exactly the bug PR 1 fixed.  ``math.fsum`` is
    correctly rounded and therefore permutation invariant.  Integer-only
    sums may carry a documented suppression pragma.
    """

    code = "RL004"
    name = "fsum-aggregation"
    summary = (
        "aggregation modules must use math.fsum, not sum(), on floats "
        "(permutation-invariant averaging)"
    )
    scope = AGGREGATION_SCOPE

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.resolve(node.func) == "sum":
                yield self.violation(
                    ctx,
                    node,
                    "sum() in an aggregation module is order-dependent on "
                    "floats; use math.fsum (or suppress with a pragma if "
                    "the operands are provably integers)",
                )


@register
class MutableDefault(Rule):
    """RL005 — no mutable default arguments.

    A mutable default is shared across *all* calls, so state leaks from
    one simulation run into the next — a classic source of
    "first run differs from second run" irreproducibility.
    """

    code = "RL005"
    name = "no-mutable-default"
    summary = "no mutable default arguments (shared state leaks across runs)"
    scope = ("repro",)

    _MUTABLE_CALLS: FrozenSet[str] = frozenset(
        {
            "list",
            "dict",
            "set",
            "bytearray",
            "collections.defaultdict",
            "collections.deque",
            "collections.OrderedDict",
            "collections.Counter",
        }
    )

    def _is_mutable(self, node: ast.expr, ctx: ModuleContext) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call):
            return ctx.resolve(node.func) in self._MUTABLE_CALLS
        return False

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults: List[Optional[ast.expr]] = list(node.args.defaults)
            defaults.extend(node.args.kw_defaults)
            for default in defaults:
                if default is not None and self._is_mutable(default, ctx):
                    yield self.violation(
                        ctx,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None (or use dataclasses.field) and "
                        "construct inside the function",
                    )


@register
class SerializationCoverage(Rule):
    """RL006 — every config/results dataclass field must be serialized.

    The content-addressed result cache hashes the serialized config; a
    dataclass field that ``repro.model.serialization`` does not mention is
    invisible to the cache key, so two *different* runs could collide on
    one cache entry.  This cross-module check requires every field of the
    dataclasses in the config/results modules to appear as a string key
    in the serialization module.
    """

    code = "RL006"
    name = "serialization-coverage"
    summary = (
        "every dataclass field in config/results modules must appear in "
        "a serialization module (cache-key completeness)"
    )
    scope = SERIALIZED_DATACLASS_SCOPE

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        modules = [
            ctx
            for ctx in (project.get(name) for name in SERIALIZATION_MODULES)
            if ctx is not None
        ]
        if not modules:
            # Partial run (single file / fixture tree without any
            # serialization module): the cross-module check cannot apply.
            return
        keys: Set[str] = {
            node.value
            for ctx in modules
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Constant) and isinstance(node.value, str)
        }
        for module_name in SERIALIZED_DATACLASS_SCOPE:
            ctx = project.get(module_name)
            if ctx is None:
                continue
            yield from self._check_dataclasses(ctx, keys)

    def _check_dataclasses(
        self, ctx: ModuleContext, keys: Set[str]
    ) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                is_dataclass_decorator(dec, ctx.imports)
                for dec in node.decorator_list
            ):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                if not isinstance(stmt.target, ast.Name):
                    continue
                field_name = stmt.target.id
                if field_name.startswith("_"):
                    continue
                if is_classvar_annotation(stmt.annotation, ctx.imports):
                    continue
                if field_name not in keys:
                    yield self.violation(
                        ctx,
                        stmt,
                        f"dataclass field {node.name}.{field_name} is not "
                        f"mentioned in any of {SERIALIZATION_MODULES}; "
                        "serialize it (and bump the format version) or "
                        "the cache key is incomplete",
                    )


@register
class EnvironmentRead(Rule):
    """RL007 — core simulation paths must not read ambient host state.

    ``os.environ``/``getpass``/``platform`` reads make simulation output
    depend on *which machine* (or shell) ran it.  All host configuration
    enters through the experiments layer and is passed down explicitly.
    """

    code = "RL007"
    name = "no-environment-reads"
    summary = (
        "no os.environ/getpass/platform reads in sim/model/policies/"
        "queueing; pass configuration explicitly"
    )
    scope = CORE_SIM_SCOPE

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                target = ctx.resolve_imported(node.func)
                if target is not None and (
                    target in ("os.getenv", "os.getlogin", "os.uname")
                    or target.startswith("getpass.")
                    or target.startswith("platform.")
                ):
                    location = (node.lineno, node.col_offset)
                    if location not in seen:
                        seen.add(location)
                        yield self.violation(
                            ctx,
                            node,
                            f"host-environment read {target}() in core "
                            "simulation code; results must not depend on "
                            "the machine or shell",
                        )
            elif isinstance(node, (ast.Attribute, ast.Name)):
                if ctx.resolve_imported(node) == "os.environ":
                    location = (node.lineno, node.col_offset)
                    if location not in seen:
                        seen.add(location)
                        yield self.violation(
                            ctx,
                            node,
                            "os.environ access in core simulation code; "
                            "pass configuration in explicitly",
                        )


@register
class SwallowedException(Rule):
    """RL008 — no bare ``except:`` and no silently swallowed engine errors.

    A bare ``except:`` catches ``KeyboardInterrupt``/``SystemExit`` and
    hides real failures; an ``except ...: pass`` inside the simulation
    kernel turns scheduling bugs into silently-wrong results — the worst
    possible failure mode for a reproduction.
    """

    code = "RL008"
    name = "no-swallowed-exceptions"
    summary = (
        "no bare except: anywhere; no except-pass handlers inside the "
        "simulation kernel (repro.sim)"
    )
    scope = ("repro",)

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or `...`
            return False
        return True

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        in_kernel = ctx.module == "repro.sim" or ctx.module.startswith("repro.sim.")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare except: catches KeyboardInterrupt/SystemExit and "
                    "hides failures; catch a specific exception type",
                )
            elif in_kernel and self._swallows(node):
                yield self.violation(
                    ctx,
                    node,
                    "exception swallowed (except ...: pass) inside the "
                    "simulation kernel; handle it or let it propagate — "
                    "silent errors produce silently-wrong results",
                )


@register
class PrintInCore(Rule):
    """RL009 — no ``print()`` in core simulation code.

    Model code communicates through results objects and monitors; stray
    prints interleave nondeterministically under the process-pool runner
    and corrupt the byte-identical CLI output the cache smoke test
    diffs.  User-facing output belongs in ``repro.experiments``.
    """

    code = "RL009"
    name = "no-print-in-core"
    summary = (
        "no print() in sim/model/policies/queueing; return results or use "
        "the trace hook"
    )
    scope = CORE_SIM_SCOPE

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and ctx.resolve(node.func) == "print":
                yield self.violation(
                    ctx,
                    node,
                    "print() in core simulation code; return data or use "
                    "the sim trace hook (output belongs in "
                    "repro.experiments)",
                )


@register
class FilesystemOrder(Rule):
    """RL010 — directory listings must be sorted before iteration.

    ``os.listdir``/``Path.glob``/``iterdir`` order is filesystem- and
    OS-dependent; iterating it unsorted makes batch composition (and
    therefore output ordering) machine-dependent.  Wrap in
    ``sorted(...)``.
    """

    code = "RL010"
    name = "sorted-directory-listing"
    summary = (
        "no iteration over os.listdir/scandir/glob/iterdir results "
        "without sorted(...) (filesystem order is machine-dependent)"
    )
    scope = ("repro",)

    _LISTING_CALLS: FrozenSet[str] = frozenset(
        {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
    )
    _LISTING_METHODS: FrozenSet[str] = frozenset({"iterdir", "glob", "rglob"})

    def _is_listing(self, node: ast.expr, ctx: ModuleContext) -> bool:
        if not isinstance(node, ast.Call):
            return False
        target = ctx.resolve_imported(node.func)
        if target in self._LISTING_CALLS:
            return True
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self._LISTING_METHODS
        )

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        for iterable, owner in iteration_sites(ctx.tree):
            unwrapped = _unwrap_order_preserving(iterable, ctx)
            if self._is_listing(unwrapped, ctx):
                yield self.violation(
                    ctx,
                    owner,
                    "iteration over a directory listing in filesystem "
                    "order; wrap it in sorted(...) so behaviour is "
                    "machine-independent",
                )


@register
class FaultStreamDiscipline(Rule):
    """RL011 — fault schedules must draw from named ``sim.rng`` streams.

    The chaos-replay guarantee — the same ``(seed, plan)`` replays
    byte-identically, including across the parallel runner — holds only
    because every draw the fault layer makes comes from a named stream
    (``faults.outage{i}.s{site}``, ``faults.net``) derived from the run's
    master seed.  An ad-hoc ``random.Random(...)`` (however it is
    seeded), a ``.seed(...)`` call, or any numpy randomness inside
    ``repro.faults`` bypasses that derivation: the schedule stops being a
    pure function of ``(seed, plan)`` and starts perturbing — or being
    perturbed by — workload streams.
    """

    code = "RL011"
    name = "fault-stream-discipline"
    summary = (
        "fault-schedule randomness must come from named sim.rng streams; "
        "no random.Random()/seed()/numpy randomness in repro.faults"
    )
    scope = ("repro.faults",)

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve_imported(node.func)
            if target == "random.Random":
                yield self.violation(
                    ctx,
                    node,
                    "ad-hoc random.Random(...) in the fault layer; derive "
                    "the stream from sim.rng.stream('faults....') so the "
                    "schedule is a pure function of (seed, plan)",
                )
            elif target is not None and target.startswith("numpy.random"):
                yield self.violation(
                    ctx,
                    node,
                    f"numpy randomness ({target}) in the fault layer; use "
                    "a named sim.rng stream",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "seed"
            ):
                yield self.violation(
                    ctx,
                    node,
                    "re-seeding an RNG in the fault layer; named streams "
                    "are already seeded deterministically from the run's "
                    "master seed",
                )


@register
class EventListEncapsulation(Rule):
    """RL012 — the future-event list has exactly one implementation home.

    The kernel's replay guarantee rests on a single total order —
    ``(time, priority, seq)`` with lazy deletion — whose invariants live
    entirely in ``repro.sim.events`` (:class:`EventQueue`,
    :class:`CalendarQueue`, and the :class:`MinHeap` helper resources
    use).  A stray ``import heapq`` or a reach into the queues' private
    structures (``_heap``, ``_buckets``, ``_keys``, ``_free``) creates a
    second place where ordering or liveness can drift — exactly the kind
    of silent divergence the golden-trace suite exists to catch, except
    at a call site the suite may not cover.  Everything else goes through
    the queue's public API (``push``/``rent``/``cancel``/``pop_due``).
    """

    code = "RL012"
    name = "event-list-encapsulation"
    summary = (
        "no heapq import or event-queue private-structure access "
        "(_heap/_buckets/_keys/_free) outside repro.sim.events; use the "
        "EventQueue/CalendarQueue/MinHeap public API"
    )
    scope = ("repro",)

    _HOME = "repro.sim.events"
    _PRIVATE_ATTRS: FrozenSet[str] = frozenset(
        {"_heap", "_buckets", "_keys", "_free"}
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        if ctx.module == self._HOME:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "heapq" or alias.name.startswith("heapq."):
                        yield self.violation(
                            ctx,
                            node,
                            "import of heapq outside repro.sim.events; the "
                            "future-event list's ordering invariants have "
                            "one home — use EventQueue/CalendarQueue/"
                            "MinHeap from repro.sim.events",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "heapq" or (
                    node.module or ""
                ).startswith("heapq."):
                    yield self.violation(
                        ctx,
                        node,
                        "import from heapq outside repro.sim.events; use "
                        "the EventQueue/CalendarQueue/MinHeap public API",
                    )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr in self._PRIVATE_ATTRS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"access to event-queue private structure "
                    f"{node.attr!r} outside repro.sim.events; go through "
                    "push/rent/cancel/pop_due/peek_time instead",
                )


@register
class GuardedEmit(Rule):
    """RL019 — hot-path event emissions must be guarded.

    The telemetry bus's zero-cost-when-disabled property rests on the
    *guarded emit* idiom: every ``bus.emit(...)`` in kernel/model code
    sits behind a ``wants``/``wants_type``/``trace_wanted``/``active``
    test so a telemetry-free run never constructs an event object.  An
    unguarded emit silently re-introduces per-event allocation on the
    hot path — exactly the overhead the disabled-telemetry benchmark
    gate exists to keep out, except at a call site the benchmark's
    scenario may not cover.

    Recognized guard shapes (all appear in the codebase):

    * an ancestor ``if`` whose test mentions a guard attribute — either
      branch, so the engine's tracing loop (the ``else`` of
      ``if not bus.trace_wanted:``) counts;
    * a *preceding* early-exit guard in the same statement suite
      (``if ... not bus.wants(...): return`` — the
      ``LoadBoard._announce`` shape);
    * calls through a local alias (``emit = bus.emit``) inherit the
      same requirements.
    """

    code = "RL019"
    name = "guarded-emit"
    summary = (
        "bus.emit in kernel/model hot paths must sit behind a "
        "wants()/wants_type()/trace_wanted/active guard so disabled "
        "telemetry constructs no event objects"
    )
    scope = ("repro.sim", "repro.model")

    _GUARD_NAMES: FrozenSet[str] = frozenset(
        {"wants", "wants_type", "trace_wanted", "active"}
    )

    def _mentions_guard(self, test: ast.expr) -> bool:
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute) and node.attr in self._GUARD_NAMES:
                return True
            if isinstance(node, ast.Name) and node.id in self._GUARD_NAMES:
                return True
        return False

    @staticmethod
    def _is_early_exit(body: List[ast.stmt]) -> bool:
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
        )

    @staticmethod
    def _emit_aliases(func: ast.AST) -> Set[str]:
        """Local names bound to a ``<bus>.emit`` bound method."""
        aliases: Set[str] = set()
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if isinstance(value, ast.Attribute) and value.attr == "emit":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases

    def check_module(self, ctx: ModuleContext) -> Iterator[Violation]:
        # ast.walk reaches nested defs on its own, so _check_suite stops
        # at function boundaries instead of recursing into them — each
        # function is processed exactly once, with its own alias set.
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                aliases = self._emit_aliases(node)
                yield from self._check_suite(ctx, node.body, aliases, False)

    def _check_suite(
        self,
        ctx: ModuleContext,
        suite: List[ast.stmt],
        aliases: Set[str],
        guarded: bool,
    ) -> Iterator[Violation]:
        suite_guarded = guarded
        for stmt in suite:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # processed by check_module's walk
            if isinstance(stmt, ast.If):
                branch_guarded = suite_guarded or self._mentions_guard(
                    stmt.test
                )
                if not suite_guarded:
                    yield from self._check_exprs(ctx, [stmt.test], aliases)
                for branch in (stmt.body, stmt.orelse):
                    yield from self._check_suite(
                        ctx, branch, aliases, branch_guarded
                    )
                if self._mentions_guard(stmt.test) and self._is_early_exit(
                    stmt.body
                ):
                    # `if not wants: return` guards the rest of the suite.
                    suite_guarded = True
                continue
            if not suite_guarded:
                yield from self._check_exprs(
                    ctx, self._own_exprs(stmt), aliases
                )
            for child_suite in self._child_suites(stmt):
                yield from self._check_suite(
                    ctx, child_suite, aliases, suite_guarded
                )

    @staticmethod
    def _child_suites(stmt: ast.stmt) -> List[List[ast.stmt]]:
        suites: List[List[ast.stmt]] = []
        for field in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field, None)
            if isinstance(value, list) and value and isinstance(
                value[0], ast.stmt
            ):
                suites.append(value)
        for handler in getattr(stmt, "handlers", []):
            suites.append(handler.body)
        return suites

    @staticmethod
    def _own_exprs(stmt: ast.stmt) -> List[ast.expr]:
        """The statement's expressions, excluding nested statement suites."""
        exprs: List[ast.expr] = []
        stack: List[object] = [value for _, value in ast.iter_fields(stmt)]
        while stack:
            value = stack.pop()
            if isinstance(value, list):
                stack.extend(value)
            elif isinstance(value, ast.stmt):
                continue  # a child suite; handled by _check_suite
            elif isinstance(value, ast.expr):
                exprs.append(value)
            elif isinstance(value, ast.AST):
                stack.extend(child for _, child in ast.iter_fields(value))
        return exprs

    def _check_exprs(
        self, ctx: ModuleContext, exprs: List[ast.expr], aliases: Set[str]
    ) -> Iterator[Violation]:
        for expr in exprs:
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                is_emit = (
                    isinstance(func, ast.Attribute) and func.attr == "emit"
                ) or (isinstance(func, ast.Name) and func.id in aliases)
                if is_emit:
                    yield self.violation(
                        ctx,
                        node,
                        "unguarded bus.emit on a kernel/model hot path; "
                        "wrap it in `if bus.active and bus.wants(Type):` "
                        "(or wants_type for opt-in events) so disabled "
                        "telemetry constructs nothing",
                    )


__all__ = [
    "CORE_SIM_SCOPE",
    "AGGREGATION_SCOPE",
    "SERIALIZED_DATACLASS_SCOPE",
    "SERIALIZATION_MODULE",
    "SERIALIZATION_MODULES",
    "GlobalRandomState",
    "WallClock",
    "UnorderedIteration",
    "FloatSum",
    "MutableDefault",
    "SerializationCoverage",
    "EnvironmentRead",
    "SwallowedException",
    "PrintInCore",
    "FilesystemOrder",
    "FaultStreamDiscipline",
    "EventListEncapsulation",
    "GuardedEmit",
]
