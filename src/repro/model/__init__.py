"""The distributed database system model (the paper's §2).

Key entry points:

* :func:`paper_defaults` — Table 7's parameter settings.
* :class:`DistributedDatabase` — the assembled system; ``run()`` it.
* :class:`SystemConfig` and friends — declarative configuration.
"""

from repro.model.config import (
    DISK_PER_DISK,
    DISK_SHARED,
    ConfigError,
    NetworkSpec,
    QueryClassSpec,
    SiteSpec,
    SystemConfig,
    paper_classes,
    paper_defaults,
)
from repro.model.balance import BalanceMonitor, BalanceSummary
from repro.model.loadboard import FrozenLoadView, LoadBoard, LoadView
from repro.model.metrics import MetricsCollector, SystemResults, summarize
from repro.model.query import Query, make_query
from repro.model.serialization import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.model.ring import Message, TokenRing
from repro.model.site import DBSite
from repro.model.subnet import (
    SUBNET_MESH,
    SUBNET_RING,
    PointToPointNetwork,
    Subnet,
    build_subnet,
)
from repro.model.system import DistributedDatabase
from repro.model.workload import WorkloadGenerator

__all__ = [
    "ConfigError",
    "QueryClassSpec",
    "SiteSpec",
    "NetworkSpec",
    "SystemConfig",
    "DISK_PER_DISK",
    "DISK_SHARED",
    "paper_classes",
    "paper_defaults",
    "LoadView",
    "BalanceMonitor",
    "BalanceSummary",
    "LoadBoard",
    "FrozenLoadView",
    "MetricsCollector",
    "SystemResults",
    "summarize",
    "Query",
    "config_to_dict",
    "config_from_dict",
    "save_config",
    "load_config",
    "make_query",
    "Message",
    "TokenRing",
    "Subnet",
    "PointToPointNetwork",
    "SUBNET_RING",
    "SUBNET_MESH",
    "build_subnet",
    "DBSite",
    "DistributedDatabase",
    "WorkloadGenerator",
]
