"""Live load-balance observability: the paper's QD, measured over time.

§3 defines the *query difference* ``QD = max_j n_j - min_j n_j`` as the
quantity BNQ drives toward zero.  The :class:`BalanceMonitor` samples the
load board periodically during a run and accumulates:

* the time-average and maximum QD;
* the time-average standard deviation of per-site query counts;
* per-kind (I/O-bound / CPU-bound) imbalance, which is what BNQRD/LERT
  actually control — a system can have QD ≈ 0 while every I/O-bound query
  sits on one site.

Attach before ``run()``::

    monitor = BalanceMonitor(system, sample_interval=5.0)
    results = system.run(warmup, duration)
    print(monitor.summary())
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.monitor import Tally
from repro.sim.process import Hold

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import DistributedDatabase


@dataclass(frozen=True)
class BalanceSummary:
    """Aggregated balance statistics for one run."""

    samples: int
    mean_qd: float
    max_qd: float
    mean_site_stddev: float
    mean_io_qd: float
    mean_cpu_qd: float

    def __str__(self) -> str:
        return (
            f"QD mean={self.mean_qd:.2f} max={self.max_qd:.0f} "
            f"site-stddev={self.mean_site_stddev:.2f} "
            f"io-QD={self.mean_io_qd:.2f} cpu-QD={self.mean_cpu_qd:.2f} "
            f"(n={self.samples})"
        )


class BalanceMonitor:
    """Samples the load board on a fixed interval during a run."""

    def __init__(self, system: "DistributedDatabase", sample_interval: float = 5.0) -> None:
        if sample_interval <= 0:
            raise ValueError("sample_interval must be > 0")
        self.system = system
        self.sample_interval = sample_interval
        self.qd = Tally("qd")
        self.site_stddev = Tally("site_stddev")
        self.io_qd = Tally("io_qd")
        self.cpu_qd = Tally("cpu_qd")
        system.sim.launch(self._sampler(), name="balance-monitor")

    def _sampler(self):
        board = self.system.load_board
        sites = range(self.system.config.num_sites)
        while True:
            yield Hold(self.sample_interval)
            totals = [board.num_queries(s) for s in sites]
            io_counts = [board.num_io_queries(s) for s in sites]
            cpu_counts = [board.num_cpu_queries(s) for s in sites]
            self.qd.record(max(totals) - min(totals))
            self.io_qd.record(max(io_counts) - min(io_counts))
            self.cpu_qd.record(max(cpu_counts) - min(cpu_counts))
            mean = sum(totals) / len(totals)
            variance = sum((t - mean) ** 2 for t in totals) / len(totals)
            self.site_stddev.record(math.sqrt(variance))

    def reset(self) -> None:
        """Truncate accumulated samples (call at warmup end)."""
        self.qd.reset()
        self.io_qd.reset()
        self.cpu_qd.reset()
        self.site_stddev.reset()

    def summary(self) -> BalanceSummary:
        return BalanceSummary(
            samples=self.qd.count,
            mean_qd=self.qd.mean,
            max_qd=self.qd.maximum if self.qd.count else 0.0,
            mean_site_stddev=self.site_stddev.mean,
            mean_io_qd=self.io_qd.mean,
            mean_cpu_qd=self.cpu_qd.mean,
        )


__all__ = ["BalanceMonitor", "BalanceSummary"]
