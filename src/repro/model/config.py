"""Declarative configuration of the distributed database system model.

The dataclasses here mirror the paper's parameter tables:

* Table 1 (DB-site parameters): ``num_disks``, ``disk_time``, ``mpl``,
  ``think_time``, ``class_prob`` → :class:`SiteSpec` / :class:`SystemConfig`.
* Table 2 (class parameters): ``page_cpu_time``, ``num_reads``,
  ``result_fraction``, ``query_size`` → :class:`QueryClassSpec`.
* Table 3 (communications): ``msg_time``, ``page_size`` → :class:`NetworkSpec`.
* Table 7 (simulation settings): the defaults produced by
  :func:`paper_defaults`.

Everything is frozen so a config can be shared between replications without
aliasing bugs; use :func:`dataclasses.replace` to derive variants.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple


class ConfigError(ValueError):
    """An invalid model configuration."""


@dataclass(frozen=True)
class QueryClassSpec:
    """Workload parameters of one query class (the paper's Table 2).

    Attributes:
        name: Class label ("io" / "cpu" in the paper's experiments).
        page_cpu_time: Mean CPU time to process one page read from disk.
        num_reads: Mean number of disk pages read (cycles through the
            disk+CPU service centers).
        result_fraction: Mean result pages as a fraction of pages read;
            used by the linear message-cost model.
        query_size: Bytes needed to describe the query (sent when the
            query is initiated remotely); used by the linear cost model.
    """

    name: str
    page_cpu_time: float
    num_reads: float
    result_fraction: float = 0.2
    query_size: int = 256

    def __post_init__(self) -> None:
        if self.page_cpu_time <= 0:
            raise ConfigError(f"class {self.name!r}: page_cpu_time must be > 0")
        if self.num_reads < 1:
            raise ConfigError(f"class {self.name!r}: num_reads must be >= 1")
        if not 0 <= self.result_fraction:
            raise ConfigError(f"class {self.name!r}: result_fraction must be >= 0")
        if self.query_size < 0:
            raise ConfigError(f"class {self.name!r}: query_size must be >= 0")

    def mean_service_demand(self, disk_time: float) -> float:
        """Expected total service demand of a class member."""
        return self.num_reads * (disk_time + self.page_cpu_time)


@dataclass(frozen=True)
class SiteSpec:
    """Hardware and workload parameters of one (homogeneous) DB site."""

    num_disks: int = 2
    disk_time: float = 1.0
    disk_time_dev: float = 0.20
    mpl: int = 20
    think_time: float = 350.0

    def __post_init__(self) -> None:
        if self.num_disks < 1:
            raise ConfigError("num_disks must be >= 1")
        if self.disk_time <= 0:
            raise ConfigError("disk_time must be > 0")
        if not 0 <= self.disk_time_dev <= 1:
            raise ConfigError("disk_time_dev must be in [0, 1]")
        if self.mpl < 1:
            raise ConfigError("mpl must be >= 1")
        if self.think_time < 0:
            raise ConfigError("think_time must be >= 0")

    @property
    def io_demand_per_disk(self) -> float:
        """The paper's per-disk I/O demand used to classify queries."""
        return self.disk_time / self.num_disks


@dataclass(frozen=True)
class NetworkSpec:
    """Token-ring communications parameters.

    The paper's simulation study folds ``result_fraction``, ``query_size``
    and ``msg_time`` into one constant, ``msg_length`` — the time to move a
    query (or its results) across the subnet.  Setting ``msg_length`` to
    ``None`` activates the full linear cost model instead:
    ``transfer = msg_time * bytes`` with query/result sizes taken from the
    class spec and ``page_size``.
    """

    msg_length: Optional[float] = 1.0
    msg_time: float = 0.0005
    page_size: int = 4096
    #: Subnet topology: "ring" (the paper's shared token ring) or "mesh"
    #: (a full point-to-point mesh; see repro.model.subnet).
    subnet_kind: str = "ring"

    def __post_init__(self) -> None:
        if self.msg_length is not None and self.msg_length < 0:
            raise ConfigError("msg_length must be >= 0")
        if self.msg_time < 0:
            raise ConfigError("msg_time must be >= 0")
        if self.page_size < 1:
            raise ConfigError("page_size must be >= 1")
        if self.subnet_kind not in ("ring", "mesh"):
            raise ConfigError(
                f"subnet_kind must be 'ring' or 'mesh', got {self.subnet_kind!r}"
            )


#: Disk-subsystem organizations (ablation A1 in DESIGN.md).
DISK_PER_DISK = "per_disk"  # one FCFS queue per disk, uniform random routing
DISK_SHARED = "shared"  # one queue feeding all disks (M/G/c style)

_DISK_ORGANIZATIONS = (DISK_PER_DISK, DISK_SHARED)


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated system.

    Attributes:
        num_sites: Number of (identical) DB sites.
        site: Per-site hardware/workload parameters.
        classes: The query classes (the paper uses exactly two, I/O-bound
            then CPU-bound, but any number is supported).
        class_probs: Probability a new query belongs to each class; must
            sum to 1.
        network: Communications subnet parameters.
        disk_organization: ``"per_disk"`` (paper's Figure 2: separate disk
            boxes, a read goes to a uniformly chosen disk) or ``"shared"``
            (single queue feeding all disks).
        integer_reads: Round each query's sampled read count to an integer
            number of cycles (the optimizer estimate keeps the raw value).
    """

    num_sites: int = 6
    site: SiteSpec = dataclasses.field(default_factory=SiteSpec)
    classes: Tuple[QueryClassSpec, ...] = ()
    class_probs: Tuple[float, ...] = ()
    network: NetworkSpec = dataclasses.field(default_factory=NetworkSpec)
    disk_organization: str = DISK_PER_DISK
    integer_reads: bool = True

    def __post_init__(self) -> None:
        if self.num_sites < 1:
            raise ConfigError("num_sites must be >= 1")
        if not self.classes:
            raise ConfigError("at least one query class is required")
        if len(self.class_probs) != len(self.classes):
            raise ConfigError(
                f"{len(self.class_probs)} class probabilities for "
                f"{len(self.classes)} classes"
            )
        if any(p < 0 for p in self.class_probs):
            raise ConfigError("class probabilities must be >= 0")
        if abs(sum(self.class_probs) - 1.0) > 1e-9:
            raise ConfigError(
                f"class probabilities must sum to 1, got {sum(self.class_probs)}"
            )
        if self.disk_organization not in _DISK_ORGANIZATIONS:
            raise ConfigError(
                f"disk_organization must be one of {_DISK_ORGANIZATIONS}, "
                f"got {self.disk_organization!r}"
            )
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate class names: {names}")

    @property
    def class_count(self) -> int:
        return len(self.classes)

    def class_index(self, name: str) -> int:
        for index, spec in enumerate(self.classes):
            if spec.name == name:
                return index
        raise KeyError(f"no query class named {name!r}")

    def is_io_bound(self, page_cpu_time: float) -> bool:
        """The paper's classification rule (BNQRD, §4.2).

        A query is I/O-bound iff its per-disk I/O demand exceeds its CPU
        demand per page: ``disk_time / num_disks > page_cpu_time``.
        """
        return self.site.io_demand_per_disk > page_cpu_time

    def mean_query_service_demand(self) -> float:
        """Workload-average total service demand of a query."""
        return sum(
            p * spec.mean_service_demand(self.site.disk_time)
            for p, spec in zip(self.class_probs, self.classes)
        )

    def with_site(self, **changes) -> "SystemConfig":
        """Derive a config with site-level parameters replaced."""
        return dataclasses.replace(self, site=dataclasses.replace(self.site, **changes))

    def with_network(self, **changes) -> "SystemConfig":
        """Derive a config with network parameters replaced."""
        return dataclasses.replace(
            self, network=dataclasses.replace(self.network, **changes)
        )


def paper_classes(
    io_cpu_time: float = 0.05, cpu_cpu_time: float = 1.0, num_reads: float = 20.0
) -> Tuple[QueryClassSpec, QueryClassSpec]:
    """The paper's two query classes (Table 7 defaults)."""
    return (
        QueryClassSpec("io", page_cpu_time=io_cpu_time, num_reads=num_reads),
        QueryClassSpec("cpu", page_cpu_time=cpu_cpu_time, num_reads=num_reads),
    )


def paper_defaults(
    num_sites: int = 6,
    mpl: int = 20,
    think_time: float = 350.0,
    class_io_prob: float = 0.5,
    io_cpu_time: float = 0.05,
    cpu_cpu_time: float = 1.0,
    msg_length: Optional[float] = 1.0,
) -> SystemConfig:
    """Table 7's default parameter settings for the simulation study.

    All arguments default to the values the paper uses "when not being
    varied": 6 sites, mpl 20, think 350, class_io_prob 0.5, per-page CPU
    means 0.05 (I/O-bound class) and 1.0 (CPU-bound class), msg_length 1.
    """
    return SystemConfig(
        num_sites=num_sites,
        site=SiteSpec(
            num_disks=2,
            disk_time=1.0,
            disk_time_dev=0.20,
            mpl=mpl,
            think_time=think_time,
        ),
        classes=paper_classes(io_cpu_time, cpu_cpu_time),
        class_probs=(class_io_prob, 1.0 - class_io_prob),
        network=NetworkSpec(msg_length=msg_length),
    )


__all__ = [
    "ConfigError",
    "QueryClassSpec",
    "SiteSpec",
    "NetworkSpec",
    "SystemConfig",
    "DISK_PER_DISK",
    "DISK_SHARED",
    "paper_classes",
    "paper_defaults",
]
