"""Global load information shared by the allocation policies.

The paper assumes "each site knows the current loads of all other sites"
and defers the design of the information-exchange policy.  The
:class:`LoadBoard` is that oracle: an always-current table of how many
I/O-bound and CPU-bound queries are committed to each site.

A query is counted at its *execution* site from the instant the allocation
decision is made (it is committed there even while in transit on the ring)
until its results have been delivered back to the home terminal.  This
matches the information a real implementation could track: allocations are
announced, completions are announced.

The stale-information extension (:mod:`repro.extensions.stale_info`)
implements :class:`LoadView` with periodically refreshed copies instead.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.model.query import Query


class LoadView:
    """Read-only interface the policies use to inspect site loads."""

    def num_queries(self, site: int) -> int:
        """Total queries committed to *site* (any class)."""
        raise NotImplementedError

    def num_io_queries(self, site: int) -> int:
        """I/O-bound queries committed to *site*."""
        raise NotImplementedError

    def num_cpu_queries(self, site: int) -> int:
        """CPU-bound queries committed to *site*."""
        raise NotImplementedError

    def query_distribution(self) -> List[int]:
        """The paper's vector N = [n_1 ... n_S]."""
        raise NotImplementedError


class LoadBoard(LoadView):
    """Perfect-information load table (the paper's assumption)."""

    def __init__(self, num_sites: int) -> None:
        if num_sites < 1:
            raise ValueError("need at least one site")
        self._io: List[int] = [0] * num_sites
        self._cpu: List[int] = [0] * num_sites
        self.num_sites = num_sites

    # ------------------------------------------------------------------
    # Writers (called by the system as queries come and go)
    # ------------------------------------------------------------------
    def register(self, query: Query, site: int) -> None:
        """Commit *query* to *site* (at allocation time)."""
        if query.io_bound:
            self._io[site] += 1
        else:
            self._cpu[site] += 1

    def deregister(self, query: Query, site: int) -> None:
        """Remove *query* from *site* (results delivered)."""
        if query.io_bound:
            self._io[site] -= 1
            if self._io[site] < 0:
                raise ValueError(f"site {site}: negative I/O-bound count")
        else:
            self._cpu[site] -= 1
            if self._cpu[site] < 0:
                raise ValueError(f"site {site}: negative CPU-bound count")

    # ------------------------------------------------------------------
    # LoadView
    # ------------------------------------------------------------------
    def num_queries(self, site: int) -> int:
        return self._io[site] + self._cpu[site]

    def num_io_queries(self, site: int) -> int:
        return self._io[site]

    def num_cpu_queries(self, site: int) -> int:
        return self._cpu[site]

    def query_distribution(self) -> List[int]:
        return [self._io[s] + self._cpu[s] for s in range(self.num_sites)]

    def snapshot(self) -> "FrozenLoadView":
        """An immutable copy (used by the stale-information extension)."""
        return FrozenLoadView(tuple(self._io), tuple(self._cpu))

    @property
    def total_queries(self) -> int:
        return sum(self._io) + sum(self._cpu)


class FrozenLoadView(LoadView):
    """An immutable load snapshot."""

    def __init__(self, io_counts: Sequence[int], cpu_counts: Sequence[int]) -> None:
        self._io = tuple(io_counts)
        self._cpu = tuple(cpu_counts)

    def num_queries(self, site: int) -> int:
        return self._io[site] + self._cpu[site]

    def num_io_queries(self, site: int) -> int:
        return self._io[site]

    def num_cpu_queries(self, site: int) -> int:
        return self._cpu[site]

    def query_distribution(self) -> List[int]:
        return [io + cpu for io, cpu in zip(self._io, self._cpu)]


__all__ = ["LoadView", "LoadBoard", "FrozenLoadView"]
