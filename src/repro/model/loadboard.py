"""Global load information shared by the allocation policies.

The paper assumes "each site knows the current loads of all other sites"
and defers the design of the information-exchange policy.  The
:class:`LoadBoard` is that oracle: an always-current table of how many
I/O-bound and CPU-bound queries are committed to each site.

A query is counted at its *execution* site from the instant the allocation
decision is made (it is committed there even while in transit on the ring)
until its results have been delivered back to the home terminal.  This
matches the information a real implementation could track: allocations are
announced, completions are announced.

The stale-information extension (:mod:`repro.extensions.stale_info`)
implements :class:`LoadView` with periodically refreshed copies instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.model.query import Query
from repro.telemetry.events import LoadBoardUpdated

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.telemetry.bus import EventBus


class LoadView:
    """Read-only interface the policies use to inspect site loads."""

    def num_queries(self, site: int) -> int:
        """Total queries committed to *site* (any class)."""
        raise NotImplementedError

    def num_io_queries(self, site: int) -> int:
        """I/O-bound queries committed to *site*."""
        raise NotImplementedError

    def num_cpu_queries(self, site: int) -> int:
        """CPU-bound queries committed to *site*."""
        raise NotImplementedError

    def query_distribution(self) -> List[int]:
        """The paper's vector N = [n_1 ... n_S]."""
        raise NotImplementedError


class LoadBoard(LoadView):
    """Perfect-information load table (the paper's assumption).

    Args:
        num_sites: Number of sites tracked.
        bus: Optional telemetry bus; registrations publish
            :class:`~repro.telemetry.events.LoadBoardUpdated` (guarded —
            no cost when nothing subscribes).
        clock: The simulator whose clock timestamps the events; required
            when *bus* is given.
    """

    def __init__(
        self,
        num_sites: int,
        *,
        bus: Optional["EventBus"] = None,
        clock: Optional["Simulator"] = None,
    ) -> None:
        if num_sites < 1:
            raise ValueError("need at least one site")
        if bus is not None and clock is None:
            raise ValueError("a LoadBoard with a bus needs a clock")
        self._io: List[int] = [0] * num_sites
        self._cpu: List[int] = [0] * num_sites
        self.num_sites = num_sites
        self._bus = bus
        self._clock = clock

    # ------------------------------------------------------------------
    # Writers (called by the system as queries come and go)
    # ------------------------------------------------------------------
    def _announce(self, site: int, change: int) -> None:
        bus = self._bus
        if bus is None or not bus.active or not bus.wants(LoadBoardUpdated):
            return
        assert self._clock is not None  # guaranteed by __init__
        bus.emit(
            LoadBoardUpdated(
                time=self._clock.now,
                site=site,
                io_queries=self._io[site],
                cpu_queries=self._cpu[site],
                change=change,
            )
        )

    def register(self, query: Query, site: int) -> None:
        """Commit *query* to *site* (at allocation time)."""
        if query.io_bound:
            self._io[site] += 1
        else:
            self._cpu[site] += 1
        self._announce(site, +1)

    def deregister(self, query: Query, site: int) -> None:
        """Remove *query* from *site* (results delivered)."""
        if query.io_bound:
            self._io[site] -= 1
            if self._io[site] < 0:
                raise ValueError(f"site {site}: negative I/O-bound count")
        else:
            self._cpu[site] -= 1
            if self._cpu[site] < 0:
                raise ValueError(f"site {site}: negative CPU-bound count")
        self._announce(site, -1)

    # ------------------------------------------------------------------
    # LoadView
    # ------------------------------------------------------------------
    def num_queries(self, site: int) -> int:
        return self._io[site] + self._cpu[site]

    def num_io_queries(self, site: int) -> int:
        return self._io[site]

    def num_cpu_queries(self, site: int) -> int:
        return self._cpu[site]

    def query_distribution(self) -> List[int]:
        return [self._io[s] + self._cpu[s] for s in range(self.num_sites)]

    def snapshot(self) -> "FrozenLoadView":
        """An immutable copy (used by the stale-information extension)."""
        return FrozenLoadView(tuple(self._io), tuple(self._cpu))

    @property
    def total_queries(self) -> int:
        return sum(self._io) + sum(self._cpu)


class FrozenLoadView(LoadView):
    """An immutable load snapshot."""

    def __init__(self, io_counts: Sequence[int], cpu_counts: Sequence[int]) -> None:
        self._io = tuple(io_counts)
        self._cpu = tuple(cpu_counts)

    def num_queries(self, site: int) -> int:
        return self._io[site] + self._cpu[site]

    def num_io_queries(self, site: int) -> int:
        return self._io[site]

    def num_cpu_queries(self, site: int) -> int:
        return self._cpu[site]

    def query_distribution(self) -> List[int]:
        return [io + cpu for io, cpu in zip(self._io, self._cpu)]


__all__ = ["LoadView", "LoadBoard", "FrozenLoadView"]
