"""Performance metrics: the paper's W̄, Ŵ(x), and fairness F.

§3 defines the quantities this module computes:

* ``W̄`` — mean waiting (queueing) time of a query.  We measure a query's
  waiting time as its response time minus the service it actually acquired,
  so disk queueing, CPU sharing delay, ring-buffer time, and channel
  transfer time all count as waiting.
* ``Ŵ(x) = W̄(x) / x`` — normalized waiting time (waiting per unit of
  service demand).
* ``F = Ŵ_1 − Ŵ_2`` — the signed difference of the per-class normalized
  waits, the paper's fairness measure (class 1 = the I/O-bound class in the
  two-class experiments; Table 12 reports signed values).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.model.config import SystemConfig
from repro.model.query import Query
from repro.sim.monitor import Tally
from repro.sim.stats import IntervalEstimate, batch_means
from repro.telemetry.events import QueryCompleted
from repro.telemetry.tracing.decisions import DecisionSummary
from repro.telemetry.tracing.spans import SpanSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.bus import EventBus


class MetricsCollector:
    """Accumulates per-query statistics during a simulation run.

    With a *bus*, every recorded completion also publishes a
    :class:`~repro.telemetry.events.QueryCompleted` event (guarded emit;
    free when nothing subscribes).  Recording here — rather than in each
    system class — means every system kind, including the extension
    subclasses that override the query life cycle, emits the full
    completion record.
    """

    def __init__(
        self, config: SystemConfig, *, bus: Optional["EventBus"] = None
    ) -> None:
        self.config = config
        self._bus = bus
        names = [spec.name for spec in config.classes]
        self.waiting = Tally("waiting", keep=True)
        self.response = Tally("response", keep=True)
        self.normalized_waiting = Tally("normalized_waiting")
        self.by_class_waiting = [Tally(f"waiting[{n}]") for n in names]
        self.by_class_response = [Tally(f"response[{n}]") for n in names]
        self.by_class_normalized = [Tally(f"normalized[{n}]") for n in names]
        self.remote_count = 0
        self.completions = 0

    def record(self, query: Query) -> None:
        """Record one completed query."""
        k = query.class_index
        wait = query.waiting_time
        resp = query.response_time
        norm = query.normalized_waiting_time
        self.waiting.record(wait)
        self.response.record(resp)
        self.normalized_waiting.record(norm)
        self.by_class_waiting[k].record(wait)
        self.by_class_response[k].record(resp)
        self.by_class_normalized[k].record(norm)
        if query.remote:
            self.remote_count += 1
        self.completions += 1
        bus = self._bus
        if bus is not None and bus.active and bus.wants(QueryCompleted):
            bus.emit(
                QueryCompleted(
                    time=query.completed_at,
                    qid=query.qid,
                    class_name=query.spec.name,
                    home_site=query.home_site,
                    execution_site=query.execution_site,
                    remote=query.remote,
                    created_at=query.created_at,
                    allocated_at=query.allocated_at,
                    started_at=query.started_at,
                    finished_at=query.finished_at,
                    service_time=query.service_acquired,
                    waiting_time=wait,
                    migrations=query.migrations,
                )
            )

    def reset(self) -> None:
        """Truncate everything (end of warmup)."""
        self.waiting.reset()
        self.response.reset()
        self.normalized_waiting.reset()
        for tally in (
            *self.by_class_waiting,
            *self.by_class_response,
            *self.by_class_normalized,
        ):
            tally.reset()
        self.remote_count = 0
        self.completions = 0

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------
    @property
    def mean_waiting_time(self) -> float:
        return self.waiting.mean

    @property
    def mean_response_time(self) -> float:
        return self.response.mean

    @property
    def fairness(self) -> float:
        """F = Ŵ(class 0) − Ŵ(class 1); requires exactly two classes."""
        if len(self.by_class_normalized) != 2:
            raise ValueError("fairness F is defined for two-class workloads")
        return self.by_class_normalized[0].mean - self.by_class_normalized[1].mean

    @property
    def remote_fraction(self) -> float:
        if self.completions == 0:
            return 0.0
        return self.remote_count / self.completions


@dataclass(frozen=True)
class AvailabilitySummary:
    """Availability metrics of one run under a fault plan.

    Produced by :meth:`repro.faults.injector.FaultInjector.availability_summary`
    over the measurement window (warmup statistics are truncated, exactly
    like every other monitor).

    Attributes:
        site_downtime: Per-site accumulated downtime (simulated time each
            site spent crashed inside the measurement window).
        crashes: Site down-transitions observed.
        recoveries: Site up-transitions observed.
        queries_aborted: In-flight queries aborted by site crashes.
        queries_retried: Aborted queries that re-entered allocation.
        queries_lost: Aborted queries that exhausted their retry budget.
        messages_dropped: Subnet transfers lost to message faults.
        degraded_completions: Completions whose query was exposed to at
            least one fault (abort or message loss) on the way.
        clean_response_time: Mean response time of fault-free completions.
        degraded_response_time: Mean response time of degraded completions
            (0.0 when there were none).
    """

    site_downtime: Tuple[float, ...]
    crashes: int
    recoveries: int
    queries_aborted: int
    queries_retried: int
    queries_lost: int
    messages_dropped: int
    degraded_completions: int
    clean_response_time: float
    degraded_response_time: float

    @property
    def total_downtime(self) -> float:
        """Downtime summed over all sites."""
        return math.fsum(self.site_downtime)

    def __str__(self) -> str:
        return (
            f"downtime={self.total_downtime:.1f} crashes={self.crashes} "
            f"aborted={self.queries_aborted} retried={self.queries_retried} "
            f"lost={self.queries_lost} dropped={self.messages_dropped} "
            f"degraded={self.degraded_completions}"
        )


@dataclass(frozen=True)
class WorkloadSummary:
    """Admission accounting of one run under an open workload.

    Produced by :meth:`repro.workloads.driver.WorkloadDriver.summary`
    over the measurement window (warmup statistics are truncated,
    exactly like every other monitor).

    Attributes:
        kind: The arrival process's kind tag (``"poisson"``, ``"mmpp"``,
            ``"diurnal"``, ``"trace"``).
        offered: Arrivals offered during the measurement window.
        admitted: Offered arrivals that passed admission control.
        shed: Offered arrivals dropped at the admission limit.
        shed_fraction: ``shed / offered`` (0.0 when nothing was offered).
    """

    kind: str
    offered: int
    admitted: int
    shed: int
    shed_fraction: float

    def __str__(self) -> str:
        return (
            f"kind={self.kind} offered={self.offered} "
            f"admitted={self.admitted} shed={self.shed} "
            f"({self.shed_fraction:.1%})"
        )


@dataclass(frozen=True)
class SystemResults:
    """Immutable summary of one simulation run.

    Attributes:
        policy: Name of the allocation policy used.
        mean_waiting_time: The paper's W̄.
        mean_response_time: Mean issue-to-results-home latency.
        fairness: The paper's F (None for workloads without exactly
            two classes).
        waiting_by_class: Per-class W̄.
        normalized_by_class: Per-class Ŵ.
        subnet_utilization: Fraction of time the ring channel was busy.
        cpu_utilization: Average CPU utilization across sites.
        disk_utilization: Average per-disk utilization across sites.
        completions: Queries completed in the measurement window.
        remote_fraction: Fraction of queries executed away from home.
        measured_time: Length of the measurement window.
        waiting_ci: Batch-means confidence interval for W̄ (None when too
            few observations were collected).
        telemetry: Optional metrics-registry snapshot of the run, as a
            sorted tuple of ``(name, value)`` pairs (see
            :meth:`repro.telemetry.registry.MetricsRegistry.summary_pairs`).
            ``None`` when the run collected no telemetry — note the cache
            stores results of telemetry-free runs, so cached entries
            always carry ``None`` here.
        availability: Availability metrics when a fault plan was
            installed; ``None`` for faultless runs (and for runs under a
            no-op plan, which are normalized to faultless).
        workload: Admission accounting when an open workload drove the
            run; ``None`` for closed runs (and for runs under the
            default closed spec, which are normalized to closed).
        decisions: Decision-audit roll-up when the allocation audit was
            enabled (``TelemetryConfig(decisions=True)``); ``None``
            otherwise — like ``telemetry``, never cached.
        spans: Span-stream roll-up when query-lifecycle tracing was
            enabled (``TelemetryConfig(spans=True)``); ``None``
            otherwise — like ``telemetry``, never cached.
    """

    policy: str
    mean_waiting_time: float
    mean_response_time: float
    fairness: Optional[float]
    waiting_by_class: Tuple[float, ...]
    normalized_by_class: Tuple[float, ...]
    subnet_utilization: float
    cpu_utilization: float
    disk_utilization: float
    completions: int
    remote_fraction: float
    measured_time: float
    waiting_ci: Optional[IntervalEstimate] = None
    telemetry: Optional[Tuple[Tuple[str, float], ...]] = None
    availability: Optional[AvailabilitySummary] = None
    workload: Optional[WorkloadSummary] = None
    decisions: Optional[DecisionSummary] = None
    spans: Optional[SpanSummary] = None

    def __str__(self) -> str:
        fair = f"{self.fairness:+.4f}" if self.fairness is not None else "n/a"
        return (
            f"[{self.policy}] W={self.mean_waiting_time:.2f} "
            f"RT={self.mean_response_time:.2f} F={fair} "
            f"subnet={self.subnet_utilization:.1%} "
            f"remote={self.remote_fraction:.1%} n={self.completions}"
        )


def summarize(
    collector: MetricsCollector,
    policy: str,
    subnet_utilization: float,
    cpu_utilization: float,
    disk_utilization: float,
    measured_time: float,
    ci_batches: int = 20,
    availability: Optional[AvailabilitySummary] = None,
    workload: Optional[WorkloadSummary] = None,
) -> SystemResults:
    """Package a collector into a :class:`SystemResults`."""
    fairness: Optional[float]
    try:
        fairness = collector.fairness
    except ValueError:
        fairness = None
    waiting_ci = None
    if len(collector.waiting.observations) >= ci_batches:
        waiting_ci = batch_means(collector.waiting.observations, batches=ci_batches)
    return SystemResults(
        policy=policy,
        mean_waiting_time=collector.mean_waiting_time,
        mean_response_time=collector.mean_response_time,
        fairness=fairness,
        waiting_by_class=tuple(t.mean for t in collector.by_class_waiting),
        normalized_by_class=tuple(t.mean for t in collector.by_class_normalized),
        subnet_utilization=subnet_utilization,
        cpu_utilization=cpu_utilization,
        disk_utilization=disk_utilization,
        completions=collector.completions,
        remote_fraction=collector.remote_fraction,
        measured_time=measured_time,
        waiting_ci=waiting_ci,
        availability=availability,
        workload=workload,
    )


__all__ = [
    "MetricsCollector",
    "AvailabilitySummary",
    "WorkloadSummary",
    "SystemResults",
    "summarize",
]
