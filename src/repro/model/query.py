"""Query objects: the unit of work the allocation policies place.

A :class:`Query` carries two views of its resource needs:

* the **optimizer estimates** (``estimated_reads``, ``page_cpu_time``),
  which is what allocation policies are allowed to look at — the paper's
  premise is that "estimates of the CPU and I/O needs of queries are
  attached to the queries" by the query optimizer; and
* the **realized demands** accumulated while the query actually executes
  (``service_acquired``), which the metrics layer uses to separate waiting
  time from service time.

Timestamps let the metrics layer compute response time, waiting time, and
normalized waiting time without the model code doing arithmetic inline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.model.config import QueryClassSpec, SystemConfig

_query_ids = itertools.count(1)


@dataclass
class Query:
    """One read-only query circulating through the system.

    Attributes:
        qid: Unique id (monotone per process).
        class_index: Index into ``SystemConfig.classes``.
        spec: The query's class parameters.
        home_site: Site whose terminal issued the query.
        estimated_reads: The optimizer's estimate of the number of page
            reads (the raw sampled value, before integer rounding).
        actual_reads: The integer number of disk/CPU cycles the query will
            actually perform.
        io_bound: Classification under the paper's per-disk rule.
    """

    class_index: int
    spec: QueryClassSpec
    home_site: int
    estimated_reads: float
    actual_reads: int
    io_bound: bool
    qid: int = field(default_factory=lambda: next(_query_ids))

    # Lifecycle timestamps (simulated time); None until reached.
    created_at: Optional[float] = None
    allocated_at: Optional[float] = None
    execution_site: Optional[int] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None  # execution done at the site
    completed_at: Optional[float] = None  # results delivered back home

    #: Actual service time acquired so far (disk + CPU), excluding all
    #: queueing and network time.
    service_acquired: float = 0.0

    #: Data item the query reads (partial-replication extension); None in
    #: the fully replicated base model.
    data_item: Optional[int] = None

    #: Times the query moved between sites mid-execution (migration
    #: extension); always 0 in the base model.
    migrations: int = 0

    #: How many fault events the query was exposed to (site crashes that
    #: aborted it plus subnet messages lost under it); always 0 when no
    #: fault plan is installed.  A completion with ``fault_exposure > 0``
    #: is counted as *degraded* by the availability metrics.
    fault_exposure: int = 0

    # ------------------------------------------------------------------
    # Optimizer-estimate accessors (what policies may read)
    # ------------------------------------------------------------------
    @property
    def page_cpu_time(self) -> float:
        """Estimated mean CPU demand per page (the class mean)."""
        return self.spec.page_cpu_time

    @property
    def estimated_cpu_demand(self) -> float:
        """Figure 6's ``Num_Reads(q) * Page_CPU_Time(q)``."""
        return self.estimated_reads * self.spec.page_cpu_time

    def estimated_io_demand(self, disk_time: float) -> float:
        """Figure 6's ``Num_Reads(q) * disk_time``."""
        return self.estimated_reads * disk_time

    # ------------------------------------------------------------------
    # Measured quantities (what metrics may read, after completion)
    # ------------------------------------------------------------------
    @property
    def remote(self) -> bool:
        """Whether the query executed away from its home site."""
        return self.execution_site is not None and self.execution_site != self.home_site

    @property
    def response_time(self) -> float:
        """Issue-to-results-home latency."""
        if self.completed_at is None or self.created_at is None:
            raise ValueError(f"query {self.qid} has not completed")
        return self.completed_at - self.created_at

    @property
    def waiting_time(self) -> float:
        """Response time minus actual service acquired.

        Everything that is not disk/CPU service counts as waiting: queueing
        at the disks, sharing delay at the CPU, waiting for the ring, and
        channel transfer time.
        """
        return self.response_time - self.service_acquired

    @property
    def normalized_waiting_time(self) -> float:
        """Ŵ = waiting time / realized service demand (paper §3)."""
        if self.service_acquired <= 0:
            return 0.0
        return self.waiting_time / self.service_acquired


def make_query(
    config: SystemConfig,
    class_index: int,
    home_site: int,
    estimated_reads: float,
    created_at: float,
    qid: Optional[int] = None,
) -> Query:
    """Build a query, applying the integer-cycles policy and classification.

    Args:
        qid: Explicit query id.  Callers that need run-deterministic ids
            (anything whose random streams are keyed by ``qid``) must pass
            one; the process-global default counter exists only as a
            convenience for ad-hoc construction and depends on process
            history.
    """
    spec = config.classes[class_index]
    if config.integer_reads:
        actual = max(1, int(round(estimated_reads)))
    else:
        actual = max(1, int(estimated_reads))
    kwargs = {} if qid is None else {"qid": qid}
    return Query(
        class_index=class_index,
        spec=spec,
        home_site=home_site,
        estimated_reads=estimated_reads,
        actual_reads=actual,
        io_bound=config.is_io_bound(spec.page_cpu_time),
        created_at=created_at,
        **kwargs,
    )


__all__ = ["Query", "make_query"]
