"""Token-ring communications subnetwork.

The paper's subnet model (§2): "a simple token-ring style local network...
The network has a single message buffer for each site, and sites are polled
in a round-robin fashion for requests to send messages.  The cost of sending
a message is a linear function of the length of the message.  When the
network finds a site that is ready to send a message, it sends its message,
delays for the appropriate amount of time, and then continues on with the
polling process.  We assume that the overhead of the polling process is
negligible."

Implementation: one channel process owns the token.  It scans the per-site
outgoing buffers round-robin (at zero simulated cost), transmits the head
message of the first non-empty buffer it finds (holding for the message's
transfer time), delivers it, and resumes scanning from the *next* site.
When every buffer is empty the channel passivates until a send wakes it.

Messages carry their own precomputed transfer time; the cost model (constant
``msg_length`` vs. linear ``msg_time * bytes``) lives in
:meth:`repro.model.system.DistributedDatabase` so the ring stays generic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.monitor import Tally, TimeWeighted
from repro.sim.process import Hold, Passivate


@dataclass
class Message:
    """One message queued for transmission on the ring.

    Attributes:
        source: Sending site index.
        destination: Receiving site index.
        transfer_time: Channel occupancy to move this message.
        deliver: Callback run when transmission finishes.
        kind: Tag for statistics ("query", "result", "control").
        size_bytes: Informational size (used by the linear cost model).
    """

    source: int
    destination: int
    transfer_time: float
    deliver: Callable[[], None]
    kind: str = "query"
    size_bytes: int = 0
    enqueued_at: Optional[float] = None


class TokenRing:
    """Round-robin polled single-channel network (see module docstring)."""

    def __init__(self, sim: Simulator, num_sites: int) -> None:
        if num_sites < 1:
            raise SimulationError("ring needs at least one site")
        self.sim = sim
        self.num_sites = num_sites
        self._buffers: List[Deque[Message]] = [deque() for _ in range(num_sites)]
        #: Channel busy indicator; its time-average is subnet utilization.
        self.busy = TimeWeighted(sim, name="ring.busy")
        #: Time from enqueue to delivery, per message.
        self.latencies = Tally(name="ring.latency")
        self.messages_delivered = 0
        self.bytes_delivered = 0
        self._idle = False
        self._process = sim.launch(self._run(), name="token-ring")

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Queue *message* in its source site's outgoing buffer."""
        if not 0 <= message.source < self.num_sites:
            raise SimulationError(f"invalid source site {message.source}")
        if not 0 <= message.destination < self.num_sites:
            raise SimulationError(f"invalid destination site {message.destination}")
        if message.transfer_time < 0:
            raise SimulationError(f"negative transfer time {message.transfer_time}")
        message.enqueued_at = self.sim.now
        self._buffers[message.source].append(message)
        if self._idle:
            self._idle = False
            self._process.reactivate()

    def pending_messages(self, site: Optional[int] = None) -> int:
        """Messages queued at *site* (or system-wide when omitted)."""
        if site is None:
            return sum(len(b) for b in self._buffers)
        return len(self._buffers[site])

    @property
    def utilization(self) -> float:
        """Fraction of (post-warmup) time the channel was transmitting."""
        return self.busy.time_average

    def reset_statistics(self) -> None:
        self.busy.reset()
        self.latencies.reset()
        self.messages_delivered = 0
        self.bytes_delivered = 0

    # ------------------------------------------------------------------
    # The channel process
    # ------------------------------------------------------------------
    def _next_ready(self, start: int) -> Optional[int]:
        """First site at/after *start* (cyclically) with a queued message."""
        for offset in range(self.num_sites):
            site = (start + offset) % self.num_sites
            if self._buffers[site]:
                return site
        return None

    def _run(self):
        position = 0
        while True:
            ready = self._next_ready(position)
            if ready is None:
                self._idle = True
                yield Passivate()
                continue
            position = ready
            message = self._buffers[position].popleft()
            self.busy.set(1)
            yield Hold(message.transfer_time)
            self.busy.set(0)
            self.messages_delivered += 1
            self.bytes_delivered += message.size_bytes
            if message.enqueued_at is not None:
                self.latencies.record(self.sim.now - message.enqueued_at)
            message.deliver()
            position = (position + 1) % self.num_sites


__all__ = ["Message", "TokenRing"]
