"""Config serialization: JSON-friendly round-tripping of SystemConfig.

Experiments are parameterized by :class:`~repro.model.config.SystemConfig`
objects; serializing them lets users store experiment definitions alongside
results, diff configurations, and drive custom sweeps from files::

    config = load_config("my_experiment.json")
    config = config_from_dict({...})
    save_config(config, "my_experiment.json")

The format is a plain nested dict mirroring the dataclass structure, plus a
``format_version`` field so future changes stay loadable.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

from repro.model.config import (
    ConfigError,
    NetworkSpec,
    QueryClassSpec,
    SiteSpec,
    SystemConfig,
)

FORMAT_VERSION = 1


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Flatten a :class:`SystemConfig` into JSON-compatible primitives."""
    return {
        "format_version": FORMAT_VERSION,
        "num_sites": config.num_sites,
        "site": {
            "num_disks": config.site.num_disks,
            "disk_time": config.site.disk_time,
            "disk_time_dev": config.site.disk_time_dev,
            "mpl": config.site.mpl,
            "think_time": config.site.think_time,
        },
        "classes": [
            {
                "name": spec.name,
                "page_cpu_time": spec.page_cpu_time,
                "num_reads": spec.num_reads,
                "result_fraction": spec.result_fraction,
                "query_size": spec.query_size,
            }
            for spec in config.classes
        ],
        "class_probs": list(config.class_probs),
        "network": {
            "msg_length": config.network.msg_length,
            "msg_time": config.network.msg_time,
            "page_size": config.network.page_size,
            "subnet_kind": config.network.subnet_kind,
        },
        "disk_organization": config.disk_organization,
        "integer_reads": config.integer_reads,
    }


def config_from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output.

    Raises:
        ConfigError: On missing keys, unknown versions, or invalid values
            (field validation happens in the dataclasses themselves).
    """
    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    version = data.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ConfigError(f"unsupported config format version {version}")
    try:
        site = SiteSpec(**data["site"])
        classes = tuple(QueryClassSpec(**spec) for spec in data["classes"])
        network = NetworkSpec(**data["network"])
        return SystemConfig(
            num_sites=data["num_sites"],
            site=site,
            classes=classes,
            class_probs=tuple(data["class_probs"]),
            network=network,
            disk_organization=data.get("disk_organization", "per_disk"),
            integer_reads=data.get("integer_reads", True),
        )
    except KeyError as missing:
        raise ConfigError(f"config dict is missing key {missing}") from None
    except TypeError as bad:
        raise ConfigError(f"malformed config dict: {bad}") from None


def save_config(config: SystemConfig, path: Union[str, pathlib.Path]) -> None:
    """Write *config* as pretty-printed JSON."""
    payload = json.dumps(config_to_dict(config), indent=2, sort_keys=True)
    pathlib.Path(path).write_text(payload + "\n", encoding="utf-8")


def load_config(path: Union[str, pathlib.Path]) -> SystemConfig:
    """Read a config written by :func:`save_config`."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as bad:
        raise ConfigError(f"{path}: not valid JSON ({bad})") from None
    return config_from_dict(data)


__all__ = [
    "FORMAT_VERSION",
    "config_to_dict",
    "config_from_dict",
    "save_config",
    "load_config",
]
