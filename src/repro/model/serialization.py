"""JSON round-tripping of configs and results.

Experiments are parameterized by :class:`~repro.model.config.SystemConfig`
objects; serializing them lets users store experiment definitions alongside
results, diff configurations, and drive custom sweeps from files::

    config = load_config("my_experiment.json")
    config = config_from_dict({...})
    save_config(config, "my_experiment.json")

The format is a plain nested dict mirroring the dataclass structure, plus a
``format_version`` field so future changes stay loadable.

Result objects round-trip too — :func:`results_to_dict` /
:func:`results_from_dict` for one run's
:class:`~repro.model.metrics.SystemResults` and
:func:`averaged_results_to_dict` / :func:`averaged_results_from_dict` for a
replication-averaged
:class:`~repro.experiments.common.AveragedResults`.  These power the
content-addressed result cache (:mod:`repro.experiments.cache`) and let
sweep outputs be archived losslessly.

Fault plans round-trip with :func:`fault_plan_to_dict` /
:func:`fault_plan_from_dict` (and :func:`save_fault_plan` /
:func:`load_fault_plan` for files) — this is the on-disk format the CLI's
``--faults plan.json`` flag reads.

Workload specs round-trip with :func:`workload_spec_to_dict` /
:func:`workload_spec_from_dict` (and :func:`save_workload_spec` /
:func:`load_workload_spec` for files) — the on-disk format of the CLI's
``--workload plan.json`` flag.  Only the built-in arrival processes
serialize; a custom :class:`~repro.workloads.arrivals.ArrivalProcess`
works at run time but cannot enter cache keys or files.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Optional, Union

from repro.faults.plan import (
    FaultPlan,
    LoadBoardOutage,
    MessageFaults,
    RandomOutages,
    SiteOutage,
)
from repro.model.config import (
    ConfigError,
    NetworkSpec,
    QueryClassSpec,
    SiteSpec,
    SystemConfig,
)
from repro.model.metrics import (
    AvailabilitySummary,
    SystemResults,
    WorkloadSummary,
)
from repro.sim.stats import IntervalEstimate
from repro.telemetry.tracing.decisions import DecisionSummary
from repro.telemetry.tracing.spans import SpanSummary
from repro.workloads.arrivals import (
    ArrivalSpec,
    ClosedTerminals,
    DiurnalRate,
    MMPP,
    PoissonOpen,
    TraceDriven,
)
from repro.workloads.spec import AdmissionControl, WorkloadSpec

FORMAT_VERSION = 1

#: Version tag of the serialized result formats (bump on layout changes).
RESULTS_FORMAT_VERSION = 1

#: Version tag of the serialized fault-plan format.
FAULT_PLAN_FORMAT_VERSION = 1

#: Version tag of the serialized workload-spec format.
WORKLOAD_FORMAT_VERSION = 1


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Flatten a :class:`SystemConfig` into JSON-compatible primitives."""
    return {
        "format_version": FORMAT_VERSION,
        "num_sites": config.num_sites,
        "site": {
            "num_disks": config.site.num_disks,
            "disk_time": config.site.disk_time,
            "disk_time_dev": config.site.disk_time_dev,
            "mpl": config.site.mpl,
            "think_time": config.site.think_time,
        },
        "classes": [
            {
                "name": spec.name,
                "page_cpu_time": spec.page_cpu_time,
                "num_reads": spec.num_reads,
                "result_fraction": spec.result_fraction,
                "query_size": spec.query_size,
            }
            for spec in config.classes
        ],
        "class_probs": list(config.class_probs),
        "network": {
            "msg_length": config.network.msg_length,
            "msg_time": config.network.msg_time,
            "page_size": config.network.page_size,
            "subnet_kind": config.network.subnet_kind,
        },
        "disk_organization": config.disk_organization,
        "integer_reads": config.integer_reads,
    }


def config_from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output.

    Raises:
        ConfigError: On missing keys, unknown versions, or invalid values
            (field validation happens in the dataclasses themselves).
    """
    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    version = data.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ConfigError(f"unsupported config format version {version}")
    try:
        site = SiteSpec(**data["site"])
        classes = tuple(QueryClassSpec(**spec) for spec in data["classes"])
        network = NetworkSpec(**data["network"])
        return SystemConfig(
            num_sites=data["num_sites"],
            site=site,
            classes=classes,
            class_probs=tuple(data["class_probs"]),
            network=network,
            disk_organization=data.get("disk_organization", "per_disk"),
            integer_reads=data.get("integer_reads", True),
        )
    except KeyError as missing:
        raise ConfigError(f"config dict is missing key {missing}") from None
    except TypeError as bad:
        raise ConfigError(f"malformed config dict: {bad}") from None


def save_config(config: SystemConfig, path: Union[str, pathlib.Path]) -> None:
    """Write *config* as pretty-printed JSON."""
    payload = json.dumps(config_to_dict(config), indent=2, sort_keys=True)
    pathlib.Path(path).write_text(payload + "\n", encoding="utf-8")


def load_config(path: Union[str, pathlib.Path]) -> SystemConfig:
    """Read a config written by :func:`save_config`."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as bad:
        raise ConfigError(f"{path}: not valid JSON ({bad})") from None
    return config_from_dict(data)


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


def fault_plan_to_dict(plan: FaultPlan) -> Dict[str, Any]:
    """Flatten a :class:`~repro.faults.plan.FaultPlan` into JSON primitives."""
    return {
        "format_version": FAULT_PLAN_FORMAT_VERSION,
        "site_outages": [
            {"site": o.site, "at": o.at, "duration": o.duration}
            for o in plan.site_outages
        ],
        "random_outages": [
            {"mtbf": o.mtbf, "mttr": o.mttr, "site": o.site}
            for o in plan.random_outages
        ],
        "messages": (
            None
            if plan.messages is None
            else {
                "loss_prob": plan.messages.loss_prob,
                "extra_delay": plan.messages.extra_delay,
                "retransmit_timeout": plan.messages.retransmit_timeout,
                "max_retransmits": plan.messages.max_retransmits,
            }
        ),
        "loadboard_outages": [
            {"at": o.at, "duration": o.duration} for o in plan.loadboard_outages
        ],
        "max_retries": plan.max_retries,
        "retry_backoff": plan.retry_backoff,
        "backoff_factor": plan.backoff_factor,
    }


def fault_plan_from_dict(data: Dict[str, Any]) -> FaultPlan:
    """Rebuild a :class:`~repro.faults.plan.FaultPlan`.

    Raises:
        ConfigError: On missing keys, unknown versions, or malformed values
            (field validation happens in the plan dataclasses themselves).
    """
    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    version = data.get("format_version", FAULT_PLAN_FORMAT_VERSION)
    if version != FAULT_PLAN_FORMAT_VERSION:
        raise ConfigError(f"unsupported fault-plan format version {version}")
    messages_data = data.get("messages")
    try:
        return FaultPlan(
            site_outages=tuple(
                SiteOutage(**entry) for entry in data.get("site_outages", [])
            ),
            random_outages=tuple(
                RandomOutages(**entry) for entry in data.get("random_outages", [])
            ),
            messages=(
                None if messages_data is None else MessageFaults(**messages_data)
            ),
            loadboard_outages=tuple(
                LoadBoardOutage(**entry)
                for entry in data.get("loadboard_outages", [])
            ),
            max_retries=data.get("max_retries", 5),
            retry_backoff=data.get("retry_backoff", 1.0),
            backoff_factor=data.get("backoff_factor", 2.0),
        )
    except KeyError as missing:
        raise ConfigError(f"fault plan dict is missing key {missing}") from None
    except TypeError as bad:
        raise ConfigError(f"malformed fault plan dict: {bad}") from None


def save_fault_plan(plan: FaultPlan, path: Union[str, pathlib.Path]) -> None:
    """Write *plan* as pretty-printed JSON (the ``--faults`` file format)."""
    payload = json.dumps(fault_plan_to_dict(plan), indent=2, sort_keys=True)
    pathlib.Path(path).write_text(payload + "\n", encoding="utf-8")


def load_fault_plan(path: Union[str, pathlib.Path]) -> FaultPlan:
    """Read a fault plan written by :func:`save_fault_plan`."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as bad:
        raise ConfigError(f"{path}: not valid JSON ({bad})") from None
    return fault_plan_from_dict(data)


# ----------------------------------------------------------------------
# Workload specs
# ----------------------------------------------------------------------


def _arrivals_to_dict(arrivals: ArrivalSpec) -> Dict[str, Any]:
    if isinstance(arrivals, ClosedTerminals):
        return {"kind": "closed"}
    if isinstance(arrivals, PoissonOpen):
        return {
            "kind": "poisson",
            "rate": arrivals.rate,
            "per_site": arrivals.per_site,
        }
    if isinstance(arrivals, MMPP):
        return {
            "kind": "mmpp",
            "rates": list(arrivals.rates),
            "mean_holding": list(arrivals.mean_holding),
            "per_site": arrivals.per_site,
        }
    if isinstance(arrivals, DiurnalRate):
        return {
            "kind": "diurnal",
            "base_rate": arrivals.base_rate,
            "amplitude": arrivals.amplitude,
            "period": arrivals.period,
            "per_site": arrivals.per_site,
        }
    if isinstance(arrivals, TraceDriven):
        return {
            "kind": "trace",
            "arrivals": [[time, site] for time, site in arrivals.arrivals],
        }
    raise ConfigError(
        f"arrival process {type(arrivals).__name__} is not serializable "
        "(only the built-in processes round-trip)"
    )


def _arrivals_from_dict(data: Dict[str, Any]) -> ArrivalSpec:
    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    kind = data.get("kind")
    try:
        if kind == "closed":
            return ClosedTerminals()
        if kind == "poisson":
            return PoissonOpen(
                rate=data["rate"], per_site=data.get("per_site", True)
            )
        if kind == "mmpp":
            return MMPP(
                rates=tuple(data["rates"]),
                mean_holding=tuple(data["mean_holding"]),
                per_site=data.get("per_site", True),
            )
        if kind == "diurnal":
            return DiurnalRate(
                base_rate=data["base_rate"],
                amplitude=data["amplitude"],
                period=data["period"],
                per_site=data.get("per_site", True),
            )
        if kind == "trace":
            return TraceDriven(
                arrivals=tuple(
                    (time, site) for time, site in data["arrivals"]
                )
            )
    except KeyError as missing:
        raise ConfigError(
            f"{kind} arrival dict is missing key {missing}"
        ) from None
    except TypeError as bad:
        raise ConfigError(f"malformed arrival dict: {bad}") from None
    raise ConfigError(f"unknown arrival-process kind {kind!r}")


def workload_spec_to_dict(spec: WorkloadSpec) -> Dict[str, Any]:
    """Flatten a :class:`~repro.workloads.spec.WorkloadSpec` into primitives."""
    return {
        "format_version": WORKLOAD_FORMAT_VERSION,
        "arrivals": _arrivals_to_dict(spec.arrivals),
        "admission": (
            None
            if spec.admission is None
            else {"max_pending": spec.admission.max_pending}
        ),
    }


def workload_spec_from_dict(data: Dict[str, Any]) -> WorkloadSpec:
    """Rebuild a :class:`~repro.workloads.spec.WorkloadSpec`.

    Raises:
        ConfigError: On missing keys, unknown versions, or unknown
            arrival kinds (value validation happens in the spec
            dataclasses themselves).
    """
    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    version = data.get("format_version", WORKLOAD_FORMAT_VERSION)
    if version != WORKLOAD_FORMAT_VERSION:
        raise ConfigError(f"unsupported workload format version {version}")
    try:
        arrivals_data = data["arrivals"]
    except KeyError as missing:
        raise ConfigError(
            f"workload dict is missing key {missing}"
        ) from None
    admission_data = data.get("admission")
    try:
        admission = (
            None
            if admission_data is None
            else AdmissionControl(max_pending=admission_data["max_pending"])
        )
    except (KeyError, TypeError) as bad:
        raise ConfigError(f"malformed admission dict: {bad}") from None
    return WorkloadSpec(
        arrivals=_arrivals_from_dict(arrivals_data), admission=admission
    )


def save_workload_spec(
    spec: WorkloadSpec, path: Union[str, pathlib.Path]
) -> None:
    """Write *spec* as pretty-printed JSON (the ``--workload`` file format)."""
    payload = json.dumps(workload_spec_to_dict(spec), indent=2, sort_keys=True)
    pathlib.Path(path).write_text(payload + "\n", encoding="utf-8")


def load_workload_spec(path: Union[str, pathlib.Path]) -> WorkloadSpec:
    """Read a workload spec written by :func:`save_workload_spec`."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as bad:
        raise ConfigError(f"{path}: not valid JSON ({bad})") from None
    return workload_spec_from_dict(data)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


def workload_summary_to_dict(summary: WorkloadSummary) -> Dict[str, Any]:
    """Flatten a :class:`WorkloadSummary` into JSON primitives."""
    return {
        "kind": summary.kind,
        "offered": summary.offered,
        "admitted": summary.admitted,
        "shed": summary.shed,
        "shed_fraction": summary.shed_fraction,
    }


def workload_summary_from_dict(data: Dict[str, Any]) -> WorkloadSummary:
    """Rebuild a :class:`WorkloadSummary`."""
    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    try:
        return WorkloadSummary(
            kind=data["kind"],
            offered=data["offered"],
            admitted=data["admitted"],
            shed=data["shed"],
            shed_fraction=data["shed_fraction"],
        )
    except KeyError as missing:
        raise ConfigError(
            f"workload summary dict is missing key {missing}"
        ) from None


def availability_to_dict(summary: AvailabilitySummary) -> Dict[str, Any]:
    """Flatten an :class:`AvailabilitySummary` into JSON primitives."""
    return {
        "site_downtime": list(summary.site_downtime),
        "crashes": summary.crashes,
        "recoveries": summary.recoveries,
        "queries_aborted": summary.queries_aborted,
        "queries_retried": summary.queries_retried,
        "queries_lost": summary.queries_lost,
        "messages_dropped": summary.messages_dropped,
        "degraded_completions": summary.degraded_completions,
        "clean_response_time": summary.clean_response_time,
        "degraded_response_time": summary.degraded_response_time,
    }


def availability_from_dict(data: Dict[str, Any]) -> AvailabilitySummary:
    """Rebuild an :class:`AvailabilitySummary`."""
    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    try:
        return AvailabilitySummary(
            site_downtime=tuple(data["site_downtime"]),
            crashes=data["crashes"],
            recoveries=data["recoveries"],
            queries_aborted=data["queries_aborted"],
            queries_retried=data["queries_retried"],
            queries_lost=data["queries_lost"],
            messages_dropped=data["messages_dropped"],
            degraded_completions=data["degraded_completions"],
            clean_response_time=data["clean_response_time"],
            degraded_response_time=data["degraded_response_time"],
        )
    except KeyError as missing:
        raise ConfigError(
            f"availability dict is missing key {missing}"
        ) from None


def decision_summary_to_dict(summary: DecisionSummary) -> Dict[str, Any]:
    """Flatten a :class:`DecisionSummary` into JSON primitives."""
    return {
        "count": summary.count,
        "mean_staleness": summary.mean_staleness,
        "max_staleness": summary.max_staleness,
        "mean_regret": summary.mean_regret,
        "max_regret": summary.max_regret,
        "total_regret": summary.total_regret,
        "optimal_fraction": summary.optimal_fraction,
    }


def decision_summary_from_dict(data: Dict[str, Any]) -> DecisionSummary:
    """Rebuild a :class:`DecisionSummary`."""
    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    try:
        return DecisionSummary(
            count=data["count"],
            mean_staleness=data["mean_staleness"],
            max_staleness=data["max_staleness"],
            mean_regret=data["mean_regret"],
            max_regret=data["max_regret"],
            total_regret=data["total_regret"],
            optimal_fraction=data["optimal_fraction"],
        )
    except KeyError as missing:
        raise ConfigError(
            f"decision summary dict is missing key {missing}"
        ) from None


def span_summary_to_dict(summary: SpanSummary) -> Dict[str, Any]:
    """Flatten a :class:`SpanSummary` into JSON primitives."""
    return {
        "count": summary.count,
        "queries": summary.queries,
        "unfinished": summary.unfinished,
        "kinds": [[kind, count] for kind, count in summary.kinds],
    }


def span_summary_from_dict(data: Dict[str, Any]) -> SpanSummary:
    """Rebuild a :class:`SpanSummary`."""
    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    try:
        return SpanSummary(
            count=data["count"],
            queries=data["queries"],
            unfinished=data["unfinished"],
            kinds=tuple(
                (str(kind), int(count)) for kind, count in data["kinds"]
            ),
        )
    except KeyError as missing:
        raise ConfigError(
            f"span summary dict is missing key {missing}"
        ) from None


def interval_to_dict(estimate: IntervalEstimate) -> Dict[str, Any]:
    """Flatten an :class:`IntervalEstimate` into JSON primitives."""
    return {
        "mean": estimate.mean,
        "half_width": estimate.half_width,
        "confidence": estimate.confidence,
        "batches": estimate.batches,
    }


def interval_from_dict(data: Dict[str, Any]) -> IntervalEstimate:
    """Rebuild an :class:`IntervalEstimate` from :func:`interval_to_dict`."""
    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    try:
        return IntervalEstimate(
            mean=data["mean"],
            half_width=data["half_width"],
            confidence=data["confidence"],
            batches=data["batches"],
        )
    except KeyError as missing:
        raise ConfigError(f"interval dict is missing key {missing}") from None


def results_to_dict(results: SystemResults) -> Dict[str, Any]:
    """Flatten one run's :class:`SystemResults` into JSON primitives.

    The ``workload`` key is emitted only when the run carried an open
    workload, and the ``decisions`` / ``spans`` keys only when the run
    collected the decision audit / span trace: payloads of runs without
    those features are byte-identical to older archives, so the golden
    corpus digests and every cached entry stay valid.
    """
    payload: Dict[str, Any] = {
        "format_version": RESULTS_FORMAT_VERSION,
        "policy": results.policy,
        "mean_waiting_time": results.mean_waiting_time,
        "mean_response_time": results.mean_response_time,
        "fairness": results.fairness,
        "waiting_by_class": list(results.waiting_by_class),
        "normalized_by_class": list(results.normalized_by_class),
        "subnet_utilization": results.subnet_utilization,
        "cpu_utilization": results.cpu_utilization,
        "disk_utilization": results.disk_utilization,
        "completions": results.completions,
        "remote_fraction": results.remote_fraction,
        "measured_time": results.measured_time,
        "waiting_ci": (
            None
            if results.waiting_ci is None
            else interval_to_dict(results.waiting_ci)
        ),
        "telemetry": (
            None
            if results.telemetry is None
            else [[name, value] for name, value in results.telemetry]
        ),
        "availability": (
            None
            if results.availability is None
            else availability_to_dict(results.availability)
        ),
    }
    if results.workload is not None:
        payload["workload"] = workload_summary_to_dict(results.workload)
    if results.decisions is not None:
        payload["decisions"] = decision_summary_to_dict(results.decisions)
    if results.spans is not None:
        payload["spans"] = span_summary_to_dict(results.spans)
    return payload


def results_from_dict(data: Dict[str, Any]) -> SystemResults:
    """Rebuild a :class:`SystemResults` from :func:`results_to_dict` output.

    Raises:
        ConfigError: On missing keys, unknown versions, or malformed values.
    """
    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    version = data.get("format_version", RESULTS_FORMAT_VERSION)
    if version != RESULTS_FORMAT_VERSION:
        raise ConfigError(f"unsupported results format version {version}")
    ci_data = data.get("waiting_ci")
    waiting_ci: Optional[IntervalEstimate] = (
        None if ci_data is None else interval_from_dict(ci_data)
    )
    # Absent in pre-telemetry entries: .get keeps old archives loadable.
    telemetry_data = data.get("telemetry")
    telemetry = (
        None
        if telemetry_data is None
        else tuple((str(name), float(value)) for name, value in telemetry_data)
    )
    # Absent in pre-faults entries: .get keeps old archives loadable.
    availability_data = data.get("availability")
    availability = (
        None
        if availability_data is None
        else availability_from_dict(availability_data)
    )
    # Absent in closed-run entries: .get keeps every archive loadable.
    workload_data = data.get("workload")
    workload = (
        None
        if workload_data is None
        else workload_summary_from_dict(workload_data)
    )
    # Absent in audit-free entries: .get keeps every archive loadable.
    decisions_data = data.get("decisions")
    decisions = (
        None
        if decisions_data is None
        else decision_summary_from_dict(decisions_data)
    )
    # Absent in trace-free entries: .get keeps every archive loadable.
    spans_data = data.get("spans")
    spans = (
        None if spans_data is None else span_summary_from_dict(spans_data)
    )
    try:
        return SystemResults(
            policy=data["policy"],
            mean_waiting_time=data["mean_waiting_time"],
            mean_response_time=data["mean_response_time"],
            fairness=data["fairness"],
            waiting_by_class=tuple(data["waiting_by_class"]),
            normalized_by_class=tuple(data["normalized_by_class"]),
            subnet_utilization=data["subnet_utilization"],
            cpu_utilization=data["cpu_utilization"],
            disk_utilization=data["disk_utilization"],
            completions=data["completions"],
            remote_fraction=data["remote_fraction"],
            measured_time=data["measured_time"],
            waiting_ci=waiting_ci,
            telemetry=telemetry,
            availability=availability,
            workload=workload,
            decisions=decisions,
            spans=spans,
        )
    except KeyError as missing:
        raise ConfigError(f"results dict is missing key {missing}") from None
    except TypeError as bad:
        raise ConfigError(f"malformed results dict: {bad}") from None


def averaged_results_to_dict(averaged) -> Dict[str, Any]:
    """Flatten an :class:`~repro.experiments.common.AveragedResults`."""
    return {
        "format_version": RESULTS_FORMAT_VERSION,
        "policy": averaged.policy,
        "mean_waiting_time": averaged.mean_waiting_time,
        "mean_response_time": averaged.mean_response_time,
        "fairness": averaged.fairness,
        "subnet_utilization": averaged.subnet_utilization,
        "cpu_utilization": averaged.cpu_utilization,
        "disk_utilization": averaged.disk_utilization,
        "remote_fraction": averaged.remote_fraction,
        "completions": averaged.completions,
        "per_replication": [
            results_to_dict(run) for run in averaged.per_replication
        ],
    }


def averaged_results_from_dict(data: Dict[str, Any]):
    """Rebuild an :class:`~repro.experiments.common.AveragedResults`.

    Raises:
        ConfigError: On missing keys, unknown versions, or malformed values.
    """
    # Imported lazily: repro.experiments.common depends on repro.model, so a
    # top-level import here would be circular.
    from repro.experiments.common import AveragedResults

    if not isinstance(data, dict):
        raise ConfigError(f"expected a dict, got {type(data).__name__}")
    version = data.get("format_version", RESULTS_FORMAT_VERSION)
    if version != RESULTS_FORMAT_VERSION:
        raise ConfigError(f"unsupported results format version {version}")
    try:
        return AveragedResults(
            policy=data["policy"],
            mean_waiting_time=data["mean_waiting_time"],
            mean_response_time=data["mean_response_time"],
            fairness=data["fairness"],
            subnet_utilization=data["subnet_utilization"],
            cpu_utilization=data["cpu_utilization"],
            disk_utilization=data["disk_utilization"],
            remote_fraction=data["remote_fraction"],
            completions=data["completions"],
            per_replication=tuple(
                results_from_dict(run) for run in data["per_replication"]
            ),
        )
    except KeyError as missing:
        raise ConfigError(f"results dict is missing key {missing}") from None
    except TypeError as bad:
        raise ConfigError(f"malformed results dict: {bad}") from None


__all__ = [
    "FORMAT_VERSION",
    "RESULTS_FORMAT_VERSION",
    "FAULT_PLAN_FORMAT_VERSION",
    "config_to_dict",
    "config_from_dict",
    "save_config",
    "load_config",
    "WORKLOAD_FORMAT_VERSION",
    "fault_plan_to_dict",
    "fault_plan_from_dict",
    "save_fault_plan",
    "load_fault_plan",
    "workload_spec_to_dict",
    "workload_spec_from_dict",
    "save_workload_spec",
    "load_workload_spec",
    "workload_summary_to_dict",
    "workload_summary_from_dict",
    "availability_to_dict",
    "availability_from_dict",
    "decision_summary_to_dict",
    "decision_summary_from_dict",
    "span_summary_to_dict",
    "span_summary_from_dict",
    "interval_to_dict",
    "interval_from_dict",
    "results_to_dict",
    "results_from_dict",
    "averaged_results_to_dict",
    "averaged_results_from_dict",
]
