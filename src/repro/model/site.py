"""A DB site: CPU, disks, and their service interfaces (paper Figure 2).

Each site owns:

* one CPU modeled as a Processor-Sharing server, and
* ``num_disks`` disks modeled as FCFS servers, in one of two organizations
  (DESIGN.md ablation A1):

  - ``per_disk`` (default, matches Figure 2's separate disk boxes): each
    disk has its own queue and a page read is directed to a uniformly
    random disk;
  - ``shared``: a single queue feeds all disks (M/G/c style).

The terminals and the outgoing message buffer live elsewhere (terminals in
:mod:`repro.model.terminals`, the per-site buffer inside the ring), so this
class is purely the service-center bundle plus its statistics.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Generator, List

from repro.model.config import DISK_SHARED, SystemConfig
from repro.sim.engine import Simulator
from repro.sim.resources import FCFSServer, PSServer, ServiceRequest
from repro.telemetry.events import ServiceFinished, ServiceStarted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.query import Query
    from repro.model.workload import WorkloadGenerator


class DBSite:
    """Service centers of one database processing site."""

    def __init__(self, sim: Simulator, config: SystemConfig, index: int) -> None:
        self.sim = sim
        self.config = config
        self.index = index
        self.cpu = PSServer(sim, name=f"site{index}.cpu")
        spec = config.site
        if config.disk_organization == DISK_SHARED:
            self.disks: List[FCFSServer] = [
                FCFSServer(sim, name=f"site{index}.disks", servers=spec.num_disks)
            ]
        else:
            self.disks = [
                FCFSServer(sim, name=f"site{index}.disk{d}", servers=1)
                for d in range(spec.num_disks)
            ]

    # ------------------------------------------------------------------
    # Service interfaces used by the query life cycle
    # ------------------------------------------------------------------
    def disk_service(self, duration: float, rng: random.Random) -> ServiceRequest:
        """Request one page read of the given service time.

        In the ``per_disk`` organization the disk is chosen uniformly at
        random (replicated data is spread over the disks, so any page is
        equally likely to live on any disk).  In the ``shared`` organization
        there is a single multi-server station.
        """
        if len(self.disks) == 1:
            return self.disks[0].service(duration)
        disk = self.disks[rng.randrange(len(self.disks))]
        return disk.service(duration)

    def cpu_service(self, duration: float) -> ServiceRequest:
        """Request one CPU burst."""
        return self.cpu.service(duration)

    def execute(
        self,
        query: "Query",
        workload: "WorkloadGenerator",
        rng: random.Random,
    ) -> Generator[ServiceRequest, None, None]:
        """Run *query*'s disk/CPU cycles at this site (a generator).

        The paper's execution model: ``actual_reads`` alternating
        disk-read / CPU-burst cycles, drawn from the query's private
        random stream.  Sets ``query.started_at`` / ``query.finished_at``
        and accumulates ``query.service_acquired``; yielded from the
        query life cycle via ``yield from``.
        """
        sim = self.sim
        query.started_at = sim.now
        bus = sim.bus
        if bus.active and bus.wants(ServiceStarted):
            bus.emit(
                ServiceStarted(
                    time=sim.now,
                    qid=query.qid,
                    site=self.index,
                    reads=query.actual_reads,
                )
            )
        spec = query.spec
        for _ in range(query.actual_reads):
            disk_time = workload.disk_time(rng)
            yield self.disk_service(disk_time, rng)
            query.service_acquired += disk_time
            cpu_time = rng.expovariate(1.0 / spec.page_cpu_time)
            yield self.cpu_service(cpu_time)
            query.service_acquired += cpu_time
        query.finished_at = sim.now
        # Opt-in (wants_type): catch-all event logs never see this, so
        # pre-tracing event-stream digests stay byte-identical.
        if bus.active and bus.wants_type(ServiceFinished):
            bus.emit(
                ServiceFinished(
                    time=sim.now,
                    qid=query.qid,
                    site=self.index,
                    service_time=query.service_acquired,
                )
            )

    def abort_all(self) -> int:
        """Flush every job from the site's CPU and disks (site crash).

        Called by the fault injector when the site goes down.  Only the
        service centers' bookkeeping is torn down; the injector interrupts
        the affected query processes itself.

        Returns:
            The number of jobs flushed across all service centers.
        """
        flushed = self.cpu.abort_all()
        for disk in self.disks:
            flushed += disk.abort_all()
        return flushed

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        self.cpu.reset_statistics()
        for disk in self.disks:
            disk.reset_statistics()

    @property
    def cpu_utilization(self) -> float:
        return self.cpu.utilization()

    @property
    def disk_utilization(self) -> float:
        """Average per-disk utilization across the site's disks."""
        spec = self.config.site
        if self.config.disk_organization == DISK_SHARED:
            return self.disks[0].utilization()
        return sum(d.utilization() for d in self.disks) / spec.num_disks

    @property
    def disk_completions(self) -> int:
        return sum(d.completions for d in self.disks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DBSite {self.index} cpu_u={self.cpu_utilization:.3f}>"


__all__ = ["DBSite"]
