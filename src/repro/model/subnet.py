"""Alternative communications subnets: the abstraction and a mesh.

The paper's subnet is a token ring — one shared channel, so its capacity is
*constant* while the number of sites grows, which is exactly why Table 11
finds an interior optimum (6–8 sites) for dynamic allocation: beyond it the
channel congests faster than placement freedom helps.

To test that explanation rather than assume it, this module provides:

* :class:`Subnet` — the interface the system needs (duck-typed by
  :class:`~repro.model.ring.TokenRing`), and
* :class:`PointToPointNetwork` — a full mesh with an independent
  full-duplex link per ordered site pair.  Aggregate capacity grows as
  ``S·(S−1)``, so if the ring's channel is really the limiting factor, the
  interior optimum should flatten out on the mesh (the subnet-scaling
  ablation confirms it does).

The mesh needs no processes: each link keeps a ``busy_until`` horizon and
deliveries are scheduled events, FIFO per link, concurrent across links.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.model.ring import Message
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.monitor import Tally


class Subnet:
    """Interface between the system and its communications substrate."""

    def send(self, message: Message) -> None:
        """Queue *message*; its ``deliver`` callback runs on arrival."""
        raise NotImplementedError

    @property
    def utilization(self) -> float:
        """Capacity in use over the observation window, in [0, 1]."""
        raise NotImplementedError

    def pending_messages(self, site: Optional[int] = None) -> int:
        raise NotImplementedError

    def reset_statistics(self) -> None:
        raise NotImplementedError


class PointToPointNetwork(Subnet):
    """A full mesh: one dedicated link per ordered (source, destination).

    Messages on the same link serialize FIFO; distinct links never
    interfere.  Reported utilization is busy-time averaged over all
    ``S·(S−1)`` links — with the same traffic as a ring, it is roughly the
    ring's utilization divided by the link count.
    """

    def __init__(self, sim: Simulator, num_sites: int) -> None:
        if num_sites < 1:
            raise SimulationError("network needs at least one site")
        self.sim = sim
        self.num_sites = num_sites
        self._busy_until: Dict[Tuple[int, int], float] = {}
        self._pending: Dict[int, int] = {s: 0 for s in range(num_sites)}
        self._busy_accum = 0.0
        self._window_start = sim.now
        self.latencies = Tally(name="mesh.latency")
        self.messages_delivered = 0
        self.bytes_delivered = 0

    # ------------------------------------------------------------------
    # Subnet interface
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        if not 0 <= message.source < self.num_sites:
            raise SimulationError(f"invalid source site {message.source}")
        if not 0 <= message.destination < self.num_sites:
            raise SimulationError(f"invalid destination site {message.destination}")
        if message.source == message.destination:
            raise SimulationError("mesh has no self-links; deliver locally instead")
        if message.transfer_time < 0:
            raise SimulationError(f"negative transfer time {message.transfer_time}")
        now = self.sim.now
        message.enqueued_at = now
        link = (message.source, message.destination)
        start = max(now, self._busy_until.get(link, now))
        finish = start + message.transfer_time
        self._busy_until[link] = finish
        self._busy_accum += message.transfer_time
        self._pending[message.source] += 1
        self.sim.schedule_at(
            finish,
            lambda: self._deliver(message),
            label=f"mesh:{link[0]}->{link[1]}",
        )

    def _deliver(self, message: Message) -> None:
        self._pending[message.source] -= 1
        self.messages_delivered += 1
        self.bytes_delivered += message.size_bytes
        if message.enqueued_at is not None:
            self.latencies.record(self.sim.now - message.enqueued_at)
        message.deliver()

    @property
    def utilization(self) -> float:
        elapsed = self.sim.now - self._window_start
        links = self.num_sites * (self.num_sites - 1)
        if elapsed <= 0 or links == 0:
            return 0.0
        # Busy time already charged for transfers that extend past "now"
        # is clipped to the window to keep the value in [0, 1].
        busy = self._busy_accum - self._overhang()
        return max(0.0, busy / (elapsed * links))

    def _overhang(self) -> float:
        now = self.sim.now
        return sum(
            until - now for until in self._busy_until.values() if until > now
        )

    def pending_messages(self, site: Optional[int] = None) -> int:
        if site is None:
            return sum(self._pending.values())
        return self._pending[site]

    def reset_statistics(self) -> None:
        # Drop accumulated busy time except the part still in flight.
        self._busy_accum = self._overhang()
        self._window_start = self.sim.now
        self.latencies.reset()
        self.messages_delivered = 0
        self.bytes_delivered = 0


SUBNET_RING = "ring"
SUBNET_MESH = "mesh"


def build_subnet(kind: str, sim: Simulator, num_sites: int) -> Subnet:
    """Construct a subnet by name ('ring' or 'mesh')."""
    if kind == SUBNET_RING:
        from repro.model.ring import TokenRing

        return TokenRing(sim, num_sites)
    if kind == SUBNET_MESH:
        return PointToPointNetwork(sim, num_sites)
    raise SimulationError(f"unknown subnet kind {kind!r}")


__all__ = [
    "Subnet",
    "PointToPointNetwork",
    "SUBNET_RING",
    "SUBNET_MESH",
    "build_subnet",
]
