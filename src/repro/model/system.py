"""The distributed database system: wiring, query life cycle, run control.

:class:`DistributedDatabase` assembles the full model of the paper's
Figure 1/Figure 2 — sites, terminals, token ring, load board, workload
generator, metrics — around one allocation policy, and exposes ``run()``
to produce a :class:`~repro.model.metrics.SystemResults`.

The query life cycle (Figure 2's flow) is implemented in
:meth:`DistributedDatabase.execute_query`:

1. the allocation policy picks an execution site from optimizer estimates
   and the load board;
2. the query is committed to that site on the load board;
3. if remote, the query descriptor crosses the token ring;
4. the query cycles ``actual_reads`` times through disk (FCFS) and CPU (PS);
5. if remote, the results cross the ring back to the home site;
6. the query is released from the load board and recorded by the metrics.

With a :class:`~repro.faults.plan.FaultPlan` installed (see
:meth:`DistributedDatabase.install_faults`) the life cycle runs through
:meth:`DistributedDatabase._execute_query_faulted` instead: allocation
only sees *available* sites (through a
:class:`~repro.model.view.SystemView`), a crash of the execution site
aborts the query and re-enters allocation with bounded retry and
exponential backoff, and subnet transfers consult the plan's message
faults.  Without a plan the plain path is taken and nothing changes —
byte-for-byte (a chaos-determinism test pins this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

from repro.faults.errors import NoAvailableSiteError, SiteCrashedError
from repro.model.config import SystemConfig
from repro.model.loadboard import LoadBoard, LoadView
from repro.model.metrics import MetricsCollector, SystemResults, summarize
from repro.model.query import Query
from repro.model.ring import Message
from repro.model.subnet import build_subnet
from repro.model.site import DBSite
from repro.model.view import SystemView
from repro.model.workload import WorkloadGenerator
from repro.workloads.driver import WorkloadDriver, start_workload
from repro.workloads.spec import WorkloadSpec, normalize_workload
from repro.policies.base import AllocationPolicy
from repro.sim.engine import Simulator
from repro.sim.process import Hold, WaitFor
from repro.sim.rng import bernoulli
from repro.telemetry.events import (
    AllocationDecided,
    MessageDropped,
    QueryAborted,
    QueryAllocated,
    QueryLost,
    QueryRetried,
    QueryTransferred,
    RunEnded,
    RunStarted,
    WarmupEnded,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan


class DistributedDatabase:
    """A fully-replicated distributed database system under one policy.

    Args:
        config: Model parameters (see :mod:`repro.model.config`).
        policy: The allocation policy instance to drive; it is bound to
            this system.
        seed: Master seed for every random stream in the run.
        faults: Optional fault plan to install at time 0.  ``None`` (and
            a no-op plan) leave the system on the plain, faultless query
            life cycle.
        workload: Optional workload specification.  ``None`` (and the
            default closed spec, which normalizes to ``None``) drives
            the system with the paper's closed terminals, byte-identical
            to the seed; an open spec launches its arrival processes
            instead.  Workloads bind at construction — the arrival
            processes start at time 0 — so there is no
            ``install_workload`` analogue of :meth:`install_faults`.
        queue: Future-event-list implementation for the engine
            (``"heap"`` or ``"calendar"``); both replay byte-identically,
            see :func:`repro.sim.events.make_event_queue`.
    """

    def __init__(
        self,
        config: SystemConfig,
        policy: AllocationPolicy,
        seed: int = 0,
        faults: Optional["FaultPlan"] = None,
        workload: Optional[WorkloadSpec] = None,
        queue: str = "heap",
    ) -> None:
        self.config = config
        self.policy = policy
        self.sim = Simulator(seed=seed, queue=queue)
        #: The active fault injector, or ``None`` for faultless runs.
        self.fault_injector: Optional["FaultInjector"] = None
        self.sites: List[DBSite] = [
            DBSite(self.sim, config, index) for index in range(config.num_sites)
        ]
        # Named "ring" for the paper's default topology; with
        # subnet_kind="mesh" it is a point-to-point network instead.
        self.ring = build_subnet(
            config.network.subnet_kind, self.sim, config.num_sites
        )
        self.load_board = LoadBoard(
            config.num_sites, bus=self.sim.bus, clock=self.sim
        )
        self.workload = WorkloadGenerator(self.sim, config)
        self.metrics = MetricsCollector(config, bus=self.sim.bus)
        #: The normalized workload spec (``None`` = the paper's closed model).
        self.workload_spec: Optional[WorkloadSpec] = normalize_workload(workload)
        #: Admission/shed accounting for open workloads (``None`` when closed).
        self.workload_driver: Optional[WorkloadDriver] = None
        policy.bind(self)
        self._measure_start = 0.0
        if faults is not None:
            self.install_faults(faults)
        start_workload(self)

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def install_faults(self, plan: Optional["FaultPlan"]) -> None:
        """Install *plan* and switch to the degraded query life cycle.

        A ``None`` plan — and a no-op plan (one with no outages and no
        message faults) — installs nothing: the run stays on the plain
        path and is byte-identical to a faultless run.  Must be called at
        simulated time 0 (the constructor does this when ``faults=`` is
        passed), and at most once.
        """
        if plan is None or plan.is_noop:
            return
        if self.fault_injector is not None:
            raise RuntimeError("a fault plan is already installed")
        if self.sim.now != 0.0:
            raise RuntimeError(
                f"install_faults must be called at time 0, not {self.sim.now}"
            )
        from repro.faults.injector import FaultInjector

        self.fault_injector = FaultInjector(self, plan)

    def view_for(self, arrival_site: int) -> SystemView:
        """A :class:`SystemView` of this system for one decision."""
        return SystemView(self, arrival_site, injector=self.fault_injector)

    # ------------------------------------------------------------------
    # Load information (policies read through this indirection so the
    # stale-information extension can substitute a delayed view).
    # ------------------------------------------------------------------
    @property
    def load_view(self) -> LoadView:
        return self.load_board

    def load_info_age(self) -> float:
        """Age of the load information policies currently see.

        Always ``0.0`` here (the paper's free-oracle assumption: the load
        board is instantaneously current).  The stale-information
        extension overrides this with the time since its last snapshot.
        """
        return 0.0

    def candidate_sites(self, query: Query):
        """Sites eligible to execute *query*.

        Fully replicated database: every site qualifies.  The
        partial-replication extension overrides this with the set of sites
        holding a copy of the query's data.
        """
        return range(self.config.num_sites)

    # ------------------------------------------------------------------
    # Message-cost model (paper Table 3 / §5.1)
    # ------------------------------------------------------------------
    def _query_transfer_time(self, query: Query) -> float:
        network = self.config.network
        if network.msg_length is not None:
            return network.msg_length
        return query.spec.query_size * network.msg_time

    def _result_transfer_time(self, query: Query, reads: float) -> float:
        network = self.config.network
        if network.msg_length is not None:
            return network.msg_length
        result_bytes = query.spec.result_fraction * reads * network.page_size
        return result_bytes * network.msg_time

    def estimated_transfer_time(self, query: Query) -> float:
        """Figure 6's ``Transfer_Time(q)`` (optimizer view)."""
        return self._query_transfer_time(query)

    def estimated_return_time(self, query: Query) -> float:
        """Figure 6's ``Return_Time(q)`` (optimizer view)."""
        return self._result_transfer_time(query, query.estimated_reads)

    # ------------------------------------------------------------------
    # Decision audit
    # ------------------------------------------------------------------
    def _emit_decision(
        self, query: Query, view: SystemView, chosen: int, attempt: int = 0
    ) -> None:
        """Publish the decision-audit record for one ``select`` call.

        Opt-in via ``wants_type`` (like :class:`TraceMessage`): catch-all
        subscribers never trigger construction, so existing event-stream
        digests are unchanged and the extra load-board reads only happen
        when a :class:`~repro.telemetry.tracing.decisions.DecisionAudit`
        is attached.
        """
        bus = self.sim.bus
        if not bus.active or not bus.wants_type(AllocationDecided):
            return
        seen = view.loads.query_distribution()
        true = self.load_board.query_distribution()
        candidates = view.candidates(query)
        est_service = query.estimated_cpu_demand + query.estimated_io_demand(
            self.config.site.disk_time
        )
        bus.emit(
            AllocationDecided(
                time=self.sim.now,
                qid=query.qid,
                class_name=query.spec.name,
                home_site=query.home_site,
                chosen_site=chosen,
                staleness=view.load_info_age(),
                seen_loads=",".join(map(str, seen)),
                true_loads=",".join(map(str, true)),
                candidates=",".join(map(str, candidates)),
                est_service=est_service,
                est_transfer=view.estimated_transfer_time(query),
                est_return=view.estimated_return_time(query),
                attempt=attempt,
            )
        )

    # ------------------------------------------------------------------
    # Query life cycle
    # ------------------------------------------------------------------
    def execute_query(self, query: Query, query_rng):
        """Drive one query from allocation to results-at-home (a generator).

        Called from the terminal process via ``yield from``.  Dispatches
        to the degraded life cycle when a fault plan is installed.
        """
        injector = self.fault_injector
        if injector is not None:
            return (yield from self._execute_query_faulted(query, query_rng, injector))
        return (yield from self._execute_query_plain(query, query_rng))

    def _execute_query_plain(self, query: Query, query_rng):
        """The paper's Figure-2 life cycle (no faults anywhere)."""
        sim = self.sim
        view = self.view_for(query.home_site)
        execution_site = self.policy.select(query, view)
        if not 0 <= execution_site < self.config.num_sites:
            raise ValueError(
                f"policy {self.policy.name} chose invalid site {execution_site}"
            )
        self._emit_decision(query, view, execution_site)
        query.allocated_at = sim.now
        query.execution_site = execution_site
        self.load_board.register(query, execution_site)
        bus = sim.bus
        if bus.active and bus.wants(QueryAllocated):
            bus.emit(
                QueryAllocated(
                    time=sim.now,
                    qid=query.qid,
                    class_name=query.spec.name,
                    home_site=query.home_site,
                    execution_site=execution_site,
                )
            )

        if execution_site != query.home_site:
            transfer_time = self._query_transfer_time(query)
            if bus.active and bus.wants(QueryTransferred):
                bus.emit(
                    QueryTransferred(
                        time=sim.now,
                        qid=query.qid,
                        source=query.home_site,
                        destination=execution_site,
                        kind="query",
                        transfer_time=transfer_time,
                    )
                )
            yield WaitFor(
                lambda resume: self.ring.send(
                    Message(
                        source=query.home_site,
                        destination=execution_site,
                        transfer_time=transfer_time,
                        deliver=resume,
                        kind="query",
                        size_bytes=query.spec.query_size,
                    )
                )
            )

        site = self.sites[execution_site]
        yield from site.execute(query, self.workload, query_rng)
        spec = query.spec

        if execution_site != query.home_site:
            result_bytes = int(
                spec.result_fraction * query.actual_reads * self.config.network.page_size
            )
            return_time = self._result_transfer_time(query, query.actual_reads)
            if bus.active and bus.wants(QueryTransferred):
                bus.emit(
                    QueryTransferred(
                        time=sim.now,
                        qid=query.qid,
                        source=execution_site,
                        destination=query.home_site,
                        kind="result",
                        transfer_time=return_time,
                    )
                )
            yield WaitFor(
                lambda resume: self.ring.send(
                    Message(
                        source=execution_site,
                        destination=query.home_site,
                        transfer_time=return_time,
                        deliver=resume,
                        kind="result",
                        size_bytes=result_bytes,
                    )
                )
            )

        query.completed_at = sim.now
        self.load_board.deregister(query, execution_site)
        self.metrics.record(query)

    def _execute_query_faulted(
        self, query: Query, query_rng, injector: "FaultInjector"
    ):
        """The degraded query life cycle (see ``docs/faults.md``).

        Differences from the plain path:

        * allocation goes through a :class:`SystemView`, so the policy
          only ever sees *available* sites;
        * when every eligible site is down, the query backs off and
          re-enters allocation (bounded by ``plan.max_retries``);
        * a crash of the execution site interrupts the query with
          :class:`SiteCrashedError`; it forfeits acquired service, is
          released from the load board, and re-enters allocation with
          exponential backoff;
        * subnet transfers go through :meth:`_transfer_with_faults`.

        Terminals survive crashes: a lost query simply returns here and
        the terminal proceeds to its next think time.
        """
        sim = self.sim
        bus = sim.bus
        plan = injector.plan
        attempts = 0
        while True:
            view = self.view_for(query.home_site)
            try:
                execution_site = self.policy.select(query, view)
            except NoAvailableSiteError:
                # Every eligible site is down right now: count the
                # exposure and back off before trying again.
                query.fault_exposure += 1
                attempts += 1
                if attempts > plan.max_retries:
                    injector.queries_lost += 1
                    if bus.active and bus.wants(QueryLost):
                        bus.emit(
                            QueryLost(time=sim.now, qid=query.qid, attempts=attempts)
                        )
                    return
                injector.queries_retried += 1
                backoff = plan.backoff(attempts)
                if bus.active and bus.wants(QueryRetried):
                    bus.emit(
                        QueryRetried(
                            time=sim.now,
                            qid=query.qid,
                            attempt=attempts,
                            backoff=backoff,
                        )
                    )
                yield Hold(backoff)
                continue
            if not 0 <= execution_site < self.config.num_sites:
                raise ValueError(
                    f"policy {self.policy.name} chose invalid site {execution_site}"
                )
            self._emit_decision(query, view, execution_site, attempt=attempts)
            query.allocated_at = sim.now
            query.execution_site = execution_site
            self.load_board.register(query, execution_site)
            if bus.active and bus.wants(QueryAllocated):
                bus.emit(
                    QueryAllocated(
                        time=sim.now,
                        qid=query.qid,
                        class_name=query.spec.name,
                        home_site=query.home_site,
                        execution_site=execution_site,
                    )
                )
            try:
                if execution_site != query.home_site:
                    yield from self._transfer_with_faults(
                        query,
                        source=query.home_site,
                        destination=execution_site,
                        kind="query",
                        transfer_time=self._query_transfer_time(query),
                        size_bytes=query.spec.query_size,
                        injector=injector,
                    )
                # The destination may have crashed while the query was in
                # flight (in-flight processes are not crash victims — they
                # are not executing anywhere yet).
                if not injector.is_up(execution_site):
                    raise SiteCrashedError(execution_site)
                site = self.sites[execution_site]
                process = sim.current_process
                assert process is not None
                injector.begin_execution(execution_site, process)
                try:
                    yield from site.execute(query, self.workload, query_rng)
                finally:
                    injector.end_execution(execution_site, process)
            except SiteCrashedError:
                # Aborted: forfeit acquired service, release the board
                # entry, and re-enter allocation.
                self.load_board.deregister(query, execution_site)
                injector.queries_aborted += 1
                query.fault_exposure += 1
                query.service_acquired = 0.0
                query.execution_site = None
                query.started_at = None
                query.finished_at = None
                attempts += 1
                if bus.active and bus.wants(QueryAborted):
                    bus.emit(
                        QueryAborted(
                            time=sim.now,
                            qid=query.qid,
                            site=execution_site,
                            attempt=attempts,
                        )
                    )
                if attempts > plan.max_retries:
                    injector.queries_lost += 1
                    if bus.active and bus.wants(QueryLost):
                        bus.emit(
                            QueryLost(time=sim.now, qid=query.qid, attempts=attempts)
                        )
                    return
                injector.queries_retried += 1
                backoff = plan.backoff(attempts)
                if bus.active and bus.wants(QueryRetried):
                    bus.emit(
                        QueryRetried(
                            time=sim.now,
                            qid=query.qid,
                            attempt=attempts,
                            backoff=backoff,
                        )
                    )
                yield Hold(backoff)
                continue
            # Execution finished cleanly; ship the results home.
            if execution_site != query.home_site:
                result_bytes = int(
                    query.spec.result_fraction
                    * query.actual_reads
                    * self.config.network.page_size
                )
                yield from self._transfer_with_faults(
                    query,
                    source=execution_site,
                    destination=query.home_site,
                    kind="result",
                    transfer_time=self._result_transfer_time(
                        query, query.actual_reads
                    ),
                    size_bytes=result_bytes,
                    injector=injector,
                )
            query.completed_at = sim.now
            self.load_board.deregister(query, execution_site)
            injector.record_completion(query)
            self.metrics.record(query)
            return

    def _transfer_with_faults(
        self,
        query: Query,
        source: int,
        destination: int,
        kind: str,
        transfer_time: float,
        size_bytes: int,
        injector: "FaultInjector",
    ) -> Generator[object, object, None]:
        """One subnet transfer under the plan's message faults.

        Lost messages are retransmitted after ``retransmit_timeout``,
        at most ``max_retransmits`` times; after that the transfer is
        forced through (the model's stand-in for an out-of-band repair).
        Every drop counts against the query's fault exposure.
        """
        sim = self.sim
        bus = sim.bus
        messages = injector.plan.messages
        if messages is not None and not messages.is_noop:
            if messages.extra_delay > 0.0:
                yield Hold(messages.extra_delay)
            if messages.loss_prob > 0.0:
                rng = injector.net_rng
                drops = 0
                while drops < messages.max_retransmits and bernoulli(
                    rng, messages.loss_prob
                ):
                    drops += 1
                    injector.messages_dropped += 1
                    query.fault_exposure += 1
                    if bus.active and bus.wants(MessageDropped):
                        bus.emit(
                            MessageDropped(
                                time=sim.now,
                                source=source,
                                destination=destination,
                                kind=kind,
                                qid=query.qid,
                            )
                        )
                    yield Hold(messages.retransmit_timeout)
        if bus.active and bus.wants(QueryTransferred):
            bus.emit(
                QueryTransferred(
                    time=sim.now,
                    qid=query.qid,
                    source=source,
                    destination=destination,
                    kind=kind,
                    transfer_time=transfer_time,
                )
            )
        yield WaitFor(
            lambda resume: self.ring.send(
                Message(
                    source=source,
                    destination=destination,
                    transfer_time=transfer_time,
                    deliver=resume,
                    kind=kind,
                    size_bytes=size_bytes,
                )
            )
        )

    # ------------------------------------------------------------------
    # Run control and statistics
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Truncate every monitor (call at the end of warmup)."""
        self.metrics.reset()
        self.ring.reset_statistics()
        for site in self.sites:
            site.reset_statistics()
        if self.fault_injector is not None:
            self.fault_injector.reset_statistics()
        if self.workload_driver is not None:
            self.workload_driver.reset_statistics()
        self._measure_start = self.sim.now

    def run(self, warmup: float, duration: float) -> SystemResults:
        """Simulate ``warmup + duration`` time units and summarize.

        Statistics gathered during the warmup period are discarded; the
        returned results cover exactly the ``duration`` window.
        """
        if warmup < 0 or duration <= 0:
            raise ValueError("need warmup >= 0 and duration > 0")
        sim = self.sim
        bus = sim.bus
        if bus.active and bus.wants(RunStarted):
            bus.emit(
                RunStarted(
                    time=sim.now,
                    policy=self.policy.name,
                    seed=sim.seed,
                    warmup=warmup,
                    duration=duration,
                )
            )
        if warmup > 0:
            sim.run(until=warmup)
        self.reset_statistics()
        # Emitted *after* truncation so bus-driven consumers (e.g. the
        # timeline sampler) observe post-reset monitors at the boundary.
        if bus.active and bus.wants(WarmupEnded):
            bus.emit(WarmupEnded(time=sim.now))
        sim.run(until=warmup + duration)
        if bus.active and bus.wants(RunEnded):
            bus.emit(RunEnded(time=sim.now, completions=self.metrics.completions))
        return self.results()

    def results(self) -> SystemResults:
        """Summarize the statistics collected since the last reset."""
        sites = self.sites
        cpu_util = sum(s.cpu_utilization for s in sites) / len(sites)
        disk_util = sum(s.disk_utilization for s in sites) / len(sites)
        availability = (
            self.fault_injector.availability_summary()
            if self.fault_injector is not None
            else None
        )
        workload = (
            self.workload_driver.summary()
            if self.workload_driver is not None
            else None
        )
        return summarize(
            self.metrics,
            policy=self.policy.name,
            subnet_utilization=self.ring.utilization,
            cpu_utilization=cpu_util,
            disk_utilization=disk_util,
            measured_time=self.sim.now - self._measure_start,
            availability=availability,
            workload=workload,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DistributedDatabase sites={self.config.num_sites} "
            f"policy={self.policy.name} t={self.sim.now:.6g}>"
        )


__all__ = ["DistributedDatabase"]
