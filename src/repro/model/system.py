"""The distributed database system: wiring, query life cycle, run control.

:class:`DistributedDatabase` assembles the full model of the paper's
Figure 1/Figure 2 — sites, terminals, token ring, load board, workload
generator, metrics — around one allocation policy, and exposes ``run()``
to produce a :class:`~repro.model.metrics.SystemResults`.

The query life cycle (Figure 2's flow) is implemented in
:meth:`DistributedDatabase.execute_query`:

1. the allocation policy picks an execution site from optimizer estimates
   and the load board;
2. the query is committed to that site on the load board;
3. if remote, the query descriptor crosses the token ring;
4. the query cycles ``actual_reads`` times through disk (FCFS) and CPU (PS);
5. if remote, the results cross the ring back to the home site;
6. the query is released from the load board and recorded by the metrics.
"""

from __future__ import annotations

from typing import List

from repro.model.config import SystemConfig
from repro.model.loadboard import LoadBoard, LoadView
from repro.model.metrics import MetricsCollector, SystemResults, summarize
from repro.model.query import Query
from repro.model.ring import Message
from repro.model.subnet import build_subnet
from repro.model.site import DBSite
from repro.model.terminals import start_terminals
from repro.model.workload import WorkloadGenerator
from repro.policies.base import AllocationPolicy
from repro.sim.engine import Simulator
from repro.sim.process import WaitFor
from repro.telemetry.events import (
    QueryAllocated,
    QueryTransferred,
    RunEnded,
    RunStarted,
    WarmupEnded,
)


class DistributedDatabase:
    """A fully-replicated distributed database system under one policy.

    Args:
        config: Model parameters (see :mod:`repro.model.config`).
        policy: The allocation policy instance to drive; it is bound to
            this system.
        seed: Master seed for every random stream in the run.
    """

    def __init__(
        self, config: SystemConfig, policy: AllocationPolicy, seed: int = 0
    ) -> None:
        self.config = config
        self.policy = policy
        self.sim = Simulator(seed=seed)
        self.sites: List[DBSite] = [
            DBSite(self.sim, config, index) for index in range(config.num_sites)
        ]
        # Named "ring" for the paper's default topology; with
        # subnet_kind="mesh" it is a point-to-point network instead.
        self.ring = build_subnet(
            config.network.subnet_kind, self.sim, config.num_sites
        )
        self.load_board = LoadBoard(
            config.num_sites, bus=self.sim.bus, clock=self.sim
        )
        self.workload = WorkloadGenerator(self.sim, config)
        self.metrics = MetricsCollector(config, bus=self.sim.bus)
        policy.bind(self)
        self._measure_start = 0.0
        start_terminals(self)

    # ------------------------------------------------------------------
    # Load information (policies read through this indirection so the
    # stale-information extension can substitute a delayed view).
    # ------------------------------------------------------------------
    @property
    def load_view(self) -> LoadView:
        return self.load_board

    def load_info_age(self) -> float:
        """Age of the load information policies currently see.

        Always ``0.0`` here (the paper's free-oracle assumption: the load
        board is instantaneously current).  The stale-information
        extension overrides this with the time since its last snapshot.
        """
        return 0.0

    def candidate_sites(self, query: Query):
        """Sites eligible to execute *query*.

        Fully replicated database: every site qualifies.  The
        partial-replication extension overrides this with the set of sites
        holding a copy of the query's data.
        """
        return range(self.config.num_sites)

    # ------------------------------------------------------------------
    # Message-cost model (paper Table 3 / §5.1)
    # ------------------------------------------------------------------
    def _query_transfer_time(self, query: Query) -> float:
        network = self.config.network
        if network.msg_length is not None:
            return network.msg_length
        return query.spec.query_size * network.msg_time

    def _result_transfer_time(self, query: Query, reads: float) -> float:
        network = self.config.network
        if network.msg_length is not None:
            return network.msg_length
        result_bytes = query.spec.result_fraction * reads * network.page_size
        return result_bytes * network.msg_time

    def estimated_transfer_time(self, query: Query) -> float:
        """Figure 6's ``Transfer_Time(q)`` (optimizer view)."""
        return self._query_transfer_time(query)

    def estimated_return_time(self, query: Query) -> float:
        """Figure 6's ``Return_Time(q)`` (optimizer view)."""
        return self._result_transfer_time(query, query.estimated_reads)

    # ------------------------------------------------------------------
    # Query life cycle
    # ------------------------------------------------------------------
    def execute_query(self, query: Query, query_rng):
        """Drive one query from allocation to results-at-home (a generator).

        Called from the terminal process via ``yield from``.
        """
        sim = self.sim
        execution_site = self.policy.select_site(query, query.home_site)
        if not 0 <= execution_site < self.config.num_sites:
            raise ValueError(
                f"policy {self.policy.name} chose invalid site {execution_site}"
            )
        query.allocated_at = sim.now
        query.execution_site = execution_site
        self.load_board.register(query, execution_site)
        bus = sim.bus
        if bus.active and bus.wants(QueryAllocated):
            bus.emit(
                QueryAllocated(
                    time=sim.now,
                    qid=query.qid,
                    class_name=query.spec.name,
                    home_site=query.home_site,
                    execution_site=execution_site,
                )
            )

        if execution_site != query.home_site:
            transfer_time = self._query_transfer_time(query)
            if bus.active and bus.wants(QueryTransferred):
                bus.emit(
                    QueryTransferred(
                        time=sim.now,
                        qid=query.qid,
                        source=query.home_site,
                        destination=execution_site,
                        kind="query",
                        transfer_time=transfer_time,
                    )
                )
            yield WaitFor(
                lambda resume: self.ring.send(
                    Message(
                        source=query.home_site,
                        destination=execution_site,
                        transfer_time=transfer_time,
                        deliver=resume,
                        kind="query",
                        size_bytes=query.spec.query_size,
                    )
                )
            )

        site = self.sites[execution_site]
        yield from site.execute(query, self.workload, query_rng)
        spec = query.spec

        if execution_site != query.home_site:
            result_bytes = int(
                spec.result_fraction * query.actual_reads * self.config.network.page_size
            )
            return_time = self._result_transfer_time(query, query.actual_reads)
            if bus.active and bus.wants(QueryTransferred):
                bus.emit(
                    QueryTransferred(
                        time=sim.now,
                        qid=query.qid,
                        source=execution_site,
                        destination=query.home_site,
                        kind="result",
                        transfer_time=return_time,
                    )
                )
            yield WaitFor(
                lambda resume: self.ring.send(
                    Message(
                        source=execution_site,
                        destination=query.home_site,
                        transfer_time=return_time,
                        deliver=resume,
                        kind="result",
                        size_bytes=result_bytes,
                    )
                )
            )

        query.completed_at = sim.now
        self.load_board.deregister(query, execution_site)
        self.metrics.record(query)

    # ------------------------------------------------------------------
    # Run control and statistics
    # ------------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Truncate every monitor (call at the end of warmup)."""
        self.metrics.reset()
        self.ring.reset_statistics()
        for site in self.sites:
            site.reset_statistics()
        self._measure_start = self.sim.now

    def run(self, warmup: float, duration: float) -> SystemResults:
        """Simulate ``warmup + duration`` time units and summarize.

        Statistics gathered during the warmup period are discarded; the
        returned results cover exactly the ``duration`` window.
        """
        if warmup < 0 or duration <= 0:
            raise ValueError("need warmup >= 0 and duration > 0")
        sim = self.sim
        bus = sim.bus
        if bus.active and bus.wants(RunStarted):
            bus.emit(
                RunStarted(
                    time=sim.now,
                    policy=self.policy.name,
                    seed=sim.seed,
                    warmup=warmup,
                    duration=duration,
                )
            )
        if warmup > 0:
            sim.run(until=warmup)
        self.reset_statistics()
        # Emitted *after* truncation so bus-driven consumers (e.g. the
        # timeline sampler) observe post-reset monitors at the boundary.
        if bus.active and bus.wants(WarmupEnded):
            bus.emit(WarmupEnded(time=sim.now))
        sim.run(until=warmup + duration)
        if bus.active and bus.wants(RunEnded):
            bus.emit(RunEnded(time=sim.now, completions=self.metrics.completions))
        return self.results()

    def results(self) -> SystemResults:
        """Summarize the statistics collected since the last reset."""
        sites = self.sites
        cpu_util = sum(s.cpu_utilization for s in sites) / len(sites)
        disk_util = sum(s.disk_utilization for s in sites) / len(sites)
        return summarize(
            self.metrics,
            policy=self.policy.name,
            subnet_utilization=self.ring.utilization,
            cpu_utilization=cpu_util,
            disk_utilization=disk_util,
            measured_time=self.sim.now - self._measure_start,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DistributedDatabase sites={self.config.num_sites} "
            f"policy={self.policy.name} t={self.sim.now:.6g}>"
        )


__all__ = ["DistributedDatabase"]
