"""Deprecated location of the closed-terminal processes.

The terminal processes moved to :mod:`repro.workloads.closed` as part of
the pluggable-workload redesign; this module survives as a shim so
external callers keep working.  ``terminal_process`` is re-exported
unchanged; :func:`start_terminals` warns and delegates to
:func:`repro.workloads.closed.launch_closed_terminals`.

Internal code must not call :func:`start_terminals` — an AST test
(``tests/workloads/test_terminals_shim.py``) pins that, the same way the
``select_site`` migration was pinned.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.workloads.closed import launch_closed_terminals, terminal_process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import DistributedDatabase


def start_terminals(system: "DistributedDatabase") -> None:
    """Deprecated: launch every terminal process of every site.

    .. deprecated::
        Construct the system with the default workload (or an explicit
        :class:`repro.workloads.ClosedTerminals` spec) instead of wiring
        terminals directly; the constructor already starts the workload.
        Direct callers should migrate to
        :func:`repro.workloads.closed.launch_closed_terminals`.
    """
    warnings.warn(
        "start_terminals() is deprecated; the DistributedDatabase "
        "constructor starts the workload itself. Direct callers should "
        "use repro.workloads.closed.launch_closed_terminals().",
        DeprecationWarning,
        stacklevel=2,
    )
    launch_closed_terminals(system)


__all__ = ["terminal_process", "start_terminals"]
