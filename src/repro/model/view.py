"""The policies' window onto the system: :class:`SystemView`.

The redesigned policy API (PR 4) gives every allocation decision exactly
one input besides the query: a ``SystemView``.  The view bundles what a
policy is *allowed* to see —

* the arrival site of the decision,
* the candidate sites (filtered down to *available* sites when a fault
  injector is installed),
* the load information (masked so that entries for down sites read zero,
  and frozen-stale while load broadcasts are dark),
* the optimizer's transfer-time estimates, and
* named random streams for randomized policies —

and nothing else.  Policies therefore cannot accidentally depend on live
model internals, and degraded-mode behaviour (skip down sites, fall back
to LOCAL, fall back to anything that is up) comes for free: the view
simply never offers an unavailable site.

Everything is resolved lazily, so a view over a faultless system costs
one small object per decision and never touches the fault layer.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional

from repro.faults.errors import NoAvailableSiteError
from repro.model.loadboard import LoadView
from repro.model.query import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.model.config import SystemConfig


class MaskedLoadView(LoadView):
    """A load view with the entries of down sites masked to zero.

    The paper's load board is an oracle; once sites can crash, the honest
    model is that a crashed site stops broadcasting and its last entry is
    *known stale*.  Policies should not be attracted to a zero-load ghost,
    so the view both masks the entry and (through
    :meth:`SystemView.candidates`) removes the site from consideration.
    """

    def __init__(self, base: LoadView, is_up: List[bool]) -> None:
        self._base = base
        self._is_up = is_up

    def num_queries(self, site: int) -> int:
        return self._base.num_queries(site) if self._is_up[site] else 0

    def num_io_queries(self, site: int) -> int:
        return self._base.num_io_queries(site) if self._is_up[site] else 0

    def num_cpu_queries(self, site: int) -> int:
        return self._base.num_cpu_queries(site) if self._is_up[site] else 0

    def query_distribution(self) -> List[int]:
        base = self._base.query_distribution()
        return [n if self._is_up[s] else 0 for s, n in enumerate(base)]


class SystemView:
    """Everything one allocation decision may look at.

    Args:
        system: The system (or a stub exposing ``config``,
            ``candidate_sites``, ``load_view``, ``load_info_age``,
            ``estimated_transfer_time``, ``estimated_return_time`` and
            ``sim`` as needed — attributes are resolved lazily, so test
            stubs only need what the policy under test actually touches).
        arrival_site: The site whose terminal issued the query.
        injector: The fault injector when a plan is installed; ``None``
            for faultless runs (the view then adds zero overhead).
    """

    __slots__ = ("system", "arrival_site", "injector")

    def __init__(
        self,
        system: object,
        arrival_site: int,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.system = system
        self.arrival_site = arrival_site
        self.injector = injector

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def config(self) -> "SystemConfig":
        """The system's configuration (read-only model parameters)."""
        return self.system.config  # type: ignore[attr-defined]

    @property
    def num_sites(self) -> int:
        return int(self.config.num_sites)

    def is_available(self, site: int) -> bool:
        """Whether *site* is currently up (always True without faults)."""
        if self.injector is None:
            return True
        return self.injector.is_up(site)

    def candidates(self, query: Query) -> List[int]:
        """Sites eligible *and available* to execute *query*, in order.

        Raises:
            NoAvailableSiteError: When every eligible site is down; the
                degraded query life cycle catches this and backs off.
        """
        eligible = self.system.candidate_sites(query)  # type: ignore[attr-defined]
        if self.injector is None:
            return list(eligible)
        available = [site for site in eligible if self.injector.is_up(site)]
        if not available:
            raise NoAvailableSiteError(
                f"no available site for query {query.qid} "
                f"(eligible: {list(eligible)})"
            )
        return available

    # ------------------------------------------------------------------
    # Load information
    # ------------------------------------------------------------------
    @property
    def loads(self) -> LoadView:
        """The load information this decision may consult.

        Without faults this is the system's live view (the paper's
        oracle, or the stale-information extension's snapshot).  With a
        fault injector, entries for down sites are masked to zero, and
        while load broadcasts are dark the *frozen* snapshot from outage
        start is served instead of live counts.
        """
        injector = self.injector
        if injector is None:
            return self.system.load_view  # type: ignore[attr-defined]
        dark = injector.dark_view
        base: LoadView = dark if dark is not None else self.system.load_view  # type: ignore[attr-defined]
        is_up = [injector.is_up(s) for s in range(self.num_sites)]
        if all(is_up):
            return base
        return MaskedLoadView(base, is_up)

    def load_info_age(self) -> float:
        """Age of the load information (0.0 for the oracle board)."""
        return float(self.system.load_info_age())  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Optimizer estimates
    # ------------------------------------------------------------------
    def estimated_transfer_time(self, query: Query) -> float:
        """Figure 6's ``Transfer_Time(q)`` (optimizer view)."""
        return float(self.system.estimated_transfer_time(query))  # type: ignore[attr-defined]

    def estimated_return_time(self, query: Query) -> float:
        """Figure 6's ``Return_Time(q)`` (optimizer view)."""
        return float(self.system.estimated_return_time(query))  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """The run's named random stream *name* (for randomized policies)."""
        return self.system.sim.rng.stream(name)  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        faulty = "" if self.injector is None else " degraded"
        return f"<SystemView arrival={self.arrival_site}{faulty}>"


__all__ = ["MaskedLoadView", "SystemView"]
