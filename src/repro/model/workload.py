"""Workload generation: turning Table 7's distributions into queries.

Per the paper's §5.1:

* the class of a new query is I/O-bound with probability ``class_io_prob``
  (generally: drawn from ``class_probs``);
* the number of reads has an exponential distribution with mean
  ``num_reads`` (rounded to an integer cycle count for execution; the raw
  draw is kept as the optimizer's estimate);
* CPU bursts are exponential with the class's ``page_cpu_time`` mean;
* disk service times are uniform on ``disk_time ± disk_time*disk_time_dev``;
* think times are exponential with mean ``think_time``.

Every query gets its *own* derived random stream (keyed by home site,
terminal, and serial number), so the sequence of queries **and their
realized service demands** is identical across allocation policies under the
same master seed.  This is the common-random-numbers discipline that makes
policy comparisons low-variance: BNQ and LERT face literally the same
workload, they only place it differently.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.model.config import SystemConfig
from repro.model.query import Query, make_query
from repro.sim.engine import Simulator
from repro.telemetry.events import QueryCreated


class WorkloadGenerator:
    """Samples queries and their service demands for one simulation run."""

    def __init__(self, sim: Simulator, config: SystemConfig) -> None:
        self.sim = sim
        self.config = config
        # Per-run query id counter.  Query ids seed derived random streams
        # in some extensions (e.g. update application), so they must be a
        # pure function of the run, not of process history — the
        # process-global default counter in ``repro.model.query`` would
        # make results depend on how many simulations ran earlier in the
        # same process and break serial/parallel bit-equality.
        self._queries_created = 0
        # Cumulative class probabilities for inverse-CDF class sampling.
        # SystemConfig validates that class_probs sums to 1.0 within 1e-9,
        # and _sample_class falls through to the last class anyway, so no
        # rounding absorption is needed at cumulative[-1].
        cumulative = []
        acc = 0.0
        for p in config.class_probs:
            acc += p
            cumulative.append(acc)
        self._cumulative_probs = tuple(cumulative)

    # ------------------------------------------------------------------
    # Query creation
    # ------------------------------------------------------------------
    def new_query(
        self, home_site: int, terminal_id: int, serial: int
    ) -> Tuple[Query, random.Random]:
        """Create the next query for a terminal.

        Returns the query plus its private random stream; the stream is used
        for every stochastic choice the query makes while executing (CPU
        bursts, disk times, disk selection), keeping realized demands
        policy-independent.
        """
        query_rng = self.sim.rng.stream(
            f"query.s{home_site}.t{terminal_id}.n{serial}"
        )
        return self._build_query(home_site, query_rng), query_rng

    def new_open_query(
        self, home_site: int, serial: int
    ) -> Tuple[Query, random.Random]:
        """Create the *serial*-th open-workload arrival at *home_site*.

        The open analogue of :meth:`new_query`: same class sampling and
        demand draws, but the derived stream is keyed by the site's
        offered-arrival serial number rather than a terminal — open
        arrivals have no terminal, and serials count *offered* arrivals
        (shed included) so the stream never depends on admission limits.
        """
        query_rng = self.sim.rng.stream(f"query.s{home_site}.open.n{serial}")
        return self._build_query(home_site, query_rng), query_rng

    def _build_query(self, home_site: int, query_rng: random.Random) -> Query:
        """Sample one query's class and demands from its private stream."""
        class_index = self._sample_class(query_rng)
        spec = self.config.classes[class_index]
        estimated_reads = query_rng.expovariate(1.0 / spec.num_reads)
        self._queries_created += 1
        query = make_query(
            self.config,
            class_index=class_index,
            home_site=home_site,
            estimated_reads=estimated_reads,
            created_at=self.sim.now,
            qid=self._queries_created,
        )
        bus = self.sim.bus
        if bus.active and bus.wants(QueryCreated):
            bus.emit(
                QueryCreated(
                    time=self.sim.now,
                    qid=query.qid,
                    class_name=spec.name,
                    home_site=home_site,
                    estimated_reads=estimated_reads,
                )
            )
        return query

    def _sample_class(self, rng: random.Random) -> int:
        u = rng.random()
        for index, threshold in enumerate(self._cumulative_probs):
            if u < threshold:
                return index
        return len(self._cumulative_probs) - 1

    # ------------------------------------------------------------------
    # Per-activity service-time draws
    # ------------------------------------------------------------------
    def think_time(self, rng: random.Random) -> float:
        """One terminal think period."""
        mean = self.config.site.think_time
        if mean <= 0:
            return 0.0
        return rng.expovariate(1.0 / mean)

    def disk_time(self, rng: random.Random) -> float:
        """One page-read service time: U(disk_time ± dev·disk_time)."""
        spec = self.config.site
        half_width = spec.disk_time * spec.disk_time_dev
        if half_width == 0:
            return spec.disk_time
        return rng.uniform(spec.disk_time - half_width, spec.disk_time + half_width)

    def cpu_burst(self, query: Query, rng: random.Random) -> float:
        """One per-page CPU burst: exponential with the class mean."""
        return rng.expovariate(1.0 / query.spec.page_cpu_time)


__all__ = ["WorkloadGenerator"]
