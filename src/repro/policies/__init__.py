"""Dynamic query-allocation policies (the paper's §4 plus extensions).

* :class:`LocalPolicy` — always run at the arrival site (baseline).
* :class:`RandomPolicy` — uniform random site (no-information control).
* :class:`BNQPolicy` — balance the number of queries (§4.1).
* :class:`BNQRDPolicy` — balance counts by resource-demand class (§4.2).
* :class:`LERTPolicy` — least estimated response time (§4.3).
* :class:`LERTMVAPolicy` — LERT with an MVA response-time model (ablation).

Use :func:`make_policy` to construct policies by name.
"""

from repro.policies.base import (
    AllocationPolicy,
    CostBasedPolicy,
    LegacyPolicyAdapter,
)
from repro.policies.bnq import BNQPolicy
from repro.policies.bnqrd import BNQRDPolicy
from repro.policies.lert import LERTPolicy
from repro.policies.local import LocalPolicy
from repro.policies.random_policy import RandomPolicy
from repro.policies.registry import available_policies, make_policy, register
from repro.policies.threshold import PowerOfDPolicy, ThresholdPolicy

__all__ = [
    "AllocationPolicy",
    "CostBasedPolicy",
    "LegacyPolicyAdapter",
    "LocalPolicy",
    "RandomPolicy",
    "BNQPolicy",
    "BNQRDPolicy",
    "LERTPolicy",
    "ThresholdPolicy",
    "PowerOfDPolicy",
    "available_policies",
    "make_policy",
    "register",
]
