"""Allocation-policy interface and the paper's site-selection loop.

Figure 3 of the paper gives the selection procedure every cost-based policy
shares::

    function SelectSite(q: query; arrival_site: site): site;
    begin
        best_site := arrival_site;
        min_cost := SiteCost(q, arrival_site);
        foreach remote_site in {sites} - arrival_site do
            cur_cost := SiteCost(q, remote_site);
            if cur_cost < min_cost then ...
    end

with the noted detail that "the 'foreach' loop that examines possible remote
execution sites should scan these sites in a round-robin fashion".  Two
consequences we preserve faithfully:

* the arrival site wins ties (strict ``<``), avoiding pointless transfers;
* ties among *remote* sites are spread around the ring because the scan's
  starting position rotates from decision to decision.

Policies read the system's :class:`~repro.model.loadboard.LoadView` and the
query's optimizer estimates; they never see realized service demands.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.model.loadboard import LoadView
from repro.model.query import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import DistributedDatabase


class AllocationPolicy:
    """Chooses the execution site for each newly arrived query."""

    #: Registry/display name; subclasses override.
    name = "abstract"

    def __init__(self) -> None:
        self.system: Optional["DistributedDatabase"] = None

    def bind(self, system: "DistributedDatabase") -> None:
        """Attach the policy to a system (called once, before the run)."""
        self.system = system

    @property
    def loads(self) -> LoadView:
        """The load information this policy consults."""
        if self.system is None:
            raise RuntimeError(f"policy {self.name!r} is not bound to a system")
        return self.system.load_view

    def select_site(self, query: Query, arrival_site: int) -> int:
        """Return the site index that should execute *query*."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<policy {self.name}>"


class CostBasedPolicy(AllocationPolicy):
    """Figure 3's SelectSite over a subclass-provided SiteCost.

    Subclasses implement :meth:`site_cost`.  ``candidate_sites`` restricts
    the choice set (used by the partial-replication extension, where only
    sites holding a copy of the data qualify); by default every site is a
    candidate, as in a fully replicated database.
    """

    def __init__(self) -> None:
        super().__init__()
        self._scan_offset = 0

    def site_cost(self, query: Query, site: int) -> float:
        """Estimated cost of executing *query* at *site* (lower is better)."""
        raise NotImplementedError

    def candidate_sites(self, query: Query) -> Sequence[int]:
        """Sites eligible to run *query*.

        Delegates to the system: a fully replicated database allows every
        site; the partial-replication extension narrows the set to the
        sites holding a copy of the data the query references.
        """
        return self.system.candidate_sites(query)

    def select_site(self, query: Query, arrival_site: int) -> int:
        candidates = list(self.candidate_sites(query))
        if not candidates:
            raise RuntimeError(f"no candidate sites for query {query.qid}")
        if candidates == [arrival_site]:
            return arrival_site

        if arrival_site in candidates:
            best_site = arrival_site
            min_cost = self.site_cost(query, arrival_site)
        else:
            # Partial replication: the home site may hold no copy, so the
            # first candidate seeds the minimum instead.
            best_site = -1
            min_cost = float("inf")

        count = len(candidates)
        start = self._scan_offset % count
        self._scan_offset += 1
        for step in range(count):
            site = candidates[(start + step) % count]
            if site == arrival_site and best_site == arrival_site:
                continue
            cost = self.site_cost(query, site)
            if cost < min_cost:
                min_cost = cost
                best_site = site
        return best_site


__all__ = ["AllocationPolicy", "CostBasedPolicy"]
