"""Allocation-policy interface and the paper's site-selection loop.

The public entry point (PR 4's API redesign) is::

    site = policy.select(query, view)

where *view* is a :class:`~repro.model.view.SystemView` — the one object
bundling everything a decision may look at: the arrival site, the
candidate (and *available*) sites, the load information, the optimizer's
transfer-time estimates, and named random streams.  The old
``select_site(query, arrival_site)`` spelling keeps working through a
deprecation shim (and old-style policy objects can be wrapped in
:class:`LegacyPolicyAdapter`), but no internal caller uses it any more —
an AST test pins that.

Figure 3 of the paper gives the selection procedure every cost-based policy
shares::

    function SelectSite(q: query; arrival_site: site): site;
    begin
        best_site := arrival_site;
        min_cost := SiteCost(q, arrival_site);
        foreach remote_site in {sites} - arrival_site do
            cur_cost := SiteCost(q, remote_site);
            if cur_cost < min_cost then ...
    end

with the noted detail that "the 'foreach' loop that examines possible remote
execution sites should scan these sites in a round-robin fashion".  Two
consequences we preserve faithfully:

* the arrival site wins ties (strict ``<``), avoiding pointless transfers;
* ties among *remote* sites are spread around the ring because the scan's
  starting position rotates from decision to decision.

Policies read the view's :class:`~repro.model.loadboard.LoadView` and the
query's optimizer estimates; they never see realized service demands.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Optional, Sequence

from repro.model.loadboard import LoadView
from repro.model.query import Query
from repro.model.view import SystemView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import DistributedDatabase


class AllocationPolicy:
    """Chooses the execution site for each newly arrived query.

    Subclasses implement :meth:`select`.  Policies written against the
    pre-1.1 interface (overriding :meth:`select_site`) keep working: the
    base :meth:`select` bridges to the override with a
    ``DeprecationWarning``.
    """

    #: Registry/display name; subclasses override.
    name = "abstract"

    def __init__(self) -> None:
        self.system: Optional["DistributedDatabase"] = None
        #: The view of the decision in progress (or the last one).  Lets
        #: :attr:`loads` and cost functions resolve through the view, so
        #: degraded-mode masking applies without changing their code.
        self._view: Optional[SystemView] = None

    def bind(self, system: "DistributedDatabase") -> None:
        """Attach the policy to a system (called once, before the run)."""
        self.system = system

    @property
    def loads(self) -> LoadView:
        """The load information this policy consults.

        Resolves through the active :class:`~repro.model.view.SystemView`
        when a decision is in progress (so fault masking applies), and
        falls back to the bound system's live view otherwise.
        """
        if self._view is not None:
            return self._view.loads
        if self.system is None:
            raise RuntimeError(f"policy {self.name!r} is not bound to a system")
        return self.system.load_view

    # ------------------------------------------------------------------
    # The public entry point
    # ------------------------------------------------------------------
    def select(self, query: Query, view: SystemView) -> int:
        """Return the site index that should execute *query*.

        *view* is the single window onto the system: candidates (already
        filtered to available sites), load information, estimates, RNG.

        The base implementation exists only to bridge legacy subclasses
        that override :meth:`select_site`; real policies override this.
        """
        if type(self).select_site is not AllocationPolicy.select_site:
            # Pre-1.1 subclass: drive its select_site through the view.
            warnings.warn(
                f"policy {self.name!r} overrides the deprecated "
                "select_site(query, arrival_site); override "
                "select(query, view) instead (see docs/faults.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            self._view = view
            return self.select_site(query, view.arrival_site)
        raise NotImplementedError(
            f"policy {self.name!r} implements neither select() nor select_site()"
        )

    # ------------------------------------------------------------------
    # Deprecated entry point
    # ------------------------------------------------------------------
    def select_site(self, query: Query, arrival_site: int) -> int:
        """Return the execution site for *query* (deprecated spelling).

        .. deprecated:: 1.1
            Use :meth:`select` with a :class:`~repro.model.view.SystemView`.
            This shim builds a view over the bound system and delegates.
        """
        warnings.warn(
            "AllocationPolicy.select_site(query, arrival_site) is "
            "deprecated; call select(query, view) with a SystemView "
            "instead (see docs/faults.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        view = SystemView(
            self.system,
            arrival_site,
            injector=getattr(self.system, "fault_injector", None),
        )
        return self.select(query, view)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<policy {self.name}>"


class LegacyPolicyAdapter(AllocationPolicy):
    """Wraps a pre-1.1 policy object behind the ``select(query, view)`` API.

    Use this to run an old-style policy (anything exposing
    ``select_site(query, arrival_site)`` and optionally ``bind(system)``)
    through the redesigned runner without modifying it::

        system = DistributedDatabase(config, LegacyPolicyAdapter(old), seed=7)

    Wrapping emits a single ``DeprecationWarning`` at construction; the
    per-decision path is warning-free.
    """

    def __init__(self, legacy: object) -> None:
        super().__init__()
        if not callable(getattr(legacy, "select_site", None)):
            raise TypeError(
                f"{legacy!r} has no callable select_site(query, arrival_site)"
            )
        warnings.warn(
            f"wrapping legacy policy {getattr(legacy, 'name', type(legacy).__name__)!r}; "
            "migrate it to select(query, view) (see docs/faults.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._legacy = legacy
        self.name = getattr(legacy, "name", type(legacy).__name__)

    def bind(self, system: "DistributedDatabase") -> None:
        super().bind(system)
        bind = getattr(self._legacy, "bind", None)
        if callable(bind):
            bind(system)

    def select(self, query: Query, view: SystemView) -> int:
        self._view = view
        return self._legacy.select_site(query, view.arrival_site)  # type: ignore[attr-defined]


class CostBasedPolicy(AllocationPolicy):
    """Figure 3's SelectSite over a subclass-provided SiteCost.

    Subclasses implement :meth:`site_cost`; the view supplies the
    candidate set (the partial-replication extension narrows it to sites
    holding a copy of the data, the fault layer removes down sites).
    """

    def __init__(self) -> None:
        super().__init__()
        self._scan_offset = 0

    def site_cost(self, query: Query, site: int) -> float:
        """Estimated cost of executing *query* at *site* (lower is better)."""
        raise NotImplementedError

    def candidate_sites(self, query: Query) -> Sequence[int]:
        """Sites eligible to run *query* (unfiltered by availability).

        Retained for compatibility and introspection; the selection loop
        itself asks the view, which additionally removes down sites.
        """
        return self.system.candidate_sites(query)

    def select(self, query: Query, view: SystemView) -> int:
        if type(self).select_site is not CostBasedPolicy.select_site:
            # Pre-1.1 subclass that wraps select_site (the old way of
            # stashing per-decision state): drive it through the view.
            # Its super().select_site() call lands on the concrete
            # deprecated implementation below, so the chain terminates.
            warnings.warn(
                f"policy {self.name!r} overrides the deprecated "
                "select_site(query, arrival_site); override "
                "select(query, view) instead (see docs/faults.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            self._view = view
            return self.select_site(query, view.arrival_site)
        self._view = view
        return self._select_from(query, view)

    def select_site(self, query: Query, arrival_site: int) -> int:
        """Figure 3's loop under the old signature (deprecated spelling).

        .. deprecated:: 1.1
            Use :meth:`select` with a :class:`~repro.model.view.SystemView`.
        """
        warnings.warn(
            "CostBasedPolicy.select_site(query, arrival_site) is "
            "deprecated; call select(query, view) with a SystemView "
            "instead (see docs/faults.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        view = SystemView(
            self.system,
            arrival_site,
            injector=getattr(self.system, "fault_injector", None),
        )
        self._view = view
        return self._select_from(query, view)

    def _select_from(self, query: Query, view: SystemView) -> int:
        candidates = view.candidates(query)
        if not candidates:
            raise RuntimeError(f"no candidate sites for query {query.qid}")
        arrival_site = view.arrival_site
        if candidates == [arrival_site]:
            return arrival_site

        if arrival_site in candidates:
            best_site = arrival_site
            min_cost = self.site_cost(query, arrival_site)
        else:
            # Partial replication (no local copy) or a crashed home site:
            # the first candidate seeds the minimum instead.
            best_site = -1
            min_cost = float("inf")

        count = len(candidates)
        start = self._scan_offset % count
        self._scan_offset += 1
        for step in range(count):
            site = candidates[(start + step) % count]
            if site == arrival_site and best_site == arrival_site:
                continue
            cost = self.site_cost(query, site)
            if cost < min_cost:
                min_cost = cost
                best_site = site
        return best_site


__all__ = ["AllocationPolicy", "CostBasedPolicy", "LegacyPolicyAdapter"]
