"""BNQ — Balance the Number of Queries (paper §4.1, Figure 4).

The non-information-based comparison point: route each new query to the
site currently holding the fewest queries, regardless of what those queries
need.  Cost function (Figure 4)::

    function SiteCost(q: query; s: site): integer;
    begin
        SiteCost := Num_Queries(s);
    end;
"""

from __future__ import annotations

from repro.model.query import Query
from repro.policies.base import CostBasedPolicy


class BNQPolicy(CostBasedPolicy):
    """Minimize the total query count at the chosen site."""

    name = "BNQ"

    def site_cost(self, query: Query, site: int) -> float:
        return self.loads.num_queries(site)


__all__ = ["BNQPolicy"]
