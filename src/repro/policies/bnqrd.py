"""BNQRD — Balance the Number of Queries by Resource Demands (§4.2, Fig. 5).

The first information-based heuristic: classify the arriving query as
I/O-bound or CPU-bound from its optimizer estimates, then route it to the
site with the fewest queries *of the same kind*.  Cost function (Figure 5)::

    function SiteCost(q: query; s: site): integer;
    begin
        if (disk_time / num_disks) > Page_CPU_Time(q) then
            SiteCost := Num_IO_Queries(s);
        else
            SiteCost := Num_CPU_Queries(s);
    end;

The per-disk I/O demand (``disk_time / num_disks``) handles multi-disk
sites: with two disks, a page's effective I/O pressure is halved.
"""

from __future__ import annotations

from repro.model.query import Query
from repro.policies.base import CostBasedPolicy


class BNQRDPolicy(CostBasedPolicy):
    """Balance counts within the arriving query's boundness class."""

    name = "BNQRD"

    def is_io_bound(self, query: Query) -> bool:
        """The paper's classification rule, from optimizer estimates."""
        site_spec = self.system.config.site
        return site_spec.disk_time / site_spec.num_disks > query.page_cpu_time

    def site_cost(self, query: Query, site: int) -> float:
        if self.is_io_bound(query):
            return self.loads.num_io_queries(site)
        return self.loads.num_cpu_queries(site)


__all__ = ["BNQRDPolicy"]
