"""LERT — Least Estimated Response Time (paper §4.3, Figure 6).

The second information-based heuristic: estimate the query's response time
at every site from its optimizer-provided demands and the per-site counts of
competing I/O- and CPU-bound queries, then pick the minimum.  Cost function
(Figure 6, reproduced verbatim)::

    cpu_time := Num_Reads(q) * Page_CPU_Time(q);
    io_time  := Num_Reads(q) * disk_time;
    if s = arrival_site then net_time := 0.0
    else net_time := Transfer_Time(q) + Return_Time(q);
    cpu_wait := cpu_time * Num_CPU_Queries(s);
    io_wait  := io_time * (Num_IO_Queries(s) / num_disks);
    SiteCost := cpu_time + cpu_wait + io_time + io_wait + net_time;

The paper's three stated approximations are inherited as-is: a query only
competes with same-boundness queries per resource; both CPU and disks are
treated as PS; and site populations are assumed frozen for the query's
duration.  LERT is the only paper policy that weighs the communication cost
of going remote, which is why it pulls ahead of BNQRD as ``msg_length``
grows (§5.2 and the msg-length ablation bench).
"""

from __future__ import annotations

from repro.model.query import Query
from repro.policies.base import CostBasedPolicy


class LERTPolicy(CostBasedPolicy):
    """Route to the site with the least estimated response time."""

    name = "LERT"

    def site_cost(self, query: Query, site: int) -> float:
        # Figure 6's cost function reads the arrival site (to zero out the
        # network term) and the optimizer's transfer estimates through the
        # active view, so fault masking applies transparently.
        view = self._view
        config = view.config
        site_spec = config.site
        cpu_time = query.estimated_cpu_demand
        io_time = query.estimated_io_demand(site_spec.disk_time)
        if site == view.arrival_site:
            net_time = 0.0
        else:
            net_time = view.estimated_transfer_time(
                query
            ) + view.estimated_return_time(query)
        cpu_wait = cpu_time * self.loads.num_cpu_queries(site)
        io_wait = io_time * (self.loads.num_io_queries(site) / site_spec.num_disks)
        return cpu_time + cpu_wait + io_time + io_wait + net_time


__all__ = ["LERTPolicy"]
