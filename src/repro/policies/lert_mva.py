"""LERT-MVA: LERT's goal with a real queueing model (ablation A3).

Figure 6's cost function is a deliberately crude response-time estimate —
it assumes frozen populations, PS disks, and competition only within the
query's own boundness class.  This extension policy keeps LERT's *decision
rule* (pick the site minimizing estimated response time plus network cost)
but computes the estimate with approximate Mean Value Analysis of a
two-station closed network per site:

* station "disk": the site's ``num_disks`` disks as a multi-server station,
* station "cpu": the PS processor,
* three customer classes: the site's committed I/O-bound queries, its
  committed CPU-bound queries (both at class-mean demands), and the
  arriving query itself (population 1).

The arriving query's estimated response time is its MVA cycle time.  Results
are memoized on ``(n_io, n_cpu, class_index)`` — the only inputs — so the
per-decision cost is a dictionary lookup after warmup.

Comparing LERT-MVA against LERT quantifies how much performance Figure 6's
approximations leave on the table (the ablation bench shows: very little,
which is the engineering justification for the paper's simple formula).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.model.query import Query
from repro.policies.base import CostBasedPolicy
from repro.queueing.amva import solve_amva
from repro.queueing.network import ClosedNetwork
from repro.queueing.stations import Station, StationKind


class LERTMVAPolicy(CostBasedPolicy):
    """Least estimated response time, estimated by approximate MVA."""

    name = "LERT-MVA"

    def __init__(self) -> None:
        super().__init__()
        self._cache: Dict[Tuple[int, int, int], float] = {}

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def _class_demands(self, class_index: int) -> Tuple[float, float]:
        """(disk, cpu) demand of a whole class-mean query."""
        config = self.system.config
        spec = config.classes[class_index]
        return (
            spec.num_reads * config.site.disk_time,
            spec.num_reads * spec.page_cpu_time,
        )

    def _mean_bound_demands(self, io_bound: bool) -> Tuple[float, float]:
        """Average (disk, cpu) demand over classes with the given boundness."""
        config = self.system.config
        matching = [
            k
            for k, spec in enumerate(config.classes)
            if config.is_io_bound(spec.page_cpu_time) == io_bound
        ]
        if not matching:
            return (0.0, 0.0)
        disks, cpus = zip(*(self._class_demands(k) for k in matching))
        return (sum(disks) / len(disks), sum(cpus) / len(cpus))

    def _estimated_response(self, n_io: int, n_cpu: int, class_index: int) -> float:
        key = (n_io, n_cpu, class_index)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        config = self.system.config
        io_disk, io_cpu = self._mean_bound_demands(io_bound=True)
        cpu_disk, cpu_cpu = self._mean_bound_demands(io_bound=False)
        new_disk, new_cpu = self._class_demands(class_index)

        disk_demands = (io_disk, cpu_disk, new_disk)
        disks = config.site.num_disks
        cpu_station = Station("cpu", StationKind.PS, (io_cpu, cpu_cpu, new_cpu))
        think_times = (0.0, 0.0, 0.0)
        if disks == 1:
            disk_station = Station("disk", StationKind.PS, disk_demands)
        elif len({d for d in disk_demands if d > 0}) <= 1:
            disk_station = Station(
                "disk", StationKind.MULTISERVER, disk_demands, servers=disks
            )
        else:
            # Class-dependent multi-server demands are outside BCMP product
            # form; apply the Seidmann transform by hand (queueing portion as
            # PS at demand/c, the rest as pure per-class delay).
            disk_station = Station(
                "disk", StationKind.PS, tuple(d / disks for d in disk_demands)
            )
            think_times = tuple(d * (disks - 1) / disks for d in disk_demands)
        network = ClosedNetwork(
            (disk_station, cpu_station),
            ("io-load", "cpu-load", "arrival"),
            think_times,
        )
        solution = solve_amva(network, (n_io, n_cpu, 1))
        # think_times[2] is nonzero only on the manual-Seidmann path, where
        # it is really in-service disk time and belongs in the response.
        response = solution.cycle_time(2) + think_times[2]
        self._cache[key] = response
        return response

    def site_cost(self, query: Query, site: int) -> float:
        view = self._view
        loads = self.loads
        response = self._estimated_response(
            loads.num_io_queries(site), loads.num_cpu_queries(site), query.class_index
        )
        if site == view.arrival_site:
            net_time = 0.0
        else:
            net_time = view.estimated_transfer_time(
                query
            ) + view.estimated_return_time(query)
        return response + net_time


__all__ = ["LERTMVAPolicy"]
