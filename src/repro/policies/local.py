"""LOCAL: always process at the arrival site (the paper's baseline).

The paper's W̄_LOCAL columns are produced with this policy: "queries are
always processed locally (i.e., at their arrival site)".  It represents a
conventional distributed DBMS with no dynamic allocation at all.
"""

from __future__ import annotations

from repro.model.query import Query
from repro.model.view import SystemView
from repro.policies.base import AllocationPolicy


class LocalPolicy(AllocationPolicy):
    """Execute every query at its home site.

    When the home site is unavailable — no copy of the data under partial
    replication, or crashed under a fault plan — LOCAL falls back to the
    nearest candidate (lowest ring distance from home), which is what a
    static allocator with no load information would plausibly do.
    """

    name = "LOCAL"

    def select(self, query: Query, view: SystemView) -> int:
        self._view = view
        arrival_site = view.arrival_site
        candidates = view.candidates(query)
        if arrival_site in candidates:
            return arrival_site
        if not candidates:
            raise RuntimeError(f"no candidate sites for query {query.qid}")
        num_sites = view.num_sites
        return min(candidates, key=lambda s: (s - arrival_site) % num_sites)


__all__ = ["LocalPolicy"]
