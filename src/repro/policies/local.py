"""LOCAL: always process at the arrival site (the paper's baseline).

The paper's W̄_LOCAL columns are produced with this policy: "queries are
always processed locally (i.e., at their arrival site)".  It represents a
conventional distributed DBMS with no dynamic allocation at all.
"""

from __future__ import annotations

from repro.model.query import Query
from repro.policies.base import AllocationPolicy


class LocalPolicy(AllocationPolicy):
    """Execute every query at its home site.

    Under partial replication the home site may hold no copy of the data;
    LOCAL then falls back to the nearest holder (lowest ring distance from
    home), which is what a static allocator with no load information would
    plausibly do.
    """

    name = "LOCAL"

    def select_site(self, query: Query, arrival_site: int) -> int:
        candidates = list(self.system.candidate_sites(query))
        if arrival_site in candidates:
            return arrival_site
        if not candidates:
            raise RuntimeError(f"no candidate sites for query {query.qid}")
        num_sites = self.system.config.num_sites
        return min(candidates, key=lambda s: (s - arrival_site) % num_sites)


__all__ = ["LocalPolicy"]
