"""RANDOM: uniformly random site choice.

Not in the paper, but a standard load-balancing control: it spreads load
without using *any* state information.  Comparing RANDOM against BNQ
separates the benefit of "spreading work around" from the benefit of
actually consulting load state.
"""

from __future__ import annotations

from repro.model.query import Query
from repro.model.view import SystemView
from repro.policies.base import AllocationPolicy


class RandomPolicy(AllocationPolicy):
    """Pick an execution site uniformly at random."""

    name = "RANDOM"

    def select(self, query: Query, view: SystemView) -> int:
        self._view = view
        rng = view.rng("policy.random")
        candidates = view.candidates(query)
        if not candidates:
            raise RuntimeError(f"no candidate sites for query {query.qid}")
        return candidates[rng.randrange(len(candidates))]


__all__ = ["RandomPolicy"]
