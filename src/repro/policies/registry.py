"""Name-based policy registry.

Experiments and the CLI refer to policies by the paper's names ("LOCAL",
"BNQ", "BNQRD", "LERT", ...).  The registry maps names to constructors so a
fresh, unbound policy instance is produced per run.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.policies.base import AllocationPolicy
from repro.policies.bnq import BNQPolicy
from repro.policies.bnqrd import BNQRDPolicy
from repro.policies.lert import LERTPolicy
from repro.policies.local import LocalPolicy
from repro.policies.random_policy import RandomPolicy
from repro.policies.threshold import PowerOfDPolicy, ThresholdPolicy

_REGISTRY: Dict[str, Callable[[], AllocationPolicy]] = {}


def register(name: str, factory: Callable[[], AllocationPolicy]) -> None:
    """Add (or replace) a policy constructor under *name*."""
    _REGISTRY[name.upper()] = factory


def make_policy(name: str) -> AllocationPolicy:
    """Instantiate a fresh policy by (case-insensitive) name."""
    try:
        factory = _REGISTRY[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None
    return factory()


def available_policies() -> List[str]:
    """Sorted list of registered policy names."""
    return sorted(_REGISTRY)


register("LOCAL", LocalPolicy)
register("RANDOM", RandomPolicy)
register("BNQ", BNQPolicy)
register("THRESHOLD", ThresholdPolicy)
register("SQ2", PowerOfDPolicy)
register("BNQRD", BNQRDPolicy)
register("LERT", LERTPolicy)

# LERT-MVA is registered lazily to avoid importing the queueing stack (and
# its scipy dependency chain) for users who never touch the extension.


def _lert_mva() -> AllocationPolicy:
    from repro.policies.lert_mva import LERTMVAPolicy

    return LERTMVAPolicy()


register("LERT-MVA", _lert_mva)


__all__ = ["register", "make_policy", "available_policies"]
