"""Classic sender-initiated load sharing: THRESHOLD and power-of-d.

Two policies from the load-balancing literature the paper cites and grew
out of, included as historically meaningful comparison points:

* :class:`ThresholdPolicy` — Eager/Lazowska/Zahorjan-style sender-initiated
  probing: keep the query home unless the home site's count exceeds a
  threshold; then probe up to ``probe_limit`` other sites (round-robin) and
  transfer to the first whose count is below the threshold; if every probe
  fails, run it at home anyway.  Uses *far less* information than BNQ —
  only up to ``probe_limit`` remote counts per decision rather than all of
  them — which is exactly its selling point in the literature.
* :class:`PowerOfDPolicy` — "power of d choices": sample ``d`` distinct
  sites uniformly at random and send the query to the least-loaded of the
  sample (counting the home site as a free candidate).  With d = 2 this is
  the famous SQ(2) rule.

Both operate on query counts only (no resource-demand information), so in
the paper's taxonomy they sit beside BNQ, not BNQRD/LERT — comparing them
isolates "how much load information" from "what kind".
"""

from __future__ import annotations

from repro.model.query import Query
from repro.model.view import SystemView
from repro.policies.base import AllocationPolicy


class ThresholdPolicy(AllocationPolicy):
    """Sender-initiated threshold probing (count-based, partial information)."""

    name = "THRESHOLD"

    def __init__(self, threshold: int = 4, probe_limit: int = 3) -> None:
        super().__init__()
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        if probe_limit < 1:
            raise ValueError("probe_limit must be >= 1")
        self.threshold = threshold
        self.probe_limit = probe_limit
        self._probe_offset = 0
        #: Probes issued (for the information-cost comparison).
        self.probes_sent = 0

    def select(self, query: Query, view: SystemView) -> int:
        self._view = view
        loads = view.loads
        arrival_site = view.arrival_site
        candidates = view.candidates(query)
        arrival_available = arrival_site in candidates
        if arrival_available and loads.num_queries(arrival_site) <= self.threshold:
            return arrival_site
        num_sites = view.num_sites
        if num_sites == 1:
            return arrival_site
        probe_set = set(candidates)
        start = self._probe_offset
        self._probe_offset += 1
        probed = 0
        for step in range(num_sites - 1):
            site = (arrival_site + 1 + (start + step)) % num_sites
            if site == arrival_site or site not in probe_set:
                continue
            self.probes_sent += 1
            probed += 1
            if loads.num_queries(site) < self.threshold:
                return site
            if probed >= self.probe_limit:
                break
        if arrival_available:
            return arrival_site
        # Degraded fallback: the home site is down and every probe failed —
        # run at the nearest available candidate rather than nowhere.
        return min(candidates, key=lambda s: (s - arrival_site) % num_sites)


class PowerOfDPolicy(AllocationPolicy):
    """SQ(d): least-loaded of d uniformly sampled sites (plus home)."""

    name = "SQ2"

    def __init__(self, d: int = 2) -> None:
        super().__init__()
        if d < 1:
            raise ValueError("d must be >= 1")
        self.d = d

    def select(self, query: Query, view: SystemView) -> int:
        self._view = view
        loads = view.loads
        arrival_site = view.arrival_site
        num_sites = view.num_sites
        rng = view.rng("policy.sq")
        # The sample is always drawn over the full site range so the random
        # stream advances identically with and without faults installed.
        sample_size = min(self.d, num_sites)
        sampled = set(rng.sample(range(num_sites), sample_size))
        sampled.add(arrival_site)
        eligible = [site for site in sampled if view.is_available(site)]
        if not eligible:
            # Every sampled site (and home) is down: fall back to the
            # available candidate set.
            eligible = view.candidates(query)
        # Least count wins; the home site wins ties (no pointless moves).
        def sort_key(site: int):
            return (loads.num_queries(site), site != arrival_site, site)

        return min(eligible, key=sort_key)


__all__ = ["ThresholdPolicy", "PowerOfDPolicy"]
