"""Closed multiclass queueing networks and Mean Value Analysis.

This subpackage is the analytic substrate behind the paper's §3 study of
optimal allocations (Tables 5 and 6) and the LERT-MVA extension policy.
"""

from repro.queueing.amva import solve_amva
from repro.queueing.bounds import (
    ThroughputBounds,
    asymptotic_bounds,
    balanced_job_bounds,
    saturation_population,
)
from repro.queueing.simulate import SimulatedSolution, simulate_network
from repro.queueing.mva import MVASolution, solve_mva
from repro.queueing.network import ClosedNetwork, closed_network
from repro.queueing.population import (
    Population,
    decrement,
    lattice,
    lattice_size,
    total,
    validate_population,
    zero_like,
)
from repro.queueing.stations import (
    Station,
    StationKind,
    delay,
    fcfs,
    multiserver,
    ps,
)

__all__ = [
    "ClosedNetwork",
    "closed_network",
    "MVASolution",
    "solve_mva",
    "solve_amva",
    "ThroughputBounds",
    "asymptotic_bounds",
    "balanced_job_bounds",
    "saturation_population",
    "SimulatedSolution",
    "simulate_network",
    "Population",
    "decrement",
    "lattice",
    "lattice_size",
    "total",
    "validate_population",
    "zero_like",
    "Station",
    "StationKind",
    "ps",
    "fcfs",
    "multiserver",
    "delay",
]
