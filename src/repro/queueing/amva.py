"""Approximate multiclass MVA (Bard–Schweitzer fixed point).

Exact MVA walks the whole population lattice, which explodes for the large
populations of the simulation experiments (hundreds of terminals).  The
Bard–Schweitzer approximation replaces the lattice walk with a fixed-point
iteration on the estimate::

    Q_km(N - e_k)  ≈  Q_km(N) * (N_k - 1) / N_k   for the removed class
    Q_jm(N - e_k)  ≈  Q_jm(N)                      otherwise

Multi-server stations are handled with the Seidmann transform: a ``c``-server
station with demand ``D`` becomes a queueing station with demand ``D/c`` in
series with a pure delay of ``D*(c-1)/c``.  This is the standard engineering
approximation and is asymptotically exact at both light and heavy load.

The approximate solver exists for two consumers:

* the LERT-MVA extension policy, which needs a fast response-time estimate
  inside the allocator, and
* validation of simulation results at populations where exact MVA is
  impractical.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.queueing.mva import MVASolution
from repro.queueing.network import ClosedNetwork
from repro.queueing.population import Population, validate_population
from repro.queueing.stations import Station, StationKind


def _seidmann_transform(network: ClosedNetwork) -> Tuple[ClosedNetwork, Tuple[float, ...]]:
    """Replace multi-server stations by the Seidmann queue+delay pair.

    Returns the transformed network and the extra per-class delay folded
    into think times.
    """
    classes = network.class_count
    extra_delay = [0.0] * classes
    stations: List[Station] = []
    for station in network.stations:
        if station.is_load_dependent:
            c = station.servers
            queue_demands = tuple(d / c for d in station.demands)
            # PS is used for the queueing half because the MVA recursion for
            # PS and FCFS-exponential is identical, but PS places no
            # class-independence restriction on the demands.
            stations.append(Station(station.name, StationKind.PS, queue_demands))
            for k in range(classes):
                extra_delay[k] += station.demands[k] * (c - 1) / c
        else:
            stations.append(station)
    think = tuple(
        network.think_times[k] + extra_delay[k] for k in range(classes)
    )
    transformed = ClosedNetwork(tuple(stations), network.class_names, think)
    return transformed, tuple(extra_delay)


def solve_amva(
    network: ClosedNetwork,
    population: Population,
    tolerance: float = 1e-8,
    max_iterations: int = 10_000,
) -> MVASolution:
    """Bard–Schweitzer approximate solution of *network*.

    Args:
        network: A closed network (multi-server stations allowed; they are
            Seidmann-transformed internally).
        population: Customers per class.
        tolerance: Convergence threshold on the max change of any ``Q_km``.
        max_iterations: Safety bound on fixed-point iterations.

    Returns:
        An :class:`~repro.queueing.mva.MVASolution` (approximate values).
        Residence times reported for transformed multi-server stations
        include the Seidmann delay portion, so derived waiting times remain
        comparable with exact MVA.
    """
    pop = validate_population(population)
    classes = network.class_count
    if len(pop) != classes:
        raise ValueError(f"population has {len(pop)} entries for {classes} classes")

    transformed, extra_delay = _seidmann_transform(network)
    stations = transformed.stations
    station_count = len(stations)

    # Initial guess: spread each class evenly over the stations it visits.
    q_by_class = [[0.0] * station_count for _ in range(classes)]
    for k in range(classes):
        visited = [m for m in range(station_count) if stations[m].demands[k] > 0]
        if visited and pop[k] > 0:
            share = pop[k] / len(visited)
            for m in visited:
                q_by_class[k][m] = share

    residence = [[0.0] * station_count for _ in range(classes)]
    throughputs = [0.0] * classes

    for _ in range(max_iterations):
        for k in range(classes):
            if pop[k] == 0:
                residence[k] = [0.0] * station_count
                throughputs[k] = 0.0
                continue
            shrink = (pop[k] - 1) / pop[k]
            for m, station in enumerate(stations):
                demand = station.demands[k]
                if demand <= 0:
                    residence[k][m] = 0.0
                    continue
                if station.kind is StationKind.DELAY:
                    residence[k][m] = demand
                    continue
                others = sum(
                    q_by_class[j][m] for j in range(classes) if j != k
                )
                residence[k][m] = demand * (1.0 + others + q_by_class[k][m] * shrink)
            denom = transformed.think_times[k] + sum(residence[k])
            throughputs[k] = pop[k] / denom if denom > 0 else 0.0

        delta = 0.0
        for k in range(classes):
            for m in range(station_count):
                new_q = throughputs[k] * residence[k][m]
                delta = max(delta, abs(new_q - q_by_class[k][m]))
                q_by_class[k][m] = new_q
        if delta < tolerance:
            break

    # Fold the Seidmann delay back into residence times of the transformed
    # stations so waiting-time math against the ORIGINAL demands is right.
    final_residence = [row[:] for row in residence]
    for m, station in enumerate(network.stations):
        if station.is_load_dependent:
            c = station.servers
            for k in range(classes):
                if station.demands[k] > 0:
                    final_residence[k][m] += station.demands[k] * (c - 1) / c

    # Queue lengths use the folded residence times so that customers inside
    # the Seidmann "delay" half of a multi-server station (i.e. in service
    # on one of its extra servers) still count as present at the station —
    # Little's law then holds against the reported residences.
    queue_totals = [
        sum(throughputs[k] * final_residence[k][m] for k in range(classes))
        for m in range(station_count)
    ]
    queue_by_class = [
        [throughputs[k] * final_residence[k][m] for m in range(station_count)]
        for k in range(classes)
    ]

    return MVASolution(
        network,
        pop,
        tuple(throughputs),
        tuple(tuple(row) for row in final_residence),
        tuple(queue_totals),
        tuple(tuple(row) for row in queue_by_class),
    )


__all__ = ["solve_amva"]
