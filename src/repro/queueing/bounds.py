"""Asymptotic and balanced-job bounds for closed queueing networks.

Bounds complement the exact/approximate solvers in two ways:

* they give instant sanity envelopes for solver outputs (used by the
  property tests: every exact MVA throughput must respect them), and
* they answer capacity questions (Table 10 style) without simulation —
  e.g. the saturation population ``N*`` marks where adding terminals stops
  buying throughput and starts buying only queueing.

Implemented for single-class networks (multi-class bounds require per-class
aggregation that the experiments do not need):

* **Asymptotic bounds** (Denning & Buzen):
  ``X(N) <= min(N / (D + Z), 1 / D_max)`` and
  ``X(N) >= N / (N * D_max + D_other... )`` — here in the standard form
  ``X(N) >= N / (D + Z + (N - 1) * D_max)``.
* **Balanced-job bounds** (Zahorjan et al.), which are tighter: the
  network is bracketed between a perfectly balanced network with the same
  total demand and one with all demand at the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.queueing.network import ClosedNetwork
from repro.queueing.stations import StationKind


def _single_class_demands(network: ClosedNetwork) -> Tuple[float, ...]:
    if network.class_count != 1:
        raise ValueError("bounds are implemented for single-class networks")
    demands = []
    for station in network.stations:
        if station.kind is StationKind.DELAY:
            continue
        if station.is_load_dependent:
            # Conservative treatment: a c-server station can serve at most
            # c customers at once, so its effective per-customer demand at
            # saturation is D / c.
            demands.append(station.demands[0] / station.servers)
        else:
            demands.append(station.demands[0])
    if not demands:
        raise ValueError("network has no queueing stations")
    return tuple(demands)


def _think(network: ClosedNetwork) -> float:
    think = network.think_times[0]
    for station in network.stations:
        if station.kind is StationKind.DELAY:
            think += station.demands[0]
    return think


@dataclass(frozen=True)
class ThroughputBounds:
    """Lower and upper bounds on X(N) for one population."""

    population: int
    lower: float
    upper: float

    def contains(self, value: float, slack: float = 1e-9) -> bool:
        return self.lower - slack <= value <= self.upper + slack


def asymptotic_bounds(network: ClosedNetwork, population: int) -> ThroughputBounds:
    """Classic asymptotic (optimistic/pessimistic) throughput bounds."""
    if population < 0:
        raise ValueError("population must be >= 0")
    if population == 0:
        return ThroughputBounds(0, 0.0, 0.0)
    demands = _single_class_demands(network)
    total = sum(demands)
    d_max = max(demands)
    think = _think(network)
    upper = min(population / (total + think), 1.0 / d_max)
    lower = population / (total + think + (population - 1) * total)
    return ThroughputBounds(population, lower, upper)


def balanced_job_bounds(network: ClosedNetwork, population: int) -> ThroughputBounds:
    """Balanced-job bounds: tighter than asymptotic bounds.

    For a network with total demand ``D``, bottleneck demand ``D_max``,
    average demand ``D_avg = D/M`` and think time ``Z``::

        X(N) >= N / (D + Z + (N-1) * D_max * (D... ))  [pessimistic side]
        X(N) <= min(1/D_max, N / (D + Z + (N-1) * D_avg * D / (D + Z)))

    Using the standard formulation from Lazowska et al. (Quantitative
    System Performance, eq. 5.10-5.12).
    """
    if population < 0:
        raise ValueError("population must be >= 0")
    if population == 0:
        return ThroughputBounds(0, 0.0, 0.0)
    demands = _single_class_demands(network)
    total = sum(demands)
    d_max = max(demands)
    d_avg = total / len(demands)
    think = _think(network)
    n = population
    upper = min(
        1.0 / d_max,
        n / (total + think + (n - 1) * d_avg * total / (total + think)),
    )
    # Pessimistic side: the worst single-class network with this total
    # demand concentrates everything at the bottleneck.
    lower = n / (total + think + (n - 1) * d_max)
    return ThroughputBounds(population, lower, upper)


def saturation_population(network: ClosedNetwork) -> float:
    """N* = (D + Z) / D_max — where the asymptotic bounds intersect.

    Below N* the network is latency-limited; above it the bottleneck
    saturates and response time grows linearly with added customers.
    """
    demands = _single_class_demands(network)
    return (sum(demands) + _think(network)) / max(demands)


__all__ = [
    "ThroughputBounds",
    "asymptotic_bounds",
    "balanced_job_bounds",
    "saturation_population",
]
