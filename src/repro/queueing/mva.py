"""Exact multiclass Mean Value Analysis (Reiser–Lavenberg).

This is the "Mean Value algorithm [Reis78]" the paper uses for its §3 study
of optimal allocations.  The solver handles:

* PS / single-server-FCFS / delay stations with the classic recursion
  ``R_km(v) = D_km * (1 + Q_m(v - e_k))``, and
* load-dependent multi-server FCFS stations (the 2-disk I/O subsystem) with
  the marginal-probability recursion::

      R_km(v)   = D_km * sum_{j>=0} ((j+1)/mu(j+1)) * p_m(j | v - e_k)
      p_m(j|v)  = (1/mu(j)) * sum_k D_km X_k(v) p_m(j-1 | v - e_k),  j >= 1
      p_m(0|v)  = 1 - sum_{j>=1} p_m(j|v)

The recursion walks the lattice of population vectors in increasing-total
order, so memory is O(lattice size), which is tiny for the paper's §3
populations (a handful of queries per site).

Everything returned is exact for product-form networks; the disk station
qualifies because its service is exponential with a class-independent mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.queueing.network import ClosedNetwork
from repro.queueing.population import (
    Population,
    decrement,
    lattice,
    total,
    validate_population,
)
from repro.queueing.stations import StationKind

#: Tolerance for the p(0) normalization residual before we declare the
#: recursion numerically broken.
_P0_TOLERANCE = 1e-9


@dataclass(frozen=True)
class MVASolution:
    """Steady-state performance measures of a closed network.

    All per-class arrays are indexed by class; per-station arrays by station
    in network order.

    Attributes:
        network: The solved network.
        population: Population vector the solution is for.
        throughputs: ``X_k`` — class throughput (passages per time unit).
        residence_times: ``R_km`` — time per passage class ``k`` spends at
            station ``m`` (queueing + service).
        queue_lengths: ``Q_m`` — mean total customers at station ``m``.
        queue_lengths_by_class: ``Q_km``.
    """

    network: ClosedNetwork
    population: Population
    throughputs: Tuple[float, ...]
    residence_times: Tuple[Tuple[float, ...], ...]
    queue_lengths: Tuple[float, ...]
    queue_lengths_by_class: Tuple[Tuple[float, ...], ...]

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------
    def cycle_time(self, class_index: int) -> float:
        """Mean time for one passage, excluding think time."""
        return sum(self.residence_times[class_index])

    def response_time(self, class_index: int) -> float:
        """Alias for :meth:`cycle_time` (no think time included)."""
        return self.cycle_time(class_index)

    def waiting_time(self, class_index: int) -> float:
        """Queueing time per passage: residence minus pure service demand.

        Zero for a class with no customers — an absent class experiences
        nothing.
        """
        if self.population[class_index] == 0:
            return 0.0
        waiting = 0.0
        for m, station in enumerate(self.network.stations):
            demand = station.demands[class_index]
            if demand <= 0:
                continue
            waiting += self.residence_times[class_index][m] - demand
        return waiting

    def normalized_waiting_time(self, class_index: int) -> float:
        """Ŵ = waiting time / service demand (the paper's fairness basis)."""
        demand = self.network.total_demand(class_index)
        if demand == 0:
            return 0.0
        return self.waiting_time(class_index) / demand

    def utilization(self, station_index: int) -> float:
        """Per-server utilization of a station (0 for delay stations)."""
        station = self.network.stations[station_index]
        if station.kind is StationKind.DELAY:
            return 0.0
        used = sum(
            self.throughputs[k] * station.demands[k]
            for k in range(self.network.class_count)
        )
        return used / station.servers

    def __str__(self) -> str:
        lines = [f"MVA solution for population {self.population}:"]
        for k, name in enumerate(self.network.class_names):
            lines.append(
                f"  class {name}: X={self.throughputs[k]:.5g} "
                f"R={self.cycle_time(k):.5g} W={self.waiting_time(k):.5g}"
            )
        for m, station in enumerate(self.network.stations):
            lines.append(
                f"  station {station.name}: Q={self.queue_lengths[m]:.5g} "
                f"U={self.utilization(m):.5g}"
            )
        return "\n".join(lines)


def solve_mva(network: ClosedNetwork, population: Population) -> MVASolution:
    """Solve *network* exactly for the given *population* vector.

    Args:
        network: A product-form closed network.
        population: Number of customers per class, aligned with
            ``network.class_names``.

    Returns:
        The :class:`MVASolution` at the full population.
    """
    pop = validate_population(population)
    classes = network.class_count
    if len(pop) != classes:
        raise ValueError(
            f"population has {len(pop)} entries for {classes} classes"
        )
    stations = network.stations
    station_count = len(stations)
    ld_indices = [m for m, s in enumerate(stations) if s.is_load_dependent]

    # Q[v] -> list of total queue lengths per station.
    queue: Dict[Population, List[float]] = {}
    # Per-class queue lengths, kept only for the final population report.
    # marginals[m][v] -> list p_m(j | v) for j = 0..total(v)   (LD stations).
    marginals: Dict[int, Dict[Population, List[float]]] = {m: {} for m in ld_indices}

    final_residence: List[List[float]] = [[0.0] * station_count for _ in range(classes)]
    final_throughputs: List[float] = [0.0] * classes
    final_queue_by_class: List[List[float]] = [
        [0.0] * station_count for _ in range(classes)
    ]

    for vector in lattice(pop):
        customers = total(vector)
        if customers == 0:
            queue[vector] = [0.0] * station_count
            for m in ld_indices:
                marginals[m][vector] = [1.0]
            continue

        residence = [[0.0] * station_count for _ in range(classes)]
        throughputs = [0.0] * classes
        for k in range(classes):
            if vector[k] == 0:
                continue
            reduced = decrement(vector, k)
            reduced_queue = queue[reduced]
            for m, station in enumerate(stations):
                demand = station.demands[k]
                if demand <= 0:
                    continue
                if station.kind is StationKind.DELAY:
                    residence[k][m] = demand
                elif station.is_load_dependent:
                    probs = marginals[m][reduced]
                    acc = 0.0
                    for j, p in enumerate(probs):
                        acc += ((j + 1) / station.rate_multiplier(j + 1)) * p
                    residence[k][m] = demand * acc
                else:
                    residence[k][m] = demand * (1.0 + reduced_queue[m])
            denom = network.think_times[k] + sum(residence[k])
            if denom <= 0:
                raise ValueError(
                    f"class {network.class_names[k]} has zero total demand; "
                    "it cannot circulate in a closed network"
                )
            throughputs[k] = vector[k] / denom

        totals = [0.0] * station_count
        for m in range(station_count):
            totals[m] = sum(throughputs[k] * residence[k][m] for k in range(classes))
        queue[vector] = totals

        for m in ld_indices:
            station = stations[m]
            probs = [0.0] * (customers + 1)
            for j in range(1, customers + 1):
                acc = 0.0
                for k in range(classes):
                    if vector[k] == 0 or station.demands[k] <= 0:
                        continue
                    reduced_probs = marginals[m][decrement(vector, k)]
                    if j - 1 < len(reduced_probs):
                        acc += (
                            station.demands[k]
                            * throughputs[k]
                            * reduced_probs[j - 1]
                        )
                probs[j] = acc / station.rate_multiplier(j)
            p0 = 1.0 - sum(probs[1:])
            if p0 < -_P0_TOLERANCE * max(1.0, customers):
                raise ArithmeticError(
                    f"MVA marginal probabilities lost normalization at {vector} "
                    f"(p0={p0})"
                )
            probs[0] = max(p0, 0.0)
            marginals[m][vector] = probs

        if vector == pop:
            final_residence = residence
            final_throughputs = throughputs
            for k in range(classes):
                for m in range(station_count):
                    final_queue_by_class[k][m] = throughputs[k] * residence[k][m]

    if total(pop) == 0:
        # Degenerate but legal: an empty site. All measures are zero.
        return MVASolution(
            network,
            pop,
            (0.0,) * classes,
            tuple((0.0,) * station_count for _ in range(classes)),
            (0.0,) * station_count,
            tuple((0.0,) * station_count for _ in range(classes)),
        )

    return MVASolution(
        network,
        pop,
        tuple(final_throughputs),
        tuple(tuple(row) for row in final_residence),
        tuple(queue[pop]),
        tuple(tuple(row) for row in final_queue_by_class),
    )


__all__ = ["MVASolution", "solve_mva"]
