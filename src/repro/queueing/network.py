"""Closed multiclass queueing-network descriptions.

A :class:`ClosedNetwork` bundles the stations, the class names, and optional
per-class think times (an implicit infinite-server "terminals" station).
It is the input to both the exact solver (:mod:`repro.queueing.mva`) and the
approximate solver (:mod:`repro.queueing.amva`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.queueing.stations import Station


@dataclass(frozen=True)
class ClosedNetwork:
    """A product-form closed queueing network with ``C`` customer classes.

    Attributes:
        stations: The service centers.  Every station's ``demands`` tuple
            must have one entry per class.
        class_names: Human-readable class labels (defines ``C``).
        think_times: Per-class think time ``Z_k`` spent at the implicit
            terminals between passages; all zeros when omitted.
    """

    stations: Tuple[Station, ...]
    class_names: Tuple[str, ...]
    think_times: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.stations:
            raise ValueError("a network needs at least one station")
        if not self.class_names:
            raise ValueError("a network needs at least one class")
        c = len(self.class_names)
        for station in self.stations:
            if station.class_count != c:
                raise ValueError(
                    f"station {station.name!r} has {station.class_count} demands "
                    f"but the network has {c} classes"
                )
        if not self.think_times:
            object.__setattr__(self, "think_times", (0.0,) * c)
        elif len(self.think_times) != c:
            raise ValueError(
                f"think_times has {len(self.think_times)} entries for {c} classes"
            )
        if any(z < 0 for z in self.think_times):
            raise ValueError(f"negative think time in {self.think_times}")

    @property
    def class_count(self) -> int:
        return len(self.class_names)

    @property
    def station_count(self) -> int:
        return len(self.stations)

    def demand(self, station_index: int, class_index: int) -> float:
        return self.stations[station_index].demands[class_index]

    def total_demand(self, class_index: int) -> float:
        """Total service demand of one class across all stations."""
        return sum(s.demands[class_index] for s in self.stations)

    def station_named(self, name: str) -> Station:
        for station in self.stations:
            if station.name == name:
                return station
        raise KeyError(f"no station named {name!r}")

    def station_index(self, name: str) -> int:
        for index, station in enumerate(self.stations):
            if station.name == name:
                return index
        raise KeyError(f"no station named {name!r}")


def closed_network(
    stations: Sequence[Station],
    class_names: Sequence[str],
    think_times: Optional[Sequence[float]] = None,
) -> ClosedNetwork:
    """Convenience constructor accepting any sequences."""
    return ClosedNetwork(
        tuple(stations),
        tuple(class_names),
        tuple(think_times) if think_times is not None else (),
    )


__all__ = ["ClosedNetwork", "closed_network"]
