"""Population-vector utilities for multiclass MVA.

Exact multiclass MVA is a recursion over the lattice of population vectors
``0 <= v <= N`` (componentwise), evaluated in order of increasing total
population so that every ``v - e_k`` needed has already been computed.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Tuple

Population = Tuple[int, ...]


def validate_population(population: Population) -> Population:
    """Check that a population vector is non-negative integers."""
    vector = tuple(int(n) for n in population)
    if any(n < 0 for n in vector) or vector != tuple(population):
        raise ValueError(f"population must be non-negative integers, got {population}")
    return vector


def zero_like(population: Population) -> Population:
    return (0,) * len(population)


def total(population: Population) -> int:
    return sum(population)


def decrement(population: Population, class_index: int) -> Population:
    """Return ``population - e_k``; requires ``population[k] > 0``."""
    if population[class_index] <= 0:
        raise ValueError(
            f"cannot remove a class-{class_index} customer from {population}"
        )
    return (
        population[:class_index]
        + (population[class_index] - 1,)
        + population[class_index + 1 :]
    )


def lattice(population: Population) -> Iterator[Population]:
    """Yield every vector ``0 <= v <= population`` in increasing-total order.

    Within one total, the order is deterministic (lexicographic), which keeps
    the recursion reproducible and testable.
    """
    vector = validate_population(population)
    ranges = [range(n + 1) for n in vector]
    everything = sorted(itertools.product(*ranges), key=lambda v: (sum(v), v))
    return iter(everything)


def lattice_size(population: Population) -> int:
    """Number of vectors in the lattice (product of ``N_k + 1``)."""
    size = 1
    for n in validate_population(population):
        size *= n + 1
    return size


__all__ = [
    "Population",
    "validate_population",
    "zero_like",
    "total",
    "decrement",
    "lattice",
    "lattice_size",
]
