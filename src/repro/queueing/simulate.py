"""Simulate any closed network description on the DES kernel.

This adapter turns a :class:`~repro.queueing.network.ClosedNetwork` — the
same object the MVA solvers consume — into a running simulation, with all
services exponential (the product-form case).  Two consumers:

* **validation**: for any network, `solve_mva` and `simulate_network` must
  agree within confidence intervals; the property-test suite throws random
  networks at both.
* **beyond product form**: the ``service_cv`` knob switches FCFS stations
  to non-exponential service (deterministic or hyperexponential), where
  MVA is no longer exact — letting users measure how far reality drifts
  from the BCMP assumptions.

Per-class visit demands are interpreted as in MVA: a customer's passage
brings an exponential service requirement with mean ``demands[k]`` at every
station it visits (one visit per station per passage, stations with zero
demand skipped).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.queueing.network import ClosedNetwork
from repro.queueing.population import Population, validate_population
from repro.queueing.stations import StationKind
from repro.sim.engine import Simulator
from repro.sim.monitor import Tally
from repro.sim.process import Hold
from repro.sim.resources import DelayStation, FCFSServer, PSServer, Server


@dataclass(frozen=True)
class SimulatedSolution:
    """Measured steady-state estimates from one simulation run.

    Mirrors the solver interface loosely: per-class throughputs and cycle
    times, per-station utilizations, plus the raw passage counts so callers
    can judge statistical weight.
    """

    network: ClosedNetwork
    population: Population
    throughputs: Tuple[float, ...]
    cycle_times: Tuple[float, ...]
    waiting_times: Tuple[float, ...]
    utilizations: Tuple[float, ...]
    passages: Tuple[int, ...]
    measured_time: float


def _sample_service(rng, mean: float, cv: float) -> float:
    """Draw a service time with the given mean and coefficient of variation.

    cv == 1 → exponential; cv == 0 → deterministic; cv > 1 → two-phase
    hyperexponential (balanced means); 0 < cv < 1 → Erlang-k with k chosen
    to approximate the cv.
    """
    if mean <= 0:
        return 0.0
    if cv == 1.0:
        return rng.expovariate(1.0 / mean)
    if cv == 0.0:
        return mean
    if cv > 1.0:
        # Balanced two-phase hyperexponential (Morse): choose phase i with
        # prob p_i, each exponential, matching mean and cv.
        c2 = cv * cv
        p = 0.5 * (1.0 + math.sqrt((c2 - 1.0) / (c2 + 1.0)))
        if rng.random() < p:
            return rng.expovariate(2.0 * p / mean)
        return rng.expovariate(2.0 * (1.0 - p) / mean)
    # Erlang-k: cv^2 = 1/k.
    k = max(1, round(1.0 / (cv * cv)))
    return sum(rng.expovariate(k / mean) for _ in range(k))


def simulate_network(
    network: ClosedNetwork,
    population: Population,
    horizon: float = 20000.0,
    warmup: Optional[float] = None,
    seed: int = 0,
    service_cv: float = 1.0,
) -> SimulatedSolution:
    """Simulate *network* at *population* and measure steady-state metrics.

    Args:
        network: The closed network description (any station kinds).
        population: Customers per class.
        horizon: Simulated end time.
        warmup: Statistics before this time are discarded (default:
            ``horizon / 10``).
        seed: Master seed.
        service_cv: Coefficient of variation for FCFS/multi-server service
            times (1.0 = exponential = product form).  PS and delay
            stations stay exponential (their MVA results are insensitive
            to the distribution).
    """
    pop = validate_population(population)
    if len(pop) != network.class_count:
        raise ValueError(
            f"population has {len(pop)} entries for {network.class_count} classes"
        )
    if warmup is None:
        warmup = horizon / 10.0
    if not 0 <= warmup < horizon:
        raise ValueError("need 0 <= warmup < horizon")

    sim = Simulator(seed=seed)
    servers: List[Server] = []
    for station in network.stations:
        if station.kind is StationKind.DELAY:
            servers.append(DelayStation(sim, name=station.name))
        elif station.kind is StationKind.PS:
            servers.append(PSServer(sim, name=station.name))
        else:
            servers.append(
                FCFSServer(sim, name=station.name, servers=station.servers)
            )

    classes = network.class_count
    cycle_tallies = [Tally(f"cycle[{k}]") for k in range(classes)]
    wait_tallies = [Tally(f"wait[{k}]") for k in range(classes)]
    passages = [0] * classes

    def customer(class_index: int, index: int):
        rng = sim.rng.stream(f"net.c{class_index}.{index}")
        think = network.think_times[class_index]
        while True:
            if think > 0:
                yield Hold(rng.expovariate(1.0 / think))
            start = sim.now
            service_total = 0.0
            for station, server in zip(network.stations, servers):
                mean = station.demands[class_index]
                if mean <= 0:
                    continue
                if station.kind in (StationKind.PS, StationKind.DELAY):
                    duration = rng.expovariate(1.0 / mean)
                else:
                    duration = _sample_service(rng, mean, service_cv)
                yield server.service(duration)
                service_total += duration
            if sim.now > warmup:
                cycle_tallies[class_index].record(sim.now - start)
                wait_tallies[class_index].record(sim.now - start - service_total)
                passages[class_index] += 1

    for class_index, count in enumerate(pop):
        for index in range(count):
            sim.launch(customer(class_index, index))

    def truncate():
        for server in servers:
            server.reset_statistics()

    sim.schedule_at(warmup, truncate)
    sim.run(until=horizon)

    measured = horizon - warmup
    throughputs = tuple(passages[k] / measured for k in range(classes))
    cycle_times = tuple(t.mean for t in cycle_tallies)
    waiting_times = tuple(t.mean for t in wait_tallies)
    utilizations = tuple(
        server.utilization(
            station.servers if station.kind is StationKind.MULTISERVER else 1
        )
        if station.kind is not StationKind.DELAY
        else 0.0
        for station, server in zip(network.stations, servers)
    )
    return SimulatedSolution(
        network=network,
        population=pop,
        throughputs=throughputs,
        cycle_times=cycle_times,
        waiting_times=waiting_times,
        utilizations=utilizations,
        passages=tuple(passages),
        measured_time=measured,
    )


__all__ = ["SimulatedSolution", "simulate_network"]
