"""Station descriptions for closed multiclass queueing networks.

A *station* is a service center visited by customers of one or more classes.
The Mean Value Analysis solver (:mod:`repro.queueing.mva`) supports the four
BCMP-compatible station kinds the paper's model needs:

* ``PS`` — processor sharing; per-class service demands may differ
  (the DB site's CPU).
* ``FCFS`` — first-come-first-served single server; BCMP requires the
  service distribution to be exponential with a class-independent mean
  (a single disk).
* ``MULTISERVER`` — ``c`` identical FCFS servers behind one queue, modeled
  as a load-dependent station with rate multiplier ``min(j, c)`` (the
  paper's 2-disk I/O subsystem).
* ``DELAY`` — infinite server, pure think time (terminals).

Demands are *total* service demands per passage through the network
(visit ratio × mean service time per visit), the standard MVA input.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence, Tuple


class StationKind(enum.Enum):
    """Service discipline of a station."""

    PS = "ps"
    FCFS = "fcfs"
    MULTISERVER = "multiserver"
    DELAY = "delay"


@dataclass(frozen=True)
class Station:
    """One service center of a closed network.

    Attributes:
        name: Identifier used in solution tables.
        kind: Service discipline.
        demands: Per-class total service demand (seconds per passage);
            ``demands[k]`` is class ``k``'s demand.  A zero demand means the
            class does not visit the station.
        servers: Number of identical servers; only meaningful for
            ``MULTISERVER`` (must be >= 1; 1 degenerates to FCFS).
    """

    name: str
    kind: StationKind
    demands: Tuple[float, ...]
    servers: int = 1

    def __post_init__(self) -> None:
        if not self.demands:
            raise ValueError(f"station {self.name!r}: at least one class required")
        if any(d < 0 for d in self.demands):
            raise ValueError(f"station {self.name!r}: negative demand")
        if self.servers < 1:
            raise ValueError(f"station {self.name!r}: servers must be >= 1")
        if self.kind is StationKind.FCFS and len(set(self.demands)) > 1:
            # BCMP: FCFS requires class-independent exponential service.
            # Zero-demand classes (which skip the station) are exempt.
            nonzero = {d for d in self.demands if d > 0}
            if len(nonzero) > 1:
                raise ValueError(
                    f"station {self.name!r}: FCFS stations need class-independent "
                    f"demands for product form, got {self.demands}"
                )
        if self.kind is StationKind.MULTISERVER:
            nonzero = {d for d in self.demands if d > 0}
            if len(nonzero) > 1:
                raise ValueError(
                    f"station {self.name!r}: multiserver FCFS stations need "
                    f"class-independent demands, got {self.demands}"
                )

    @property
    def class_count(self) -> int:
        return len(self.demands)

    @property
    def is_queueing(self) -> bool:
        """Whether customers can queue here (everything except DELAY)."""
        return self.kind is not StationKind.DELAY

    @property
    def is_load_dependent(self) -> bool:
        return self.kind is StationKind.MULTISERVER and self.servers > 1

    def rate_multiplier(self, customers: int) -> float:
        """Service-rate multiplier μ(j) with *customers* present."""
        if customers <= 0:
            return 0.0
        if self.kind is StationKind.DELAY:
            return float(customers)
        if self.kind is StationKind.MULTISERVER:
            return float(min(customers, self.servers))
        return 1.0


def ps(name: str, demands: Sequence[float]) -> Station:
    """Convenience constructor for a processor-sharing station."""
    return Station(name, StationKind.PS, tuple(demands))


def fcfs(name: str, demands: Sequence[float]) -> Station:
    """Convenience constructor for a single-server FCFS station."""
    return Station(name, StationKind.FCFS, tuple(demands))


def multiserver(name: str, demands: Sequence[float], servers: int) -> Station:
    """Convenience constructor for a ``c``-server FCFS station."""
    return Station(name, StationKind.MULTISERVER, tuple(demands), servers=servers)


def delay(name: str, demands: Sequence[float]) -> Station:
    """Convenience constructor for an infinite-server (think) station."""
    return Station(name, StationKind.DELAY, tuple(demands))


__all__ = ["StationKind", "Station", "ps", "fcfs", "multiserver", "delay"]
