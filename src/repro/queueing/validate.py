"""Sanity checks and closed-form references for queueing solutions.

These helpers back the test suite: they express identities every valid
solution must satisfy (Little's law, population conservation, utilization
laws) and closed-form results for small reference systems the solvers are
checked against.
"""

from __future__ import annotations

import math
from typing import List

from repro.queueing.mva import MVASolution
from repro.queueing.stations import StationKind


def population_residual(solution: MVASolution) -> float:
    """|sum of queue lengths + thinking customers - total population|.

    For a solution of a closed network, customers at stations plus customers
    in think state must equal the population (Little's law applied to the
    whole network).
    """
    network = solution.network
    at_stations = sum(solution.queue_lengths)
    thinking = sum(
        solution.throughputs[k] * network.think_times[k]
        for k in range(network.class_count)
    )
    return abs(at_stations + thinking - sum(solution.population))


def littles_law_residual(solution: MVASolution) -> float:
    """Max over stations of |Q_m - sum_k X_k R_km|."""
    network = solution.network
    worst = 0.0
    for m in range(network.station_count):
        flow = sum(
            solution.throughputs[k] * solution.residence_times[k][m]
            for k in range(network.class_count)
        )
        worst = max(worst, abs(solution.queue_lengths[m] - flow))
    return worst


def utilization_bounds_violation(solution: MVASolution) -> float:
    """How far any station utilization exceeds 1 (0 when all are legal)."""
    worst = 0.0
    for m, station in enumerate(solution.network.stations):
        if station.kind is StationKind.DELAY:
            continue
        u = solution.utilization(m)
        worst = max(worst, u - 1.0)
    return max(worst, 0.0)


def machine_repairman_throughput(
    machines: int, think_time: float, service_time: float
) -> float:
    """Closed-form throughput of the M/M/1 machine-repairman model.

    ``machines`` customers alternate between an exponential think (mean
    ``think_time``) and a single exponential FCFS repairman (mean
    ``service_time``).  Exact MVA must match this closed form, which is
    computed from the Erlang-like product-form state probabilities.
    """
    if machines < 1:
        raise ValueError("need at least one machine")
    rho = service_time / think_time if think_time > 0 else math.inf
    if think_time == 0:
        return 1.0 / service_time
    # p(n) ∝ (N!/(N-n)!) * rho^n for n customers at the repairman.
    weights: List[float] = []
    for n in range(machines + 1):
        w = rho**n
        for i in range(n):
            w *= machines - i
        weights.append(w)
    total = sum(weights)
    busy_probability = 1.0 - weights[0] / total
    return busy_probability / service_time


def mm1_queue_length(utilization: float) -> float:
    """Mean customers in an open M/M/1 at the given utilization."""
    if not 0 <= utilization < 1:
        raise ValueError("M/M/1 requires utilization in [0, 1)")
    return utilization / (1.0 - utilization)


def mmc_erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability of queueing in an open M/M/c.

    ``offered_load`` is ``lambda * service_time`` (in Erlangs); requires
    ``offered_load < servers`` for stability.
    """
    if servers < 1:
        raise ValueError("need at least one server")
    if offered_load >= servers:
        raise ValueError("M/M/c requires offered load < servers")
    a = offered_load
    inv_sum = 0.0
    term = 1.0
    for n in range(servers):
        if n > 0:
            term *= a / n
        inv_sum += term
    term *= a / servers
    last = term * servers / (servers - a)
    return last / (inv_sum + last)


def mmc_mean_wait(servers: int, arrival_rate: float, service_time: float) -> float:
    """Mean queueing delay in an open M/M/c."""
    a = arrival_rate * service_time
    c_prob = mmc_erlang_c(servers, a)
    return c_prob * service_time / (servers - a)


__all__ = [
    "population_residual",
    "littles_law_residual",
    "utilization_bounds_violation",
    "machine_repairman_throughput",
    "mm1_queue_length",
    "mmc_erlang_c",
    "mmc_mean_wait",
]
