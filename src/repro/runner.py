"""The top-level run facade: one entry-point signature for every run.

Before this module, each layer had its own spelling of "run the system":
``DistributedDatabase.run(warmup, duration)``, the experiment harness's
``RunSettings``, and the parallel backend's ``ReplicationTask``.
:class:`RunSpec` is the shared vocabulary — warmup, duration, seed, and
optional telemetry — and two functions cover every use:

* :func:`execute` — run an already-constructed system under a spec
  (the parallel backend's worker calls this);
* :func:`run` — the one-line public entry point: build the system from a
  config and a policy (name or instance), run it, and return a
  :class:`RunReport` bundling results, the typed event stream, and the
  sampled timeline, with exporter helpers attached.

Example::

    import repro

    report = repro.run(
        repro.paper_defaults(),
        "LERT",
        repro.RunSpec(
            warmup=500.0,
            duration=2500.0,
            seed=7,
            telemetry=repro.TelemetryConfig(sample_interval=50.0),
        ),
    )
    report.write_events("events.jsonl")
    report.write_timeline("timeline.csv")
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.faults.plan import FaultPlan
from repro.model.config import SystemConfig
from repro.model.metrics import AvailabilitySummary, SystemResults
from repro.model.system import DistributedDatabase
from repro.policies.base import AllocationPolicy
from repro.policies.registry import make_policy
from repro.telemetry.events import TelemetryEvent
from repro.telemetry.exporters import (
    PathLike,
    write_events_jsonl,
    write_timeline_csv,
    write_timeline_json,
)
from repro.telemetry.sampler import TimelineSample
from repro.telemetry.session import TelemetryConfig, TelemetrySession
from repro.telemetry.tracing.decisions import DecisionRecord
from repro.telemetry.tracing.export import (
    write_decisions_jsonl,
    write_spans_chrome,
)
from repro.telemetry.tracing.spans import Span
from repro.workloads.spec import WorkloadSpec, normalize_workload

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids importing the
    # full experiment harness just to annotate from_settings)
    from repro.experiments.runconfig import RunSettings


@dataclass(frozen=True, slots=True)
class RunSpec:
    """Everything that defines one simulation run (except the model).

    Attributes:
        warmup: Simulated time discarded before measurement (>= 0).
        duration: Length of the measurement window (> 0).
        seed: Master seed for every random stream of the run.
        telemetry: What to collect during the run; ``None`` disables the
            telemetry subsystem entirely (zero overhead).
        faults: Fault plan to install before the run; ``None`` (and a
            no-op plan) runs the plain, faultless life cycle — the run is
            then byte-identical to one without the field.
        workload: Workload spec driving the run; ``None`` (and the
            default closed spec, which normalizes to ``None``) is the
            paper's closed model — byte-identical to one without the
            field.  Unlike faults, workloads bind at system
            construction: :func:`run` passes the spec to the
            constructor, while :func:`execute` only checks that the
            given system was built with it.
    """

    warmup: float = 3000.0
    duration: float = 15000.0
    seed: int = 0
    telemetry: Optional[TelemetryConfig] = None
    faults: Optional[FaultPlan] = None
    workload: Optional[WorkloadSpec] = None

    def __post_init__(self) -> None:
        if self.warmup < 0 or math.isinf(self.warmup) or self.warmup != self.warmup:
            raise ValueError(f"warmup must be finite and >= 0, got {self.warmup}")
        if not (self.duration > 0) or math.isinf(self.duration):
            raise ValueError(
                f"duration must be finite and > 0, got {self.duration}"
            )
        object.__setattr__(self, "workload", normalize_workload(self.workload))

    @classmethod
    def from_settings(
        cls,
        settings: "RunSettings",
        replication: int = 0,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> "RunSpec":
        """Build a spec from an experiment-harness :class:`RunSettings`.

        ``replication`` selects the replication's derived master seed,
        exactly as the harness does.
        """
        return cls(
            warmup=settings.warmup,
            duration=settings.duration,
            seed=settings.seed_for(replication),
            telemetry=telemetry,
            faults=settings.faults,
            workload=settings.workload,
        )


@dataclass(frozen=True, slots=True)
class RunReport:
    """The full outcome of one :func:`run`/:func:`execute` call.

    Attributes:
        results: The run's :class:`SystemResults` (with the telemetry
            summary folded into ``results.telemetry`` when enabled).
        events: The typed event stream (empty when telemetry or its
            event log was disabled).
        timeline: The sampled load timeline (empty when sampling was
            disabled).
        spans: The query-lifecycle spans (empty unless the spec enabled
            ``TelemetryConfig(spans=True)``).
        decisions: The allocation decision audit (empty unless the spec
            enabled ``TelemetryConfig(decisions=True)``).
    """

    results: SystemResults
    events: Tuple[TelemetryEvent, ...] = ()
    timeline: Tuple[TimelineSample, ...] = ()
    spans: Tuple[Span, ...] = ()
    decisions: Tuple[DecisionRecord, ...] = ()

    @property
    def availability(self) -> Optional[AvailabilitySummary]:
        """The run's availability metrics (``None`` for faultless runs)."""
        return self.results.availability

    @property
    def summary(self) -> Dict[str, float]:
        """The metrics-registry snapshot as a plain dict ({} if disabled)."""
        if self.results.telemetry is None:
            return {}
        return dict(self.results.telemetry)

    def write_events(self, path: PathLike) -> Path:
        """Export the event stream as JSONL; returns the path written."""
        return write_events_jsonl(self.events, path)

    def write_timeline(self, path: PathLike, fmt: str = "csv") -> Path:
        """Export the timeline as ``fmt`` ('csv' or 'json')."""
        if fmt == "csv":
            return write_timeline_csv(self.timeline, path)
        if fmt == "json":
            return write_timeline_json(self.timeline, path)
        raise ValueError(f"unknown timeline format {fmt!r}; use 'csv' or 'json'")

    def write_spans(self, path: PathLike) -> Path:
        """Export the spans as Chrome trace-event JSON (Perfetto-loadable)."""
        write_spans_chrome(self.spans, path)
        return Path(path)

    def write_decisions(self, path: PathLike) -> Path:
        """Export the decision audit as canonical JSONL."""
        write_decisions_jsonl(self.decisions, path)
        return Path(path)


def execute(system: DistributedDatabase, spec: RunSpec) -> RunReport:
    """Run an already-constructed *system* under *spec*.

    The system must be freshly constructed (its clock at 0); ``spec.seed``
    is *not* re-applied here — seeds bind at system construction.  This is
    the single choke point every runner shares: the parallel backend's
    workers, the experiment harness, and :func:`run` all come through it.
    ``spec.faults`` is installed here (a no-op plan installs nothing), so
    callers construct systems without fault arguments.  ``spec.workload``
    cannot be installed after the fact — arrival processes start at time
    0 inside the constructor — so it must already match the system's.
    """
    if spec.workload != system.workload_spec:
        raise ValueError(
            "spec.workload does not match the system's workload: workloads "
            "bind at construction (pass workload= to DistributedDatabase, "
            "or use repro.run)"
        )
    if spec.faults is not None:
        installed = system.fault_injector
        if installed is None or installed.plan != spec.faults:
            # Idempotent when the constructor already took the same plan;
            # install_faults itself rejects conflicting double-installs.
            system.install_faults(spec.faults)
    if spec.telemetry is None:
        return RunReport(results=system.run(spec.warmup, spec.duration))
    with TelemetrySession(system, spec.telemetry) as session:
        results = system.run(spec.warmup, spec.duration)
    return RunReport(
        results=session.merge(results),
        events=session.events,
        timeline=session.timeline,
        spans=session.spans,
        decisions=session.decisions,
    )


def run(
    config: SystemConfig,
    policy: Union[str, AllocationPolicy],
    spec: RunSpec = RunSpec(),
) -> RunReport:
    """Build the paper's system and run it — the public one-liner.

    Args:
        config: Model parameters (e.g. :func:`repro.paper_defaults`).
        policy: A registered policy name ("LOCAL", "BNQ", "BNQRD",
            "LERT", ...) or an unbound :class:`AllocationPolicy` instance.
        spec: Run lengths, seed, and telemetry options.
    """
    instance = make_policy(policy) if isinstance(policy, str) else policy
    system = DistributedDatabase(
        config, instance, seed=spec.seed, workload=spec.workload
    )
    return execute(system, spec)


__all__ = ["RunSpec", "RunReport", "execute", "run"]
