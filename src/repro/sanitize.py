"""Runtime determinism sanitizer: instrumented replay comparison.

The static flow rules (``repro-lint --flow``) prove discipline *in the
source*; this module checks the same property *at runtime*: run the same
scenario twice under instrumentation and require the two traces to be
identical, draw for draw and event for event.  A divergence localizes
the first nondeterministic decision — which stream drew differently, or
which event popped out of order — instead of the downstream symptom
("mean response time differs in the 12th digit").

Instrumentation is a context manager that patches, class-level and
reversibly:

* :meth:`repro.sim.rng.RandomStreams.stream` — every fetched stream is
  wrapped in a recording proxy, so each draw logs
  ``(stream name, method, value)``.  ``spawn``-ed child families are
  covered automatically (the patch is on the class).
* ``pop``/``pop_due`` on both future-event-list implementations —
  every event the engine fires logs ``(time, priority, seq, label)``.
  :meth:`Simulator._drive` binds ``queue.pop_due`` at entry, so the
  patch must be active *before* ``run()`` — entering the context
  manager before building the system satisfies this.

Each record is folded into a running BLAKE2b digest, so comparing two
multi-million-event traces is O(1) memory beyond the bounded record
buffer kept for diagnostics.

Run the built-in scenario (faults + telemetry enabled, both queue
implementations) with::

    python -m repro.sanitize --smoke
"""

from __future__ import annotations

import argparse
import hashlib
import random
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from contextlib import contextmanager

from repro.faults.plan import FaultPlan, SiteOutage
from repro.model.config import paper_defaults
from repro.runner import RunReport, RunSpec, run
from repro.sim.events import CalendarQueue, Event, EventQueue
from repro.sim.rng import RandomStreams
from repro.telemetry.session import TelemetryConfig

#: ``random.Random`` methods recorded by the stream proxy — kept in sync
#: with :data:`repro.lint.flow.dataflow.DRAW_METHODS`.
RECORDED_DRAWS: Tuple[str, ...] = (
    "random",
    "uniform",
    "triangular",
    "randint",
    "randrange",
    "getrandbits",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "expovariate",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "betavariate",
    "gammavariate",
)

#: Records kept verbatim for diagnostics; the digest always covers all.
MAX_KEPT_RECORDS = 200_000


@dataclass
class DeterminismTrace:
    """One run's ordered record of draws and event pops."""

    records: List[str] = field(default_factory=list)
    count: int = 0
    dropped: int = 0
    _digest: "hashlib.blake2b" = field(
        default_factory=lambda: hashlib.blake2b(digest_size=16)
    )

    def add(self, record: str) -> None:
        self.count += 1
        self._digest.update(record.encode("utf-8"))
        self._digest.update(b"\n")
        if len(self.records) < MAX_KEPT_RECORDS:
            self.records.append(record)
        else:
            self.dropped += 1

    def draw(self, stream: str, method: str, value: object) -> None:
        self.add(f"draw {stream} {method} {value!r}")

    def event(self, event: Event) -> None:
        self.add(
            f"event t={event.time!r} p={event.priority} seq={event.seq} "
            f"label={event.label}"
        )

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


class _RecordingStream:
    """Wraps one named ``random.Random``, logging every recorded draw."""

    def __init__(
        self, name: str, underlying: random.Random, trace: DeterminismTrace
    ) -> None:
        self._name = name
        self._underlying = underlying
        self._trace = trace

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._underlying, attr)
        if attr in RECORDED_DRAWS and callable(value):
            name = self._name
            trace = self._trace

            def recorded(*args: Any, **kwargs: Any) -> Any:
                result = value(*args, **kwargs)
                # shuffle mutates in place and returns None; log length
                # instead so the record still pins the call order.
                logged = result if result is not None else f"<{attr}>"
                trace.draw(name, attr, logged)
                return result

            return recorded
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<recorded stream {self._name!r}>"


@contextmanager
def capture_trace() -> Iterator[DeterminismTrace]:
    """Instrument stream draws and event pops for the enclosed code.

    Yields the :class:`DeterminismTrace` being filled.  Patches are
    class-level, so every :class:`Simulator` (and every ``spawn``-ed
    stream family) constructed inside the block is covered; they are
    restored on exit even if the block raises.  Not reentrant.
    """
    trace = DeterminismTrace()
    proxies: Dict[int, _RecordingStream] = {}

    original_stream = RandomStreams.stream

    def recording_stream(self: RandomStreams, name: str) -> Any:
        underlying = original_stream(self, name)
        proxy = proxies.get(id(underlying))
        if proxy is None:
            proxy = _RecordingStream(name, underlying, trace)
            proxies[id(underlying)] = proxy
        return proxy

    def wrap_pop(
        original: Callable[..., Optional[Event]],
    ) -> Callable[..., Optional[Event]]:
        def recording_pop(self: Any, *args: Any) -> Optional[Event]:
            event = original(self, *args)
            if event is not None:
                trace.event(event)
            return event

        return recording_pop

    patches: List[Tuple[type, str, Any]] = [
        (RandomStreams, "stream", RandomStreams.stream),
        (EventQueue, "pop", EventQueue.pop),
        (EventQueue, "pop_due", EventQueue.pop_due),
        (CalendarQueue, "pop", CalendarQueue.pop),
        (CalendarQueue, "pop_due", CalendarQueue.pop_due),
    ]
    setattr(RandomStreams, "stream", recording_stream)
    setattr(EventQueue, "pop", wrap_pop(EventQueue.pop))
    setattr(EventQueue, "pop_due", wrap_pop(EventQueue.pop_due))
    setattr(CalendarQueue, "pop", wrap_pop(CalendarQueue.pop))
    setattr(CalendarQueue, "pop_due", wrap_pop(CalendarQueue.pop_due))
    try:
        yield trace
    finally:
        for owner, attr, original in patches:
            setattr(owner, attr, original)


@dataclass(frozen=True)
class Divergence:
    """The first point at which two traces disagree."""

    index: int
    first: Optional[str]
    second: Optional[str]

    def render(self) -> str:
        return (
            f"first divergence at record {self.index}:\n"
            f"  run 1: {self.first or '<trace ended>'}\n"
            f"  run 2: {self.second or '<trace ended>'}"
        )


@dataclass(frozen=True)
class SanitizeReport:
    """Outcome of comparing two instrumented replays."""

    identical: bool
    records: Tuple[int, int]
    digests: Tuple[str, str]
    divergence: Optional[Divergence]

    def render(self) -> str:
        if self.identical:
            return (
                f"replays identical: {self.records[0]} records, "
                f"digest {self.digests[0]}"
            )
        lines = [
            "replays DIVERGED:",
            f"  run 1: {self.records[0]} records, digest {self.digests[0]}",
            f"  run 2: {self.records[1]} records, digest {self.digests[1]}",
        ]
        if self.divergence is not None:
            lines.append(self.divergence.render())
        else:
            lines.append(
                "  (divergence beyond the kept-record window; digests differ)"
            )
        return "\n".join(lines)


def _first_divergence(
    first: DeterminismTrace, second: DeterminismTrace
) -> Optional[Divergence]:
    for index in range(max(len(first.records), len(second.records))):
        a = first.records[index] if index < len(first.records) else None
        b = second.records[index] if index < len(second.records) else None
        if a != b:
            return Divergence(index=index, first=a, second=b)
    return None


def compare_replays(
    scenario: Callable[[], object], runs: int = 2
) -> SanitizeReport:
    """Run *scenario* *runs* times under instrumentation and compare.

    The scenario callable must construct everything it runs from scratch
    (seed included) — instrumentation starts before it is invoked, so
    systems built inside are fully covered.
    """
    if runs < 2:
        raise ValueError(f"need at least 2 runs to compare, got {runs}")
    traces: List[DeterminismTrace] = []
    for _ in range(runs):
        with capture_trace() as trace:
            scenario()
        traces.append(trace)
    reference = traces[0]
    for candidate in traces[1:]:
        if candidate.hexdigest() != reference.hexdigest():
            return SanitizeReport(
                identical=False,
                records=(reference.count, candidate.count),
                digests=(reference.hexdigest(), candidate.hexdigest()),
                divergence=_first_divergence(reference, candidate),
            )
    return SanitizeReport(
        identical=True,
        records=(reference.count, traces[1].count),
        digests=(reference.hexdigest(), traces[1].hexdigest()),
        divergence=None,
    )


def smoke_scenario(seed: int = 11) -> Callable[[], RunReport]:
    """The built-in replay scenario: faults and telemetry both enabled.

    Short horizon (50 warmup + 250 measured) over the paper's 6-site
    system, with one mid-run site outage and the timeline sampler armed —
    the combination exercises every subsystem the flow rules reason
    about: fault streams, policy decision streams, telemetry scheduling.
    """
    config = paper_defaults()
    spec = RunSpec(
        warmup=50.0,
        duration=250.0,
        seed=seed,
        telemetry=TelemetryConfig(events=True, sample_interval=25.0),
        faults=FaultPlan(
            site_outages=(SiteOutage(site=1, at=120.0, duration=60.0),)
        ),
    )

    def scenario() -> RunReport:
        return run(config, "LERT", spec)

    return scenario


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.sanitize``)."""
    parser = argparse.ArgumentParser(
        prog="repro-sanitize",
        description=(
            "runtime determinism sanitizer: replay a scenario under draw/"
            "event instrumentation and verify the traces are identical"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the built-in faulted + telemetry scenario",
    )
    parser.add_argument(
        "--seed", type=int, default=11, help="master seed (default: 11)"
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=2,
        help="instrumented replays to compare (default: 2)",
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.print_help()
        return 2
    report = compare_replays(smoke_scenario(seed=args.seed), runs=args.runs)
    print(report.render())
    return 0 if report.identical else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())


__all__ = [
    "RECORDED_DRAWS",
    "MAX_KEPT_RECORDS",
    "DeterminismTrace",
    "capture_trace",
    "Divergence",
    "SanitizeReport",
    "compare_replays",
    "smoke_scenario",
    "main",
]
