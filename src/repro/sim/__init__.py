"""Discrete-event simulation kernel (the DISS-equivalent substrate).

Exports the pieces model code actually touches:

* :class:`Simulator` — clock, event loop, process launcher, RNG streams.
* :class:`Hold`, :class:`Passivate` — process commands.
* :class:`FCFSServer`, :class:`PSServer`, :class:`DelayStation` — resources.
* :class:`Tally`, :class:`TimeWeighted` — statistics monitors.
* Distribution classes for declarative workload specifications.
"""

from repro.sim.engine import Simulator
from repro.sim.errors import (
    MonitorError,
    ProcessError,
    ResourceError,
    SchedulingError,
    SimulationError,
)
from repro.sim.monitor import Tally, TimeWeighted
from repro.sim.process import Hold, Passivate, Process, ProcessState, WaitFor
from repro.sim.resources import DelayStation, FCFSServer, PSServer, Server
from repro.sim.rng import (
    Constant,
    Discrete,
    Distribution,
    Exponential,
    Geometric,
    RandomStreams,
    Uniform,
    UniformAround,
    bernoulli,
    choose_index,
)
from repro.sim.stats import IntervalEstimate, batch_means, mean_and_ci, relative_change

__all__ = [
    "Simulator",
    "SimulationError",
    "SchedulingError",
    "ProcessError",
    "ResourceError",
    "MonitorError",
    "Tally",
    "TimeWeighted",
    "Hold",
    "Passivate",
    "WaitFor",
    "Process",
    "ProcessState",
    "Server",
    "FCFSServer",
    "PSServer",
    "DelayStation",
    "RandomStreams",
    "Distribution",
    "Constant",
    "Exponential",
    "Uniform",
    "UniformAround",
    "Geometric",
    "Discrete",
    "bernoulli",
    "choose_index",
    "IntervalEstimate",
    "batch_means",
    "mean_and_ci",
    "relative_change",
]
