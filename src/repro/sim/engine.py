"""The simulation engine: clock, event loop, and process management.

:class:`Simulator` is the single object that owns the simulated clock and
the future-event list.  Model components (resources, processes, monitors)
hold a reference to it.  The engine is deliberately free of any modelling
vocabulary — queries, sites, and networks live in :mod:`repro.model`.

Typical use::

    sim = Simulator(seed=42)
    cpu = PSServer(sim, name="cpu")

    def job(demand: float):
        yield cpu.service(demand)

    sim.launch(job(1.5))
    sim.run(until=100.0)
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Generator, Optional

from repro.sim.errors import ProcessError, SchedulingError
from repro.sim.events import DEFAULT_PRIORITY, Event, EventQueue, validate_delay
from repro.sim.rng import RandomStreams
from repro.telemetry.bus import EventBus
from repro.telemetry.events import TraceMessage


class Simulator:
    """Discrete-event simulation engine.

    Attributes:
        now: Current simulated time.  Starts at 0 and only moves forward.
        seed: The master seed the engine was constructed with.
        rng: Named random-number streams (see :class:`~repro.sim.rng.RandomStreams`).
        bus: The run's typed telemetry event bus (see
            :mod:`repro.telemetry.bus`).  Labelled kernel events are
            published as :class:`~repro.telemetry.events.TraceMessage`
            — but only when something subscribed to ``TraceMessage``
            specifically, so an idle bus costs one attribute test per event.

    .. deprecated:: 1.1
        The ``trace`` constructor argument (a bare ``(time, text)``
        callable) is deprecated in favor of subscribing to
        :class:`~repro.telemetry.events.TraceMessage` on :attr:`bus`.
        Passing it still works — a compat shim renders ``TraceMessage``
        events back into ``(time, text)`` calls — but emits a
        :class:`DeprecationWarning`.
    """

    def __init__(self, seed: int = 0, trace: Optional[Callable[[float, str], None]] = None) -> None:
        self.now: float = 0.0
        self.seed = seed
        self.rng = RandomStreams(seed)
        self.bus = EventBus()
        self._queue = EventQueue()
        self._running = False
        self._process_count = 0
        self._event_count = 0
        #: The process whose generator is currently executing, or ``None``
        #: when control is in plain event callbacks.  Maintained by
        #: :class:`~repro.sim.process.Process`; model code reads it to
        #: learn "who am I" inside a ``yield from`` chain (the fault layer
        #: uses it to register the executing process at a site).
        self.current_process: Optional[Any] = None
        if trace is not None:
            warnings.warn(
                "Simulator(trace=...) is deprecated; subscribe to "
                "repro.telemetry.events.TraceMessage on Simulator.bus "
                "instead (see docs/telemetry.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            self.bus.subscribe(
                TraceMessage,
                lambda event: trace(event.time, event.label),  # type: ignore[attr-defined]
            )

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule *callback* to run ``delay`` time units from now.

        Args:
            delay: Non-negative, finite offset from the current time.
            callback: Zero-argument callable run when the event fires.
            priority: Tie-break among simultaneous events (lower first).
            label: Optional tag for traces.

        Returns:
            The scheduled :class:`Event`; keep it if you may need to cancel.
        """
        validate_delay(self.now, delay)
        event = Event(self.now + delay, callback, priority=priority, label=label)
        return self._queue.push(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule *callback* at absolute simulated time *time*."""
        if time < self.now:
            raise SchedulingError(f"cannot schedule at t={time} < now={self.now}")
        return self.schedule(time - self.now, callback, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        """Retract a previously scheduled event.

        Cancelling an event that has already fired or was already
        cancelled is a documented no-op.  The fault injector relies on
        this: when a site crash and a service completion land on the same
        timestamp, event ``priority`` decides who runs first and the
        loser's retraction is silently ignored.
        """
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Process management (see repro.sim.process for the Process class)
    # ------------------------------------------------------------------
    def launch(self, generator: Generator[Any, Any, Any], name: Optional[str] = None, delay: float = 0.0):
        """Wrap *generator* in a :class:`~repro.sim.process.Process` and start it.

        The process's first step runs ``delay`` time units from now (default:
        at the current instant, after already-scheduled simultaneous events).

        Returns:
            The new :class:`~repro.sim.process.Process`.
        """
        from repro.sim.process import Process  # local import to avoid a cycle

        process = Process(self, generator, name=name)
        process.activate(delay=delay)
        self._process_count += 1
        return process

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.

        Returns:
            ``True`` if an event fired, ``False`` if the queue was empty.
        """
        if not self._queue:
            return False
        event = self._queue.pop()
        if event.time < self.now:
            raise SchedulingError(
                f"time went backwards: event at {event.time} < now {self.now}"
            )
        self.now = event.time
        self._event_count += 1
        # Guarded emit: TraceMessage is high-volume, so it is produced only
        # for *explicit* subscribers (wants_type), never for catch-all ones.
        bus = self.bus
        if bus.active and event.label is not None and bus.wants_type(TraceMessage):
            bus.emit(TraceMessage(time=self.now, label=event.label))
        event.callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: Stop once the clock would pass this time.  The clock is
                advanced to exactly ``until`` on a timed stop so that
                time-weighted statistics close out correctly.
            max_events: Stop after firing this many events (safety valve for
                tests); ``None`` means unlimited.

        Returns:
            The simulated time at which the loop stopped.
        """
        if self._running:
            raise ProcessError("simulator is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                self.step()
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self.now < until and self._queue.peek_time() is None:
            # Event list drained before the horizon: advance the clock so
            # callers measuring over [0, until] get consistent denominators.
            self.now = until
        return self.now

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the future-event list."""
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._event_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self.now:.6g} pending={self.pending_events} "
            f"fired={self._event_count}>"
        )


__all__ = ["Simulator"]
