"""The simulation engine: clock, event loop, and process management.

:class:`Simulator` is the single object that owns the simulated clock and
the future-event list.  Model components (resources, processes, monitors)
hold a reference to it.  The engine is deliberately free of any modelling
vocabulary — queries, sites, and networks live in :mod:`repro.model`.

Typical use::

    sim = Simulator(seed=42)
    cpu = PSServer(sim, name="cpu")

    def job(demand: float):
        yield cpu.service(demand)

    sim.launch(job(1.5))
    sim.run(until=100.0)

Hot-path layout (see ``docs/performance.md``): the unbounded
:meth:`Simulator.run` loop is *subscription-swapped* — it runs a tight
fast loop (pop, advance clock, call) while nobody subscribes to
:class:`~repro.telemetry.events.TraceMessage`, and switches to a tracing
loop only while an explicit subscriber exists.  Both loops drive the
queue through :meth:`~repro.sim.events.EventQueue.pop_due`, which fuses
the peek / horizon-check / pop triple of the pre-overhaul loop into one
call.  The golden suite (``tests/golden/``) pins that every layout
replays recorded runs byte-identically.
"""

from __future__ import annotations

import math
import warnings
from typing import Any, Callable, Generator, Optional

from repro.sim.errors import ProcessError, SchedulingError
from repro.sim.events import (
    DEFAULT_PRIORITY,
    Event,
    make_event_queue,
    validate_delay,
)
from repro.sim.rng import RandomStreams
from repro.telemetry.bus import EventBus
from repro.telemetry.events import TraceMessage

_INFINITY = math.inf


class Simulator:
    """Discrete-event simulation engine.

    Attributes:
        now: Current simulated time.  Starts at 0 and only moves forward.
        seed: The master seed the engine was constructed with.
        rng: Named random-number streams (see :class:`~repro.sim.rng.RandomStreams`).
        bus: The run's typed telemetry event bus (see
            :mod:`repro.telemetry.bus`).  Labelled kernel events are
            published as :class:`~repro.telemetry.events.TraceMessage`
            — but only when something subscribed to ``TraceMessage``
            specifically, so an idle bus costs one attribute test per event.

    Args:
        seed: Master seed for the run's random streams.
        queue: Future-event-list implementation — ``"heap"`` (default,
            a lazy-deletion binary heap) or ``"calendar"`` (a calendar
            queue for dense horizons).  Both produce byte-identical
            runs; see :func:`~repro.sim.events.make_event_queue`.

    .. deprecated:: 1.1
        The ``trace`` constructor argument (a bare ``(time, text)``
        callable) is deprecated in favor of subscribing to
        :class:`~repro.telemetry.events.TraceMessage` on :attr:`bus`.
        Passing it still works — a compat shim renders ``TraceMessage``
        events back into ``(time, text)`` calls — but emits a
        :class:`DeprecationWarning`.
    """

    __slots__ = (
        "now",
        "seed",
        "rng",
        "bus",
        "_queue",
        "_running",
        "_process_count",
        "_event_count",
        "current_process",
    )

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[Callable[[float, str], None]] = None,
        queue: str = "heap",
    ) -> None:
        self.now: float = 0.0
        self.seed = seed
        self.rng = RandomStreams(seed)
        self.bus = EventBus()
        self._queue = make_event_queue(queue)
        self._running = False
        self._process_count = 0
        self._event_count = 0
        #: The process whose generator is currently executing, or ``None``
        #: when control is in plain event callbacks.  Maintained by
        #: :class:`~repro.sim.process.Process`; model code reads it to
        #: learn "who am I" inside a ``yield from`` chain (the fault layer
        #: uses it to register the executing process at a site).
        self.current_process: Optional[Any] = None
        if trace is not None:
            warnings.warn(
                "Simulator(trace=...) is deprecated; subscribe to "
                "repro.telemetry.events.TraceMessage on Simulator.bus "
                "instead (see docs/telemetry.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            self.bus.subscribe(
                TraceMessage,
                lambda event: trace(event.time, event.label),  # type: ignore[attr-defined]
            )

    # ------------------------------------------------------------------
    # Event scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule *callback* to run ``delay`` time units from now.

        Args:
            delay: Non-negative, finite offset from the current time.
            callback: Zero-argument callable run when the event fires.
            priority: Tie-break among simultaneous events (lower first).
            label: Optional tag for traces.

        Returns:
            The scheduled :class:`Event`; keep it if you may need to cancel.
        """
        if not 0.0 <= delay < _INFINITY:
            # NaN fails the chained comparison too; validate_delay raises
            # the precise diagnostic for all three invalid shapes.
            validate_delay(self.now, delay)
        event = Event(self.now + delay, callback, priority=priority, label=label)
        return self._queue.push(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: Optional[str] = None,
    ) -> Event:
        """Schedule *callback* at absolute simulated time *time*."""
        if time < self.now:
            raise SchedulingError(f"cannot schedule at t={time} < now={self.now}")
        return self.schedule(time - self.now, callback, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        """Retract a previously scheduled event.

        Cancelling an event that has already fired or was already
        cancelled is a documented no-op.  The fault injector relies on
        this: when a site crash and a service completion land on the same
        timestamp, event ``priority`` decides who runs first and the
        loser's retraction is silently ignored.
        """
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Process management (see repro.sim.process for the Process class)
    # ------------------------------------------------------------------
    def launch(self, generator: Generator[Any, Any, Any], name: Optional[str] = None, delay: float = 0.0):
        """Wrap *generator* in a :class:`~repro.sim.process.Process` and start it.

        The process's first step runs ``delay`` time units from now (default:
        at the current instant, after already-scheduled simultaneous events).

        Returns:
            The new :class:`~repro.sim.process.Process`.
        """
        from repro.sim.process import Process  # local import to avoid a cycle

        process = Process(self, generator, name=name)
        process.activate(delay=delay)
        self._process_count += 1
        return process

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.

        Returns:
            ``True`` if an event fired, ``False`` if the queue was empty.
        """
        queue = self._queue
        if not queue:
            return False
        event = queue.pop()
        if event.time < self.now:
            raise SchedulingError(
                f"time went backwards: event at {event.time} < now {self.now}"
            )
        self.now = event.time
        self._event_count += 1
        # Guarded emit: TraceMessage is high-volume, so it is produced only
        # for *explicit* subscribers (bus.trace_wanted), never catch-alls.
        if self.bus.trace_wanted and event.label is not None:
            self.bus.emit(TraceMessage(time=self.now, label=event.label))
        event.callback()
        if event.recyclable:
            queue.recycle(event)
        return True

    def _drive(self, limit: float) -> None:
        """The unbounded inner loop: fire every event with time <= limit.

        Two hand-specialized loops with hoisted locals; control hops
        between them only when a ``TraceMessage`` subscription appears or
        disappears mid-run.  The fired-event tally is flushed to
        ``self._event_count`` even when a callback raises.
        """
        queue = self._queue
        pop_due = queue.pop_due
        recycle = queue.recycle
        bus = self.bus
        fired = 0
        try:
            while True:
                if not bus.trace_wanted:
                    while True:
                        event = pop_due(limit)
                        if event is None:
                            return
                        self.now = event.time
                        fired += 1
                        event.callback()
                        if event.recyclable:
                            recycle(event)
                        if bus.trace_wanted:
                            break
                else:
                    emit = bus.emit
                    while True:
                        event = pop_due(limit)
                        if event is None:
                            return
                        self.now = event.time
                        fired += 1
                        label = event.label
                        if label is not None:
                            emit(TraceMessage(time=event.time, label=label))
                        event.callback()
                        if event.recyclable:
                            recycle(event)
                        if not bus.trace_wanted:
                            break
        finally:
            self._event_count += fired

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: Stop once the clock would pass this time.  The clock is
                advanced to exactly ``until`` on a timed stop so that
                time-weighted statistics close out correctly.
            max_events: Stop after firing this many events (safety valve for
                tests); ``None`` means unlimited.

        Returns:
            The simulated time at which the loop stopped.
        """
        if self._running:
            raise ProcessError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            if max_events is None:
                self._drive(_INFINITY if until is None else until)
                if until is not None and (
                    self._queue.peek_time() is not None or self.now < until
                ):
                    # Timed stop (pending events beyond the horizon) or a
                    # drained event list: pin the clock to the horizon so
                    # callers measuring over [0, until] get consistent
                    # denominators.
                    self.now = until
            else:
                # Bounded runs are a test-only safety valve; they keep the
                # straightforward peek/step loop.  Note the clock is *not*
                # pinned to the horizon when the event budget runs out
                # with work still due before it.
                fired = 0
                while fired < max_events:
                    next_time = self._queue.peek_time()
                    if next_time is None:
                        break
                    if until is not None and next_time > until:
                        self.now = until
                        break
                    self.step()
                    fired += 1
                if (
                    until is not None
                    and self.now < until
                    and self._queue.peek_time() is None
                ):
                    self.now = until
        finally:
            self._running = False
        return self.now

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the future-event list."""
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._event_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self.now:.6g} pending={self.pending_events} "
            f"fired={self._event_count}>"
        )


__all__ = ["Simulator"]
