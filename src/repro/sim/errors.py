"""Exception hierarchy for the discrete-event simulation kernel.

All kernel-level failures derive from :class:`SimulationError` so that model
code can catch simulator problems without accidentally swallowing ordinary
Python errors raised by model logic.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by the simulation kernel."""


class SchedulingError(SimulationError):
    """An event was scheduled at an invalid time (e.g. in the past)."""


class ProcessError(SimulationError):
    """A process was driven in an invalid way.

    Examples: activating an already-terminated process, reactivating a
    process that is not passivated, or a process yielding an object that is
    not a kernel command.
    """


class ResourceError(SimulationError):
    """A resource was used incorrectly (e.g. a negative service demand)."""


class MonitorError(SimulationError):
    """A statistics monitor was updated inconsistently."""
