"""Event objects and the future-event list for the simulation kernel.

The kernel is event-driven at its core: every state change happens inside an
:class:`Event` that fires at a simulated time.  Process-oriented modelling
(:mod:`repro.sim.process`) is layered on top by turning each generator resume
into an event.

Two future-event-list implementations share one contract — a total order by
``(time, priority, seq)`` with lazy deletion:

* :class:`EventQueue` (default): a binary heap of ``(time, priority, seq,
  event)`` *tuples*, so every sift comparison runs at C speed instead of
  calling :meth:`Event.__lt__`, plus a free-list that recycles the
  :class:`Event` objects of kernel-internal resume events (see
  :meth:`EventQueue.rent`).
* :class:`CalendarQueue` (optional, for dense horizons): a two-level
  calendar — per-bucket heaps keyed by ``floor(time / bucket_width)`` with
  a lazily deduplicated heap of bucket keys — that pops in exactly the
  same global order.

The monotonically increasing sequence number guarantees deterministic FIFO
ordering among events scheduled for the same instant, which in turn makes
whole simulation runs exactly reproducible for a given random seed.  The
golden-trace suite (``tests/golden/``) pins this: every implementation must
replay recorded runs byte-identically.

The queues' internal structures are deliberately private: reprolint rule
RL012 forbids ``heapq`` (and ``_heap`` access) everywhere else in
``repro``, so the ordering/lazy-deletion invariants have exactly one home.
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    TypeVar,
    Union,
)

from repro.sim.errors import SchedulingError

#: Default event priority.  Lower values fire earlier among simultaneous
#: events.  Model code rarely needs to change this; the kernel uses elevated
#: priorities internally for bookkeeping events that must precede model logic.
DEFAULT_PRIORITY = 0

_INFINITY = float("inf")


def _discarded_callback() -> None:  # pragma: no cover - never scheduled
    raise SchedulingError("a recycled event's callback fired")


class Event:
    """A callback scheduled to run at a simulated time.

    Events are created through :meth:`repro.sim.engine.Simulator.schedule`
    rather than directly.  An event may be *cancelled*, which is the only
    safe way to retract it: cancelled events stay in the heap but are
    silently discarded when popped (lazy deletion).

    Attributes:
        time: Simulated time at which the event fires.
        priority: Tie-break among simultaneous events (lower fires first).
        seq: Monotone sequence number assigned by the event queue;
            final FIFO tie-break.
        callback: Zero-argument callable invoked when the event fires.
        label: Optional human-readable tag used in traces and error messages.
        fired: Whether the event has already been popped by the engine.
            A fired event can no longer be cancelled (cancelling it is a
            no-op, see :meth:`EventQueue.cancel`).
        recyclable: Whether the object belongs to the queue's free-list
            (kernel-internal resume events whose handles provably never
            escape, see :meth:`EventQueue.rent`).  External code never
            sees a recyclable event.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "label",
        "fired",
        "recyclable",
        "_cancelled",
    )

    def __init__(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: Optional[str] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = -1  # assigned on push
        self.callback = callback
        self.label = label
        self.fired = False
        self.recyclable = False
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """Whether the event has been retracted and will not fire."""
        return self._cancelled

    def cancel(self) -> None:
        """Retract the event.

        Cancelling an event that has already fired or was already cancelled
        is a no-op; this keeps resource code simple (it may hold on to stale
        completion events).
        """
        self._cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.label!r}" if self.label else ""
        state = " cancelled" if self._cancelled else ""
        return f"<Event t={self.time:.6g} p={self.priority}{tag}{state}>"


#: One future-event-list entry.  The ``seq`` element is unique, so tuple
#: comparison never reaches the (incomparable-by-design) ``Event`` element,
#: and the global order is exactly ``(time, priority, seq)`` — identical to
#: the pre-overhaul ``Event.__lt__`` heap.
_Entry = Tuple[float, int, int, Event]


class EventQueue:
    """Future-event list: a lazy-deletion binary heap of entry tuples.

    The queue never raises on cancelled events; they are skipped during
    :meth:`pop`.  ``len(queue)`` counts live (non-cancelled) events.

    Hot-path design (see ``docs/performance.md``):

    * entries are ``(time, priority, seq, event)`` tuples so ``heapq``
      sift comparisons stay in C — the pre-overhaul heap called the
      Python-level ``Event.__lt__`` O(log n) times per push/pop;
    * :meth:`rent`/:meth:`recycle` reuse :class:`Event` objects for the
      engine's internal resume events (one slot-write burst instead of an
      allocation per event);
    * :meth:`pop_due` fuses the engine loop's "peek, bounds-check, pop"
      triple into a single call that drops cancelled entries as it goes.
    """

    __slots__ = ("_heap", "_seq", "_live", "_free")

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._seq = 0
        self._live = 0
        self._free: List[Event] = []

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert *event* and stamp its FIFO sequence number."""
        seq = self._seq
        self._seq = seq + 1
        event.seq = seq
        heapq.heappush(self._heap, (event.time, event.priority, seq, event))
        self._live += 1
        return event

    def rent(
        self, time: float, callback: Callable[[], None], label: Optional[str]
    ) -> Event:
        """Insert a *recyclable* event, reusing a free-listed object.

        Only for call sites whose handle provably never escapes the
        kernel (the process layer's resume events): the caller must drop
        its reference once the event fires or is cancelled, because the
        object returns to the free-list via :meth:`recycle` and will be
        reincarnated with a fresh ``seq``.  Stale heap entries of a
        recycled event are impossible — recycling happens only when the
        event's entry leaves the heap.  Rented events always carry
        :data:`DEFAULT_PRIORITY`.
        """
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.callback = callback
            event.label = label
            event.fired = False
            event._cancelled = False
        else:
            event = Event(time, callback, label=label)
            event.recyclable = True
        seq = self._seq
        self._seq = seq + 1
        event.seq = seq
        heapq.heappush(self._heap, (time, DEFAULT_PRIORITY, seq, event))
        self._live += 1
        return event

    def recycle(self, event: Event) -> None:
        """Return a fired-or-skipped recyclable event to the free-list.

        Called by the engine after the callback ran, and internally when a
        cancelled recyclable entry is dropped; never call it while the
        event still has a heap entry.
        """
        event.callback = _discarded_callback
        self._free.append(event)

    def cancel(self, event: Event) -> None:
        """Retract *event* (lazy deletion).

        Cancelling an event that already fired, or one that was already
        cancelled, is a documented no-op.  This matters when a retraction
        races a completion at the same timestamp: whichever fires first
        wins, and the loser's ``cancel`` must not corrupt the live-event
        count.  Callers (resource teardown, fault injection) can therefore
        hold on to stale event handles without bookkeeping.
        """
        if event._cancelled or event.fired:
            return
        event._cancelled = True
        self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[3]
            if not event._cancelled:
                return entry[0]
            heapq.heappop(heap)
            if event.recyclable:
                self.recycle(event)
        return None

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises:
            SchedulingError: If the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event._cancelled:
                if event.recyclable:
                    self.recycle(event)
                continue
            event.fired = True
            self._live -= 1
            return event
        raise SchedulingError("event queue is empty")

    def pop_due(self, until: float) -> Optional[Event]:
        """Pop the next live event with ``time <= until``, else ``None``.

        The engine's inner loop runs on this: it fuses ``peek_time`` +
        horizon check + ``pop`` into one call (pass ``math.inf`` for an
        unbounded run).  Cancelled entries encountered on the way are
        dropped and their recyclable events free-listed.
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            entry = heap[0]
            event = entry[3]
            if event._cancelled:
                heappop(heap)
                if event.recyclable:
                    self.recycle(event)
                continue
            if entry[0] > until:
                return None
            heappop(heap)
            event.fired = True
            self._live -= 1
            return event
        return None

    def clear(self) -> None:
        """Discard every pending event."""
        self._heap.clear()
        self._live = 0


class CalendarQueue:
    """A calendar future-event list for dense event horizons.

    Events land in buckets keyed by ``floor(time / bucket_width)``; each
    bucket is itself a small heap of the same ``(time, priority, seq,
    event)`` entries as :class:`EventQueue`, and a lazily deduplicated
    heap of bucket keys finds the active bucket.  Because every event in
    bucket *k* fires before every event in bucket *k + 1*, popping the
    minimum of the minimal non-empty bucket yields exactly the global
    ``(time, priority, seq)`` order — the golden suite holds this
    implementation to byte-identical replays of heap-kernel recordings.

    Compared to one big heap, sift depth is bounded by the (small) bucket
    population instead of the total event count, which wins when many
    events share a narrow time window (open-system arrival storms).
    Select it with ``Simulator(queue="calendar")``.
    """

    __slots__ = ("_width", "_buckets", "_keys", "_seq", "_live", "_free")

    def __init__(self, bucket_width: float = 1.0) -> None:
        if not bucket_width > 0:
            raise SchedulingError(
                f"bucket_width must be > 0, got {bucket_width!r}"
            )
        self._width = bucket_width
        self._buckets: Dict[int, List[_Entry]] = {}
        self._keys: List[int] = []
        self._seq = 0
        self._live = 0
        self._free: List[Event] = []

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def _insert(self, entry: _Entry) -> None:
        key = int(entry[0] / self._width)
        bucket = self._buckets.get(key)
        if bucket is None:
            # The key enters the key-heap exactly when its bucket is
            # created and leaves when the bucket is deleted, so the
            # key-heap never holds duplicates.
            self._buckets[key] = [entry]
            heapq.heappush(self._keys, key)
        else:
            heapq.heappush(bucket, entry)

    def push(self, event: Event) -> Event:
        """Insert *event* and stamp its FIFO sequence number."""
        seq = self._seq
        self._seq = seq + 1
        event.seq = seq
        self._insert((event.time, event.priority, seq, event))
        self._live += 1
        return event

    def rent(
        self, time: float, callback: Callable[[], None], label: Optional[str]
    ) -> Event:
        """Insert a recyclable event (see :meth:`EventQueue.rent`)."""
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.callback = callback
            event.label = label
            event.fired = False
            event._cancelled = False
        else:
            event = Event(time, callback, label=label)
            event.recyclable = True
        seq = self._seq
        self._seq = seq + 1
        event.seq = seq
        self._insert((time, DEFAULT_PRIORITY, seq, event))
        self._live += 1
        return event

    def recycle(self, event: Event) -> None:
        """Return a recyclable event to the free-list (engine-internal)."""
        event.callback = _discarded_callback
        self._free.append(event)

    def cancel(self, event: Event) -> None:
        """Retract *event* (lazy deletion; same contract as EventQueue)."""
        if event._cancelled or event.fired:
            return
        event._cancelled = True
        self._live -= 1

    def _active_bucket(self) -> Optional[List[_Entry]]:
        """The bucket holding the globally next live entry (pruned)."""
        keys = self._keys
        buckets = self._buckets
        while keys:
            bucket = buckets[keys[0]]
            while bucket:
                event = bucket[0][3]
                if not event._cancelled:
                    return bucket
                heapq.heappop(bucket)
                if event.recyclable:
                    self.recycle(event)
            del buckets[keys[0]]
            heapq.heappop(keys)
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or ``None`` if empty."""
        bucket = self._active_bucket()
        if bucket is None:
            return None
        return bucket[0][0]

    def pop(self) -> Event:
        """Remove and return the next live event (raises when empty)."""
        event = self.pop_due(_INFINITY)
        if event is None:
            raise SchedulingError("event queue is empty")
        return event

    def pop_due(self, until: float) -> Optional[Event]:
        """Pop the next live event with ``time <= until``, else ``None``."""
        bucket = self._active_bucket()
        if bucket is None:
            return None
        entry = bucket[0]
        if entry[0] > until:
            return None
        heapq.heappop(bucket)
        event = entry[3]
        event.fired = True
        self._live -= 1
        return event

    def clear(self) -> None:
        """Discard every pending event."""
        self._buckets.clear()
        self._keys.clear()
        self._live = 0


#: The event-queue implementations selectable on the engine.
EVENT_QUEUE_KINDS: Tuple[str, ...] = ("heap", "calendar")

#: Either future-event-list implementation (they share one contract).
FutureEventList = Union["EventQueue", "CalendarQueue"]


def make_event_queue(kind: str) -> FutureEventList:
    """Build the future-event list selected by *kind* ("heap"/"calendar")."""
    if kind == "heap":
        return EventQueue()
    if kind == "calendar":
        return CalendarQueue()
    raise SchedulingError(
        f"unknown event queue kind {kind!r}; expected one of {EVENT_QUEUE_KINDS}"
    )


class _SupportsLessThan(Protocol):
    def __lt__(self, other: Any) -> bool: ...  # pragma: no cover - protocol


_Item = TypeVar("_Item", bound=_SupportsLessThan)


class MinHeap:
    """A slim kernel-internal min-heap over totally ordered entries.

    Resource implementations (e.g. the PS server's virtual-finish order)
    use this instead of touching :mod:`heapq` themselves, keeping every
    heap invariant in this module (enforced by reprolint RL012).
    Entries must be tuples whose comparable prefix is unique, exactly
    like the future-event list's.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: List[Any] = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def push(self, item: _SupportsLessThan) -> None:
        heapq.heappush(self._items, item)

    def pop(self) -> Any:
        """Remove and return the smallest entry (raises IndexError if empty)."""
        return heapq.heappop(self._items)

    def peek(self) -> Any:
        """The smallest entry without removing it (raises IndexError if empty)."""
        return self._items[0]

    def clear(self) -> None:
        self._items.clear()


def validate_delay(now: float, delay: float, what: str = "delay") -> float:
    """Validate a non-negative, finite scheduling delay and return it.

    Args:
        now: Current simulated time (used only for the error message).
        delay: Proposed delay relative to *now*.
        what: Name of the quantity for error messages.

    Raises:
        SchedulingError: If *delay* is negative, NaN, or infinite.
    """
    if delay != delay or delay in (float("inf"), float("-inf")):
        raise SchedulingError(f"{what} must be finite, got {delay!r} at t={now}")
    if delay < 0:
        raise SchedulingError(f"{what} must be >= 0, got {delay!r} at t={now}")
    return delay


__all__ = [
    "DEFAULT_PRIORITY",
    "EVENT_QUEUE_KINDS",
    "CalendarQueue",
    "Event",
    "EventQueue",
    "FutureEventList",
    "MinHeap",
    "make_event_queue",
    "validate_delay",
]
