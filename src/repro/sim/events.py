"""Event objects and the future-event list for the simulation kernel.

The kernel is event-driven at its core: every state change happens inside an
:class:`Event` that fires at a simulated time.  Process-oriented modelling
(:mod:`repro.sim.process`) is layered on top by turning each generator resume
into an event.

The future-event list is a binary heap ordered by ``(time, priority, seq)``.
The monotonically increasing sequence number guarantees deterministic FIFO
ordering among events scheduled for the same instant, which in turn makes
whole simulation runs exactly reproducible for a given random seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.sim.errors import SchedulingError

#: Default event priority.  Lower values fire earlier among simultaneous
#: events.  Model code rarely needs to change this; the kernel uses elevated
#: priorities internally for bookkeeping events that must precede model logic.
DEFAULT_PRIORITY = 0


class Event:
    """A callback scheduled to run at a simulated time.

    Events are created through :meth:`repro.sim.engine.Simulator.schedule`
    rather than directly.  An event may be *cancelled*, which is the only
    safe way to retract it: cancelled events stay in the heap but are
    silently discarded when popped (lazy deletion).

    Attributes:
        time: Simulated time at which the event fires.
        priority: Tie-break among simultaneous events (lower fires first).
        seq: Monotone sequence number assigned by the event queue;
            final FIFO tie-break.
        callback: Zero-argument callable invoked when the event fires.
        label: Optional human-readable tag used in traces and error messages.
        fired: Whether the event has already been popped by the engine.
            A fired event can no longer be cancelled (cancelling it is a
            no-op, see :meth:`EventQueue.cancel`).
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "fired", "_cancelled")

    def __init__(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: Optional[str] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = -1  # assigned on push
        self.callback = callback
        self.label = label
        self.fired = False
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """Whether the event has been retracted and will not fire."""
        return self._cancelled

    def cancel(self) -> None:
        """Retract the event.

        Cancelling an event that has already fired or was already cancelled
        is a no-op; this keeps resource code simple (it may hold on to stale
        completion events).
        """
        self._cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.label!r}" if self.label else ""
        state = " cancelled" if self._cancelled else ""
        return f"<Event t={self.time:.6g} p={self.priority}{tag}{state}>"


class EventQueue:
    """Future-event list: a binary heap of :class:`Event` with lazy deletion.

    The queue never raises on cancelled events; they are skipped during
    :meth:`pop`.  ``len(queue)`` counts live (non-cancelled) events.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert *event* and stamp its FIFO sequence number."""
        event.seq = next(self._counter)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Retract *event* (lazy deletion).

        Cancelling an event that already fired, or one that was already
        cancelled, is a documented no-op.  This matters when a retraction
        races a completion at the same timestamp: whichever fires first
        wins, and the loser's ``cancel`` must not corrupt the live-event
        count.  Callers (resource teardown, fault injection) can therefore
        hold on to stale event handles without bookkeeping.
        """
        if event._cancelled or event.fired:
            return
        event.cancel()
        self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises:
            SchedulingError: If the queue holds no live events.
        """
        self._drop_cancelled()
        if not self._heap:
            raise SchedulingError("event queue is empty")
        event = heapq.heappop(self._heap)
        event.fired = True
        self._live -= 1
        return event

    def clear(self) -> None:
        """Discard every pending event."""
        self._heap.clear()
        self._live = 0

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0]._cancelled:
            heapq.heappop(heap)


def validate_delay(now: float, delay: float, what: str = "delay") -> float:
    """Validate a non-negative, finite scheduling delay and return it.

    Args:
        now: Current simulated time (used only for the error message).
        delay: Proposed delay relative to *now*.
        what: Name of the quantity for error messages.

    Raises:
        SchedulingError: If *delay* is negative, NaN, or infinite.
    """
    if delay != delay or delay in (float("inf"), float("-inf")):
        raise SchedulingError(f"{what} must be finite, got {delay!r} at t={now}")
    if delay < 0:
        raise SchedulingError(f"{what} must be >= 0, got {delay!r} at t={now}")
    return delay


__all__ = [
    "DEFAULT_PRIORITY",
    "Event",
    "EventQueue",
    "validate_delay",
]
