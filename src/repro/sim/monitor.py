"""Statistics monitors: observation tallies and time-weighted averages.

Two kinds of monitors cover everything the experiments need:

* :class:`Tally` — for *observational* statistics: waiting times, response
  times, normalized waits.  Supports mean, variance, min/max, and optional
  retention of raw observations for batch-means analysis.
* :class:`TimeWeighted` — for *time-persistent* statistics: queue lengths,
  number of busy servers, channel utilization.  Integrates the tracked value
  over simulated time.

Both support :meth:`reset`, which experiments call at the end of the warmup
period so that reported statistics cover only the steady-state window.
"""

from __future__ import annotations

import math
from typing import List

from repro.sim.errors import MonitorError


class Tally:
    """Running statistics over a stream of observations.

    Uses Welford's algorithm for a numerically stable variance.  When
    ``keep`` is true, raw observations are retained (needed for batch-means
    confidence intervals, see :mod:`repro.sim.stats`).
    """

    __slots__ = (
        "name",
        "keep",
        "observations",
        "_count",
        "_mean",
        "_m2",
        "_min",
        "_max",
        "_total",
    )

    def __init__(self, name: str = "", keep: bool = False) -> None:
        self.name = name
        self.keep = keep
        self.observations: List[float] = []
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def record(self, value: float) -> None:
        """Record one observation."""
        if value != value:  # NaN guard
            raise MonitorError(f"Tally {self.name!r}: NaN observation")
        self._count += 1
        self._total += value
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self.keep:
            self.observations.append(value)

    def reset(self) -> None:
        """Discard everything recorded so far (warmup truncation)."""
        self.observations.clear()
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        """Sample mean; 0.0 when no observations have been recorded."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance; 0.0 with fewer than two observations."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if not self._count:
            raise MonitorError(f"Tally {self.name!r}: min of empty tally")
        return self._min

    @property
    def maximum(self) -> float:
        if not self._count:
            raise MonitorError(f"Tally {self.name!r}: max of empty tally")
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tally {self.name!r} n={self._count} mean={self.mean:.6g}>"


class TimeWeighted:
    """Time-integrated average of a piecewise-constant quantity.

    Call :meth:`set` (or :meth:`add`) whenever the tracked value changes.
    The time-average over the observation window is
    ``integral / elapsed-time``.
    """

    __slots__ = ("sim", "name", "_value", "_area", "_start", "_last", "_max")

    def __init__(self, sim, name: str = "", initial: float = 0.0) -> None:
        self.sim = sim
        self.name = name
        self._value = initial
        self._area = 0.0
        self._start = sim.now
        self._last = sim.now
        self._max = initial

    @property
    def value(self) -> float:
        """Current value of the tracked quantity."""
        return self._value

    def set(self, value: float) -> None:
        """Change the tracked value at the current simulated time."""
        self._advance()
        self._value = value
        if value > self._max:
            self._max = value

    def add(self, delta: float) -> None:
        """Increment the tracked value (e.g. queue length +1/-1).

        Inlined ``set(value + delta)`` — this is the kernel's hottest
        monitor call (every server arrival/departure), and the float
        operations run in exactly :meth:`set`'s order so time-weighted
        integrals stay bit-identical.
        """
        now = self.sim.now
        last = self._last
        if now < last:
            raise MonitorError(
                f"TimeWeighted {self.name!r}: clock moved backwards "
                f"({now} < {last})"
            )
        value = self._value
        self._area += value * (now - last)
        self._last = now
        value = value + delta
        self._value = value
        if value > self._max:
            self._max = value

    def reset(self) -> None:
        """Restart the observation window at the current time.

        The current *value* is preserved; only the accumulated area is
        discarded.  Experiments call this at the end of warmup.
        """
        self._area = 0.0
        self._start = self.sim.now
        self._last = self.sim.now
        self._max = self._value

    def _advance(self) -> None:
        now = self.sim.now
        if now < self._last:
            raise MonitorError(
                f"TimeWeighted {self.name!r}: clock moved backwards "
                f"({now} < {self._last})"
            )
        self._area += self._value * (now - self._last)
        self._last = now

    @property
    def integral(self) -> float:
        """Accumulated value·time integral since the observation start.

        Reading it advances the internal bookkeeping to ``sim.now`` (a
        pure consolidation — the time-average and all later readings are
        unchanged), so samplers can difference successive readings to get
        exact per-interval averages.
        """
        self._advance()
        return self._area

    @property
    def elapsed(self) -> float:
        return self.sim.now - self._start

    @property
    def time_average(self) -> float:
        """Time-average of the value over the observation window."""
        self._advance()
        if self.elapsed <= 0:
            return self._value
        return self._area / self.elapsed

    @property
    def maximum(self) -> float:
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TimeWeighted {self.name!r} value={self._value:.6g} "
            f"avg={self.time_average:.6g}>"
        )


__all__ = ["Tally", "TimeWeighted"]
