"""Process-oriented modelling on top of the event kernel.

A *process* is a Python generator driven by the simulator.  The generator
yields kernel commands and is resumed when the command completes:

* ``yield Hold(delay)`` — sleep for ``delay`` simulated time units.
* ``yield Passivate()`` — suspend until another component calls
  :meth:`Process.reactivate`.  The value passed to ``reactivate`` becomes the
  value of the ``yield`` expression.
* ``yield server.service(demand)`` — request ``demand`` units of service from
  a resource (see :mod:`repro.sim.resources`); the process resumes when the
  service completes.

Sub-behaviours compose with plain ``yield from``, since the driver only ever
sees the flattened stream of commands.

This mirrors the process-interaction worldview of the DISS simulation
methodology used by the paper [Melm84], where model entities are active
processes that alternate between holding, queueing for service, and
passivating.

Hot-path layout (see ``docs/performance.md``): every generator resume is
one kernel event, so :meth:`Process._schedule_resume` is among the
hottest call sites in a run.  It rents a recyclable event from the
future-event list (no per-resume ``Event``/lambda allocation), reuses a
cached bound resume callback with the pending value parked in a slot,
and a precomputed trace label.  The rented event's handle never leaves
the process (``_resume_event`` is cleared before the generator runs),
which is what makes the queue's free-list reuse safe.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Callable, Generator, List, Optional

from repro.sim.errors import ProcessError
from repro.sim.events import Event, validate_delay

_INFINITY = math.inf


class Command:
    """Base class for objects a process may yield to the kernel."""

    __slots__ = ()

    def execute(self, process: "Process") -> None:
        """Arrange for *process* to be resumed when the command completes."""
        raise NotImplementedError


class Hold(Command):
    """Sleep for a fixed simulated duration."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        self.delay = delay

    def execute(self, process: "Process") -> None:
        delay = self.delay
        if not 0.0 <= delay < _INFINITY:
            # NaN fails the chained comparison too; validate_delay raises
            # the precise diagnostic.
            validate_delay(process.sim.now, delay, "hold delay")
        process._schedule_resume(delay, None)


class Passivate(Command):
    """Suspend until :meth:`Process.reactivate` is called by someone else."""

    __slots__ = ()

    def execute(self, process: "Process") -> None:
        process._state = ProcessState.PASSIVE


class WaitFor(Command):
    """Suspend until an externally armed callback fires.

    ``arm`` is called with a single ``resume(value=None)`` function; the
    process stays WAITING until some component invokes it.  This is the
    bridge between processes and callback-style components (e.g. waiting for
    the token ring to deliver a message)::

        yield WaitFor(lambda resume: ring.send(Message(..., deliver=resume)))
    """

    __slots__ = ("arm",)

    def __init__(self, arm: Callable[[Callable[..., None]], None]) -> None:
        self.arm = arm

    def execute(self, process: "Process") -> None:
        def resume(value: Any = None) -> None:
            process.resume_now(value)

        self.arm(resume)


class ProcessState(enum.Enum):
    """Lifecycle states of a :class:`Process`."""

    CREATED = "created"
    SCHEDULED = "scheduled"  # a resume event is pending
    RUNNING = "running"  # currently executing a step
    WAITING = "waiting"  # waiting on a resource or custom command
    PASSIVE = "passive"  # explicitly passivated
    TERMINATED = "terminated"


class Process:
    """A simulated process wrapping a command-yielding generator.

    Create processes with :meth:`repro.sim.engine.Simulator.launch`.

    Attributes:
        sim: The owning simulator.
        name: Optional label used in traces and error messages.
        state: Current :class:`ProcessState`.
    """

    __slots__ = (
        "sim",
        "pid",
        "name",
        "result",
        "_generator",
        "_state",
        "_resume_event",
        "_resume_value",
        "_resume_label",
        "_resume_bound",
        "_on_terminate",
        "_queue",
    )

    _ids = iter(range(1, 1 << 62))

    def __init__(self, sim, generator: Generator[Any, Any, Any], name: Optional[str] = None) -> None:
        self.sim = sim
        self.pid = next(Process._ids)
        self.name = name or f"process-{self.pid}"
        self._generator = generator
        self._state = ProcessState.CREATED
        self._resume_event: Optional[Event] = None
        self._resume_value: Any = None
        self._resume_label = self.name + ":resume"
        self._resume_bound = self._resume
        self._on_terminate: List[Callable[["Process"], None]] = []
        self._queue = sim._queue
        self.result: Any = None

    # ------------------------------------------------------------------
    # Public control surface
    # ------------------------------------------------------------------
    @property
    def state(self) -> ProcessState:
        return self._state

    @property
    def terminated(self) -> bool:
        return self._state is ProcessState.TERMINATED

    def activate(self, delay: float = 0.0) -> None:
        """Schedule the process's first step ``delay`` units from now."""
        if self._state is not ProcessState.CREATED:
            raise ProcessError(f"{self.name}: activate() on a {self._state.value} process")
        if not 0.0 <= delay < _INFINITY:
            validate_delay(self.sim.now, delay, "resume delay")
        self._schedule_resume(delay, None)

    def reactivate(self, value: Any = None, delay: float = 0.0) -> None:
        """Resume a passivated process, delivering *value* to its ``yield``."""
        if self._state is not ProcessState.PASSIVE:
            raise ProcessError(
                f"{self.name}: reactivate() on a {self._state.value} process"
            )
        if not 0.0 <= delay < _INFINITY:
            validate_delay(self.sim.now, delay, "resume delay")
        self._schedule_resume(delay, value)

    def interrupt(self, exception: BaseException) -> None:
        """Throw *exception* into the process at the current instant.

        The process may catch it to implement preemption/migration logic; an
        uncaught exception terminates the process and propagates.
        """
        if self._state in (ProcessState.TERMINATED, ProcessState.RUNNING):
            raise ProcessError(
                f"{self.name}: cannot interrupt a {self._state.value} process"
            )
        if self._resume_event is not None:
            self.sim.cancel(self._resume_event)
        self._state = ProcessState.SCHEDULED
        # Record the throw event so a subsequent interrupt (or resume)
        # supersedes this one instead of double-firing.
        self._resume_event = self.sim.schedule(
            0.0, lambda: self._throw(exception), label=f"{self.name}:interrupt"
        )

    def on_terminate(self, callback: Callable[["Process"], None]) -> None:
        """Register *callback* to run when the process finishes."""
        if self.terminated:
            callback(self)
        else:
            self._on_terminate.append(callback)

    # ------------------------------------------------------------------
    # Kernel-side driving machinery
    # ------------------------------------------------------------------
    def _schedule_resume(self, delay: float, value: Any) -> None:
        # Delay validation happens at the public entry points (activate,
        # reactivate, Hold.execute); kernel-internal resumes are always 0.
        self._state = ProcessState.SCHEDULED
        self._resume_value = value
        self._resume_event = self._queue.rent(
            self.sim.now + delay, self._resume_bound, self._resume_label
        )

    def _resume(self) -> None:
        value = self._resume_value
        self._resume_value = None
        self._step(value)

    def resume_now(self, value: Any = None) -> None:
        """Resume a WAITING process at the current instant (resource use).

        Resources call this when a service completes.  Unlike
        :meth:`reactivate` it expects the WAITING state.
        """
        if self._state is not ProcessState.WAITING:
            raise ProcessError(
                f"{self.name}: resume_now() on a {self._state.value} process"
            )
        self._schedule_resume(0.0, value)

    def _step(self, value: Any) -> None:
        self._resume_event = None
        self._state = ProcessState.RUNNING
        sim = self.sim
        previous = sim.current_process
        sim.current_process = self
        try:
            try:
                command = self._generator.send(value)
            except StopIteration as stop:
                self._finish(stop.value)
                return
        finally:
            sim.current_process = previous
        self._dispatch(command)

    def _throw(self, exception: BaseException) -> None:
        self._resume_event = None
        self._resume_value = None
        self._state = ProcessState.RUNNING
        sim = self.sim
        previous = sim.current_process
        sim.current_process = self
        try:
            try:
                command = self._generator.throw(exception)
            except StopIteration as stop:
                self._finish(stop.value)
                return
        finally:
            sim.current_process = previous
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if not isinstance(command, Command):
            raise ProcessError(
                f"{self.name} yielded {command!r}, which is not a kernel Command"
            )
        # Commands either schedule a resume (Hold), park the process on a
        # resource queue (service requests -> WAITING), or passivate it.
        self._state = ProcessState.WAITING
        command.execute(self)

    def _finish(self, result: Any) -> None:
        self._state = ProcessState.TERMINATED
        self.result = result
        callbacks, self._on_terminate = self._on_terminate, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} {self._state.value}>"


__all__ = ["Command", "Hold", "Passivate", "WaitFor", "Process", "ProcessState"]
