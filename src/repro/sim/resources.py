"""Service-center resources: FCFS servers and a Processor-Sharing server.

The paper's DB-site model (its Figure 2) needs exactly two service
disciplines:

* **FCFS** for disks — "the disks are modeled as FCFS servers".
  :class:`FCFSServer` implements an ``m``-server station with a single FIFO
  queue (``m=1`` gives a plain FCFS server; per-disk queues are built from
  several 1-server instances).
* **Processor Sharing** for the CPU — "the CPU is modeled as a PS server".
  :class:`PSServer` uses virtual-time fair queueing so that every
  arrival/departure costs O(log n) with *no* per-quantum events: a job's
  finish *virtual* time is fixed at arrival, and the virtual clock advances
  at rate ``1/n`` in real time while ``n`` jobs share the server.

Both servers integrate with the process layer: a model process does
``yield server.service(demand)`` and is resumed when its service completes.
Each server keeps standard monitors (utilization, queue length, waiting and
response-time tallies) so experiments can read statistics without
instrumenting model code.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.sim.errors import ResourceError
from repro.sim.events import Event, MinHeap, validate_delay
from repro.sim.monitor import Tally, TimeWeighted
from repro.sim.process import Command, Process

_INFINITY = math.inf


class ServiceRequest(Command):
    """Yielded by a process to request ``demand`` units of service."""

    __slots__ = ("server", "demand")

    def __init__(self, server: "Server", demand: float) -> None:
        self.server = server
        self.demand = demand

    def execute(self, process: Process) -> None:
        self.server._accept(process, self.demand)


class Server:
    """Common statistics plumbing for service centers."""

    def __init__(self, sim, name: str) -> None:
        self.sim = sim
        self.name = name
        #: Time-average number of customers at the station (queue + service).
        self.population = TimeWeighted(sim, name=f"{name}.population")
        #: Time-average number of busy servers (for utilization).
        self.busy = TimeWeighted(sim, name=f"{name}.busy")
        #: Queueing delay from arrival to start of service.
        self.waits = Tally(name=f"{name}.wait")
        #: Total time at the station (queueing + service).
        self.responses = Tally(name=f"{name}.response")
        self.completions = 0
        # Completion events are the hottest schedule() call sites of the
        # model layer: the trace label is precomputed once per station and
        # the events are *rented* from the future-event list's free-list
        # (their handles never escape the station, see EventQueue.rent).
        self._done_label = name + ":done"
        self._equeue = sim._queue

    def service(self, demand: float) -> ServiceRequest:
        """Build the command a process yields to obtain service."""
        if demand < 0 or demand != demand:
            raise ResourceError(f"{self.name}: invalid service demand {demand!r}")
        return ServiceRequest(self, demand)

    def _accept(self, process: Process, demand: float) -> None:
        raise NotImplementedError

    def reset_statistics(self) -> None:
        """Truncate all monitors (warmup end)."""
        self.population.reset()
        self.busy.reset()
        self.waits.reset()
        self.responses.reset()
        self.completions = 0

    def utilization(self, server_count: int = 1) -> float:
        """Fraction of capacity in use over the observation window."""
        return self.busy.time_average / server_count

    @property
    def queue_length_avg(self) -> float:
        """Time-average number of customers at the station."""
        return self.population.time_average

    def abort_all(self) -> int:
        """Flush every queued and in-service customer (fault injection).

        Pending completion events are cancelled and the station's monitors
        are corrected so that time-weighted statistics stay consistent.
        The flushed *processes* are **not** resumed or interrupted — the
        caller (the fault injector) owns process teardown; this method only
        tears down the station's internal bookkeeping.

        Returns:
            The number of customers flushed.
        """
        raise NotImplementedError(f"{self.name}: abort_all() not supported")


class _FCFSJob:
    """Bookkeeping record for one in-service job at a :class:`FCFSServer`."""

    __slots__ = ("process", "arrived", "event")

    def __init__(self, process: Process, arrived: float) -> None:
        self.process = process
        self.arrived = arrived
        self.event: Optional[Event] = None


class FCFSServer(Server):
    """An ``m``-server FCFS station with one shared FIFO queue.

    With ``servers=1`` this is a plain FCFS single server (one disk).  The
    shared-queue multi-server organization is used for the disk-ablation
    study and matches the load-dependent station of the MVA model.
    """

    def __init__(self, sim, name: str = "fcfs", servers: int = 1) -> None:
        if servers < 1:
            raise ResourceError(f"{name}: need at least one server, got {servers}")
        super().__init__(sim, name)
        self.servers = servers
        self._queue: Deque[Tuple[Process, float, float]] = deque()
        self._active: List[_FCFSJob] = []

    @property
    def queue_depth(self) -> int:
        """Number of customers waiting (not yet in service)."""
        return len(self._queue)

    @property
    def busy_servers(self) -> int:
        return len(self._active)

    def _accept(self, process: Process, demand: float) -> None:
        now = self.sim.now
        self.population.add(1)
        if len(self._active) < self.servers:
            self._begin(process, demand, arrived=now)
        else:
            self._queue.append((process, demand, now))

    def _begin(self, process: Process, demand: float, arrived: float) -> None:
        now = self.sim.now
        self.busy.add(1)
        self.waits.record(now - arrived)
        job = _FCFSJob(process, arrived)
        if not 0.0 <= demand < _INFINITY:
            validate_delay(now, demand)
        job.event = self._equeue.rent(
            now + demand, lambda: self._complete(job), self._done_label
        )
        self._active.append(job)

    def _complete(self, job: _FCFSJob) -> None:
        job.event = None  # the rented event is returning to the free-list
        now = self.sim.now
        self._active.remove(job)
        self.busy.add(-1)
        self.population.add(-1)
        self.responses.record(now - job.arrived)
        self.completions += 1
        if self._queue:
            next_process, next_demand, next_arrived = self._queue.popleft()
            self._begin(next_process, next_demand, arrived=next_arrived)
        job.process.resume_now()

    def abort_all(self) -> int:
        flushed = len(self._active) + len(self._queue)
        for job in self._active:
            if job.event is not None:
                self.sim.cancel(job.event)
        self._active.clear()
        self._queue.clear()
        if flushed:
            self.population.add(-flushed)
        self.busy.set(0)
        return flushed

    def utilization(self, server_count: Optional[int] = None) -> float:
        return super().utilization(server_count or self.servers)


class _PSJob:
    """Bookkeeping record for one job inside a :class:`PSServer`."""

    __slots__ = ("process", "finish_virtual", "arrived", "seq")

    def __init__(self, process: Process, finish_virtual: float, arrived: float, seq: int) -> None:
        self.process = process
        self.finish_virtual = finish_virtual
        self.arrived = arrived
        self.seq = seq


class PSServer(Server):
    """An egalitarian Processor-Sharing server (virtual-time fair queueing).

    While ``n`` jobs are present each receives service at rate ``1/n``.  The
    implementation tracks a *virtual clock* ``V`` that advances at rate
    ``1/n`` in real time; a job with remaining demand ``d`` arriving at
    virtual time ``V`` finishes when the virtual clock reaches ``V + d``.
    Only the earliest virtual finish needs a scheduled event, and the event
    is rebuilt on every arrival/departure.
    """

    def __init__(self, sim, name: str = "cpu") -> None:
        super().__init__(sim, name)
        self._virtual = 0.0
        self._last_update = sim.now
        self._jobs: MinHeap = MinHeap()
        self._seq = itertools.count()
        self._completion_event: Optional[Event] = None
        self._complete_bound = self._complete_front

    @property
    def job_count(self) -> int:
        return len(self._jobs)

    def _advance_virtual(self) -> None:
        now = self.sim.now
        n = len(self._jobs)
        if n:
            self._virtual += (now - self._last_update) / n
        self._last_update = now

    def _accept(self, process: Process, demand: float) -> None:
        now = self.sim.now
        self._advance_virtual()
        job = _PSJob(process, self._virtual + demand, now, next(self._seq))
        self._jobs.push((job.finish_virtual, job.seq, job))
        self.population.add(1)
        if len(self._jobs) == 1:
            self.busy.set(1)
        # PS has no queueing phase: service starts immediately at reduced rate.
        self.waits.record(0.0)
        self._reschedule()

    def _reschedule(self) -> None:
        if self._completion_event is not None:
            self.sim.cancel(self._completion_event)
            self._completion_event = None
        if not self._jobs:
            return
        n = len(self._jobs)
        finish_virtual = self._jobs.peek()[0]
        remaining_virtual = finish_virtual - self._virtual
        if remaining_virtual < 0:  # floating-point drift guard
            remaining_virtual = 0.0
        delay = remaining_virtual * n
        now = self.sim.now
        if not 0.0 <= delay < _INFINITY:
            validate_delay(now, delay)
        self._completion_event = self._equeue.rent(
            now + delay, self._complete_bound, self._done_label
        )

    def _complete_front(self) -> None:
        self._completion_event = None
        self._advance_virtual()
        finish_virtual, _seq, job = self._jobs.pop()
        # Pin the virtual clock to the finish value to stop drift compounding.
        self._virtual = max(self._virtual, finish_virtual)
        now = self.sim.now
        self.population.add(-1)
        if not self._jobs:
            self.busy.set(0)
        self.responses.record(now - job.arrived)
        self.completions += 1
        self._reschedule()
        job.process.resume_now()

    def abort_all(self) -> int:
        flushed = len(self._jobs)
        if self._completion_event is not None:
            self.sim.cancel(self._completion_event)
            self._completion_event = None
        self._advance_virtual()
        self._jobs.clear()
        if flushed:
            self.population.add(-flushed)
        self.busy.set(0)
        return flushed


class DelayStation(Server):
    """An infinite-server (pure delay) station.

    Every customer is served immediately for exactly its demand; there is
    never any queueing.  Used for terminal think times in validation models
    (the DB model's terminals use :class:`~repro.sim.process.Hold` directly,
    but the queueing-theory cross-checks need a delay *station*).
    """

    def __init__(self, sim, name: str = "delay") -> None:
        super().__init__(sim, name)

    def _accept(self, process: Process, demand: float) -> None:
        now = self.sim.now
        self.population.add(1)
        self.busy.add(1)
        self.waits.record(0.0)
        if not 0.0 <= demand < _INFINITY:
            validate_delay(now, demand)
        self._equeue.rent(
            now + demand, lambda: self._complete(process, now), self._done_label
        )

    def _complete(self, process: Process, arrived: float) -> None:
        self.population.add(-1)
        self.busy.add(-1)
        self.responses.record(self.sim.now - arrived)
        self.completions += 1
        process.resume_now()


__all__ = [
    "ServiceRequest",
    "Server",
    "FCFSServer",
    "PSServer",
    "DelayStation",
]
