"""Random-number streams and service-time distributions.

Reproducible stochastic simulation needs *independent, named* random streams:
one stream per stochastic activity (think times, CPU demands, disk times,
routing choices, ...) so that changing how often one activity draws numbers
does not perturb any other activity.  This is the classic
common-random-numbers discipline used for variance reduction when comparing
policies: two runs with the same seed but different allocation policies see
identical workloads.

:class:`RandomStreams` derives each named stream deterministically from a
master seed, so ``RandomStreams(7).stream("think")`` is the same sequence in
every run of every process.

Distributions are small frozen objects that *describe* a distribution; they
are sampled through a stream: ``dist.sample(rng)``.  This keeps workload
specifications (:mod:`repro.model.config`) declarative and serializable.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.sim.errors import SimulationError


def _derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from a master seed and a stream name.

    Uses BLAKE2b rather than ``hash()`` so the derivation is stable across
    interpreter runs and Python versions (``PYTHONHASHSEED`` does not leak
    into simulation results).
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RandomStreams:
    """A family of independent named random streams under one master seed."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use.

        Streams are cached: repeated calls return the same generator object,
        which keeps drawing from where it left off.
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child family whose master seed is derived from *name*.

        Useful for replications: ``streams.spawn(f"rep{i}")`` gives each
        replication its own independent universe of named streams.
        """
        return RandomStreams(_derive_seed(self.master_seed, f"spawn:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.master_seed} streams={sorted(self._streams)}>"


class Distribution:
    """Base class for sampleable distribution descriptions."""

    def sample(self, rng: random.Random) -> float:
        """Draw one variate using the supplied generator."""
        raise NotImplementedError

    @property
    def mean(self) -> float:
        """Expected value of the distribution."""
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(Distribution):
    """Degenerate distribution: always returns ``value``."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise SimulationError(f"Constant value must be >= 0, got {self.value}")

    def sample(self, rng: random.Random) -> float:
        return self.value

    @property
    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution parameterized by its *mean* (not rate)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise SimulationError(
                f"Exponential mean must be > 0, got {self.mean_value}"
            )

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_value)

    @property
    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise SimulationError(
                f"Uniform requires 0 <= low <= high, got [{self.low}, {self.high}]"
            )

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class UniformAround(Distribution):
    """Uniform on ``center ± center*relative_deviation``.

    This is the paper's disk-time specification: "disk service times are
    uniformly distributed on the range disk_time ± disk_time_dev" with the
    deviation given as a percentage of the mean.
    """

    center: float
    relative_deviation: float

    def __post_init__(self) -> None:
        if self.center <= 0:
            raise SimulationError(f"center must be > 0, got {self.center}")
        if not 0 <= self.relative_deviation <= 1:
            raise SimulationError(
                "relative_deviation must be in [0, 1], got "
                f"{self.relative_deviation}"
            )

    def sample(self, rng: random.Random) -> float:
        half_width = self.center * self.relative_deviation
        return rng.uniform(self.center - half_width, self.center + half_width)

    @property
    def mean(self) -> float:
        return self.center


@dataclass(frozen=True)
class Geometric(Distribution):
    """Geometric number of cycles with the given mean, support {1, 2, ...}.

    A discrete stand-in for "exponentially distributed number of reads":
    the paper draws ``num_reads`` from an exponential distribution; a query
    must read at least one page, so we also offer this discrete variant
    (used when ``integer_reads=True`` in the workload config).
    """

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value < 1:
            raise SimulationError(
                f"Geometric mean must be >= 1, got {self.mean_value}"
            )

    def sample(self, rng: random.Random) -> float:
        if self.mean_value == 1:
            return 1.0
        success = 1.0 / self.mean_value
        # Inverse-CDF sampling of the geometric distribution on {1, 2, ...}.
        u = rng.random()
        return float(1 + int(math.log(1.0 - u) / math.log(1.0 - success)))

    @property
    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class Discrete(Distribution):
    """Finite discrete distribution over ``values`` with ``weights``."""

    values: Tuple[float, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.weights) or not self.values:
            raise SimulationError("values and weights must be equal-length, non-empty")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise SimulationError("weights must be non-negative with positive sum")

    def sample(self, rng: random.Random) -> float:
        return rng.choices(self.values, weights=self.weights, k=1)[0]

    @property
    def mean(self) -> float:
        total = sum(self.weights)
        return sum(v * w for v, w in zip(self.values, self.weights)) / total


def bernoulli(rng: random.Random, probability: float) -> bool:
    """Draw a Bernoulli variate: ``True`` with the given probability."""
    if not 0 <= probability <= 1:
        raise SimulationError(f"probability must be in [0,1], got {probability}")
    return rng.random() < probability


def choose_index(rng: random.Random, count: int) -> int:
    """Uniformly choose an index in ``range(count)``."""
    if count <= 0:
        raise SimulationError(f"count must be positive, got {count}")
    return rng.randrange(count)


__all__ = [
    "RandomStreams",
    "Distribution",
    "Constant",
    "Exponential",
    "Uniform",
    "UniformAround",
    "Geometric",
    "Discrete",
    "bernoulli",
    "choose_index",
]
