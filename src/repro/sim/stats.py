"""Output analysis: batch means, confidence intervals, and summaries.

Steady-state simulation output is autocorrelated, so naive per-observation
confidence intervals are too narrow.  The standard remedy — and the one used
here for every simulation experiment — is the *method of batch means*: the
post-warmup observations are grouped into ``k`` contiguous batches, the batch
averages are treated as (approximately) independent samples, and a Student-t
interval is computed over them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from scipy import stats as _scipy_stats

from repro.sim.errors import MonitorError


@dataclass(frozen=True)
class IntervalEstimate:
    """A point estimate with a symmetric confidence interval."""

    mean: float
    half_width: float
    confidence: float
    batches: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (inf when the mean is 0)."""
        if self.mean == 0:
            return math.inf
        return abs(self.half_width / self.mean)

    def __str__(self) -> str:
        pct = int(round(self.confidence * 100))
        return f"{self.mean:.4g} ± {self.half_width:.3g} ({pct}% CI, k={self.batches})"


def batch_means(
    observations: Sequence[float],
    batches: int = 20,
    confidence: float = 0.95,
) -> IntervalEstimate:
    """Batch-means interval estimate for a steady-state mean.

    All accumulation uses :func:`math.fsum` (correctly rounded), so the
    estimate is bit-identical no matter how the caller assembled the
    observation sequence's storage — the same discipline rule RL004
    enforces for replication averaging.

    Args:
        observations: Post-warmup observations, in collection order.
        batches: Number of contiguous batches (k >= 2).  Observations that do
            not fill a whole batch are discarded from the tail.
        confidence: Two-sided confidence level, e.g. 0.95.

    Raises:
        MonitorError: With fewer observations than batches, or bad arguments.
    """
    if batches < 2:
        raise MonitorError(f"need at least 2 batches, got {batches}")
    if not 0 < confidence < 1:
        raise MonitorError(f"confidence must be in (0,1), got {confidence}")
    n = len(observations)
    if n < batches:
        raise MonitorError(
            f"need at least {batches} observations for {batches} batches, got {n}"
        )
    batch_size = n // batches
    means: List[float] = []
    for b in range(batches):
        chunk = observations[b * batch_size : (b + 1) * batch_size]
        means.append(math.fsum(chunk) / batch_size)
    grand = math.fsum(means) / batches
    if batches == 1:
        return IntervalEstimate(grand, math.inf, confidence, batches)
    var = math.fsum((m - grand) ** 2 for m in means) / (batches - 1)
    t = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=batches - 1)
    half = t * math.sqrt(var / batches)
    return IntervalEstimate(grand, half, confidence, batches)


def mean_and_ci(
    samples: Sequence[float], confidence: float = 0.95
) -> IntervalEstimate:
    """Student-t interval over *independent* samples (e.g. replications)."""
    n = len(samples)
    if n == 0:
        raise MonitorError("mean_and_ci of an empty sample")
    mean = math.fsum(samples) / n
    if n == 1:
        return IntervalEstimate(mean, math.inf, confidence, 1)
    var = math.fsum((s - mean) ** 2 for s in samples) / (n - 1)
    t = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    half = t * math.sqrt(var / n)
    return IntervalEstimate(mean, half, confidence, n)


def relative_change(new: float, base: float) -> float:
    """``(base - new) / base`` — the paper's improvement measure ΔX/X.

    Positive when *new* improves on (is smaller than) *base*.  Returns 0.0
    when *base* is 0 to keep tables printable for degenerate corners.
    """
    if base == 0:
        return 0.0
    return (base - new) / base


__all__ = ["IntervalEstimate", "batch_means", "mean_and_ci", "relative_change"]
