"""Structured event tracing: typed-bus adapters for debugging runs.

Both consumers in this module are thin adapters over the telemetry event
bus (:mod:`repro.telemetry.bus`):

* :class:`TraceRecorder` — bounded in-memory buffer of ``(time, text)``
  trace lines with filtering and rendering.  Attach it to an engine with
  :meth:`TraceRecorder.attach` (it subscribes to
  :class:`~repro.telemetry.events.TraceMessage`); the deprecated
  ``Simulator(trace=recorder)`` spelling still works because the engine's
  compat shim renders ``TraceMessage`` events back into calls of the
  recorder.
* :class:`QueryTracer` — per-query life-cycle records built from
  :class:`~repro.telemetry.events.QueryCompleted` events, which carry
  every timestamp the record needs; useful when a policy misbehaves and
  you need to see *which* decisions went wrong.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Iterable, List, Optional, Tuple

from repro.telemetry.bus import EventBus, Subscription
from repro.telemetry.events import QueryCompleted, TelemetryEvent, TraceMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import DistributedDatabase
    from repro.sim.engine import Simulator


class TraceRecorder:
    """Bounded recorder for engine trace lines.

    Args:
        capacity: Maximum retained lines (oldest dropped first).
        filter_substring: When given, only lines containing it are kept.
    """

    def __init__(self, capacity: int = 10_000, filter_substring: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.filter_substring = filter_substring
        self._lines: Deque[Tuple[float, str]] = deque(maxlen=capacity)
        self.dropped = 0
        self.seen = 0
        self._subscription: Optional[Subscription] = None
        self._bus: Optional[EventBus] = None

    # ------------------------------------------------------------------
    # Bus integration
    # ------------------------------------------------------------------
    def attach(self, sim: "Simulator") -> None:
        """Subscribe to the engine's ``TraceMessage`` stream."""
        if self._subscription is not None:
            raise ValueError("TraceRecorder is already attached")
        self._subscription = sim.bus.subscribe(TraceMessage, self._on_trace)
        self._bus = sim.bus

    def detach(self) -> None:
        """Stop recording (idempotent); retained lines stay available."""
        if self._subscription is not None and self._bus is not None:
            self._bus.unsubscribe(self._subscription)
            self._subscription = None
            self._bus = None

    def _on_trace(self, event: TelemetryEvent) -> None:
        assert isinstance(event, TraceMessage)
        self(event.time, event.label)

    def __call__(self, time: float, text: str) -> None:
        """Record one trace line (also the legacy ``trace=`` hook shape)."""
        self.seen += 1
        if self.filter_substring is not None and self.filter_substring not in text:
            return
        if len(self._lines) == self.capacity:
            self.dropped += 1
        self._lines.append((time, text))

    def __len__(self) -> int:
        return len(self._lines)

    @property
    def lines(self) -> List[Tuple[float, str]]:
        return list(self._lines)

    def matching(self, substring: str) -> List[Tuple[float, str]]:
        """Retained lines containing *substring*."""
        return [(t, s) for t, s in self._lines if substring in s]

    def between(self, start: float, end: float) -> List[Tuple[float, str]]:
        """Retained lines with ``start <= time <= end``."""
        return [(t, s) for t, s in self._lines if start <= t <= end]

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable dump (most recent *limit* lines)."""
        lines = self.lines
        if limit is not None:
            lines = lines[-limit:]
        return "\n".join(f"{t:12.4f}  {s}" for t, s in lines)

    def clear(self) -> None:
        self._lines.clear()
        self.dropped = 0
        self.seen = 0


@dataclass(frozen=True)
class QueryRecord:
    """A completed query's life cycle, flattened for inspection."""

    qid: int
    class_name: str
    home_site: int
    execution_site: int
    remote: bool
    created_at: float
    allocated_at: float
    started_at: float
    finished_at: float
    completed_at: float
    service: float
    waiting: float
    migrations: int

    @property
    def transfer_out_delay(self) -> float:
        """Allocation to execution start (0 for local queries)."""
        return self.started_at - self.allocated_at

    @property
    def return_delay(self) -> float:
        """Execution end to results-home (0 for local queries)."""
        return self.completed_at - self.finished_at


class QueryTracer:
    """Collects :class:`QueryRecord` for every completed query.

    A subscriber to the system's
    :class:`~repro.telemetry.events.QueryCompleted` stream::

        tracer = QueryTracer()
        tracer.attach(system)
        system.run(...)
        slowest = tracer.slowest(10)
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._records: Deque[QueryRecord] = deque(maxlen=capacity)
        self._subscription: Optional[Subscription] = None
        self._bus: Optional[EventBus] = None

    def attach(self, system: "DistributedDatabase") -> None:
        """Subscribe to *system*'s completion events."""
        if self._subscription is not None:
            raise ValueError("QueryTracer is already attached")
        bus = system.sim.bus
        self._subscription = bus.subscribe(QueryCompleted, self._on_completed)
        self._bus = bus

    def detach(self) -> None:
        """Stop collecting (idempotent); records stay available."""
        if self._subscription is not None and self._bus is not None:
            self._bus.unsubscribe(self._subscription)
            self._subscription = None
            self._bus = None

    def _on_completed(self, event: TelemetryEvent) -> None:
        assert isinstance(event, QueryCompleted)
        self._records.append(self._record(event))

    @staticmethod
    def _record(event: QueryCompleted) -> QueryRecord:
        return QueryRecord(
            qid=event.qid,
            class_name=event.class_name,
            home_site=event.home_site,
            execution_site=event.execution_site,
            remote=event.remote,
            created_at=event.created_at,
            allocated_at=event.allocated_at,
            started_at=event.started_at,
            finished_at=event.finished_at,
            completed_at=event.time,
            service=event.service_time,
            waiting=event.waiting_time,
            migrations=event.migrations,
        )

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[QueryRecord]:
        return list(self._records)

    def slowest(self, count: int = 10) -> List[QueryRecord]:
        """The *count* queries with the largest waiting time."""
        return sorted(self._records, key=lambda r: r.waiting, reverse=True)[:count]

    def by_site(self, site: int) -> List[QueryRecord]:
        """Queries that executed at *site*."""
        return [r for r in self._records if r.execution_site == site]

    def remote_records(self) -> List[QueryRecord]:
        return [r for r in self._records if r.remote]

    def mean_waiting(self, class_name: Optional[str] = None) -> float:
        records: Iterable[QueryRecord] = self._records
        if class_name is not None:
            records = [r for r in records if r.class_name == class_name]
        records = list(records)
        if not records:
            return 0.0
        return sum(r.waiting for r in records) / len(records)


__all__ = ["TraceRecorder", "QueryRecord", "QueryTracer"]
