"""Structured event tracing for simulation debugging and inspection.

The engine's ``trace`` hook is a bare ``(time, text)`` callable; this module
provides production-quality consumers for it plus a query-level tracer for
the DB model:

* :class:`TraceRecorder` — bounded in-memory ring buffer of trace lines
  with filtering and rendering; attach with ``Simulator(trace=recorder)``.
* :class:`QueryTracer` — per-query life-cycle records (created, allocated,
  transferred, started, finished, returned) built from the query
  timestamps; useful when a policy misbehaves and you need to see *which*
  decisions went wrong.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Tuple

from repro.model.query import Query


class TraceRecorder:
    """Bounded recorder for engine trace lines.

    Args:
        capacity: Maximum retained lines (oldest dropped first).
        filter_substring: When given, only lines containing it are kept.
    """

    def __init__(self, capacity: int = 10_000, filter_substring: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.filter_substring = filter_substring
        self._lines: Deque[Tuple[float, str]] = deque(maxlen=capacity)
        self.dropped = 0
        self.seen = 0

    def __call__(self, time: float, text: str) -> None:
        """The engine-facing hook."""
        self.seen += 1
        if self.filter_substring is not None and self.filter_substring not in text:
            return
        if len(self._lines) == self.capacity:
            self.dropped += 1
        self._lines.append((time, text))

    def __len__(self) -> int:
        return len(self._lines)

    @property
    def lines(self) -> List[Tuple[float, str]]:
        return list(self._lines)

    def matching(self, substring: str) -> List[Tuple[float, str]]:
        """Retained lines containing *substring*."""
        return [(t, s) for t, s in self._lines if substring in s]

    def between(self, start: float, end: float) -> List[Tuple[float, str]]:
        """Retained lines with ``start <= time <= end``."""
        return [(t, s) for t, s in self._lines if start <= t <= end]

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable dump (most recent *limit* lines)."""
        lines = self.lines
        if limit is not None:
            lines = lines[-limit:]
        return "\n".join(f"{t:12.4f}  {s}" for t, s in lines)

    def clear(self) -> None:
        self._lines.clear()
        self.dropped = 0
        self.seen = 0


@dataclass(frozen=True)
class QueryRecord:
    """A completed query's life cycle, flattened for inspection."""

    qid: int
    class_name: str
    home_site: int
    execution_site: int
    remote: bool
    created_at: float
    allocated_at: float
    started_at: float
    finished_at: float
    completed_at: float
    service: float
    waiting: float
    migrations: int

    @property
    def transfer_out_delay(self) -> float:
        """Allocation to execution start (0 for local queries)."""
        return self.started_at - self.allocated_at

    @property
    def return_delay(self) -> float:
        """Execution end to results-home (0 for local queries)."""
        return self.completed_at - self.finished_at


class QueryTracer:
    """Collects :class:`QueryRecord` for every completed query.

    Attach by wrapping the system's metrics recorder::

        tracer = QueryTracer()
        tracer.attach(system)
        system.run(...)
        slowest = tracer.slowest(10)
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._records: Deque[QueryRecord] = deque(maxlen=capacity)

    def attach(self, system) -> None:
        """Interpose on ``system.metrics.record``."""
        original = system.metrics.record

        def recording(query: Query) -> None:
            self._records.append(self._record(query))
            original(query)

        system.metrics.record = recording

    @staticmethod
    def _record(query: Query) -> QueryRecord:
        return QueryRecord(
            qid=query.qid,
            class_name=query.spec.name,
            home_site=query.home_site,
            execution_site=query.execution_site,
            remote=query.remote,
            created_at=query.created_at,
            allocated_at=query.allocated_at,
            started_at=query.started_at,
            finished_at=query.finished_at,
            completed_at=query.completed_at,
            service=query.service_acquired,
            waiting=query.waiting_time,
            migrations=query.migrations,
        )

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[QueryRecord]:
        return list(self._records)

    def slowest(self, count: int = 10) -> List[QueryRecord]:
        """The *count* queries with the largest waiting time."""
        return sorted(self._records, key=lambda r: r.waiting, reverse=True)[:count]

    def by_site(self, site: int) -> List[QueryRecord]:
        """Queries that executed at *site*."""
        return [r for r in self._records if r.execution_site == site]

    def remote_records(self) -> List[QueryRecord]:
        return [r for r in self._records if r.remote]

    def mean_waiting(self, class_name: Optional[str] = None) -> float:
        records: Iterable[QueryRecord] = self._records
        if class_name is not None:
            records = [r for r in records if r.class_name == class_name]
        records = list(records)
        if not records:
            return 0.0
        return sum(r.waiting for r in records) / len(records)


__all__ = ["TraceRecorder", "QueryRecord", "QueryTracer"]
