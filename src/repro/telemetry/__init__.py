"""Typed telemetry for the simulation: events, metrics, timelines.

The package gives every run three machine-readable observation surfaces
(see ``docs/telemetry.md`` for the full narrative):

* a **typed event bus** (:mod:`repro.telemetry.bus`,
  :mod:`repro.telemetry.events`) — frozen dataclass events emitted by
  the kernel and the model, with subscribe-by-type dispatch and a
  guarded-emit idiom that costs nothing when disabled;
* a **metrics registry** (:mod:`repro.telemetry.registry`) — named
  counters/gauges/histograms over the existing monitors;
* a **timeline sampler** (:mod:`repro.telemetry.sampler`) — per-site
  CPU/disk queue lengths, utilizations, and load-information staleness
  on a fixed simulated-time cadence;

* a **tracing layer** (:mod:`repro.telemetry.tracing`) — query-lifecycle
  spans with deterministic IDs plus an allocation decision audit
  (staleness and ex-post regret per ``AllocationPolicy.select``), with
  byte-deterministic Chrome-trace/JSONL exporters;

plus **exporters** (:mod:`repro.telemetry.exporters`) for JSONL event
logs and CSV/JSON timelines, a **session** façade
(:mod:`repro.telemetry.session`) that wires everything to one system,
and a **kernel self-profiler** (:mod:`repro.telemetry.profile`,
``python -m repro.telemetry.profile``) attributing wall time to engine
phases.
"""

from repro.telemetry.bus import EventBus, EventLog, Handler, Subscription
from repro.telemetry.events import (
    EVENT_REGISTRY,
    EVENT_TYPES,
    AllocationDecided,
    LoadBoardUpdated,
    MessageDropped,
    QueryAborted,
    QueryAllocated,
    QueryCompleted,
    QueryCreated,
    QueryLost,
    QueryRetried,
    QueryShed,
    QueryTransferred,
    RunEnded,
    RunStarted,
    ServiceFinished,
    ServiceStarted,
    SiteCrashed,
    SiteRecovered,
    TelemetryEvent,
    TraceMessage,
    WarmupEnded,
    event_from_dict,
    event_to_dict,
)
from repro.telemetry.exporters import (
    events_from_jsonl,
    events_to_jsonl,
    read_events_jsonl,
    read_timeline_csv,
    read_timeline_json,
    timeline_from_csv,
    timeline_from_json,
    timeline_to_csv,
    timeline_to_json,
    write_events_jsonl,
    write_timeline_csv,
    write_timeline_json,
)
from repro.telemetry.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    Metric,
    MetricNamespace,
    MetricsRegistry,
    merge_snapshots,
)
from repro.telemetry.sampler import (
    SAMPLE_PRIORITY,
    TIMELINE_FIELDS,
    TimelineSample,
    TimelineSampler,
    sample_from_dict,
    sample_to_dict,
)
from repro.telemetry.profile import KernelProfiler, PhaseReport
from repro.telemetry.session import TelemetryConfig, TelemetrySession
from repro.telemetry.tracing import (
    TRACE_FORMAT_VERSION,
    DecisionAudit,
    DecisionRecord,
    DecisionSummary,
    Span,
    SpanCollector,
    SpanSummary,
    decision_cost,
    decision_from_dict,
    decision_to_dict,
    decisions_from_jsonl,
    decisions_to_jsonl,
    read_decisions_jsonl,
    read_spans_chrome,
    record_from_event,
    span_from_dict,
    span_id,
    span_to_dict,
    spans_from_chrome_json,
    spans_to_chrome_json,
    write_decisions_jsonl,
    write_spans_chrome,
)

__all__ = [
    # bus
    "EventBus",
    "EventLog",
    "Handler",
    "Subscription",
    # events
    "TelemetryEvent",
    "RunStarted",
    "WarmupEnded",
    "RunEnded",
    "QueryCreated",
    "QueryAllocated",
    "QueryTransferred",
    "ServiceStarted",
    "QueryCompleted",
    "LoadBoardUpdated",
    "TraceMessage",
    "SiteCrashed",
    "SiteRecovered",
    "QueryAborted",
    "QueryRetried",
    "QueryLost",
    "MessageDropped",
    "QueryShed",
    "AllocationDecided",
    "ServiceFinished",
    "EVENT_TYPES",
    "EVENT_REGISTRY",
    "event_to_dict",
    "event_from_dict",
    # registry
    "Metric",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "MetricNamespace",
    "merge_snapshots",
    # sampler
    "SAMPLE_PRIORITY",
    "TIMELINE_FIELDS",
    "TimelineSample",
    "TimelineSampler",
    "sample_to_dict",
    "sample_from_dict",
    # exporters
    "events_to_jsonl",
    "events_from_jsonl",
    "write_events_jsonl",
    "read_events_jsonl",
    "timeline_to_csv",
    "timeline_from_csv",
    "write_timeline_csv",
    "read_timeline_csv",
    "timeline_to_json",
    "timeline_from_json",
    "write_timeline_json",
    "read_timeline_json",
    # session
    "TelemetryConfig",
    "TelemetrySession",
    # tracing
    "TRACE_FORMAT_VERSION",
    "Span",
    "SpanCollector",
    "SpanSummary",
    "span_id",
    "DecisionAudit",
    "DecisionRecord",
    "DecisionSummary",
    "decision_cost",
    "record_from_event",
    "span_to_dict",
    "span_from_dict",
    "spans_to_chrome_json",
    "spans_from_chrome_json",
    "write_spans_chrome",
    "read_spans_chrome",
    "decision_to_dict",
    "decision_from_dict",
    "decisions_to_jsonl",
    "decisions_from_jsonl",
    "write_decisions_jsonl",
    "read_decisions_jsonl",
    # profiler
    "KernelProfiler",
    "PhaseReport",
]
