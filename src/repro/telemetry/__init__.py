"""Typed telemetry for the simulation: events, metrics, timelines.

The package gives every run three machine-readable observation surfaces
(see ``docs/telemetry.md`` for the full narrative):

* a **typed event bus** (:mod:`repro.telemetry.bus`,
  :mod:`repro.telemetry.events`) — frozen dataclass events emitted by
  the kernel and the model, with subscribe-by-type dispatch and a
  guarded-emit idiom that costs nothing when disabled;
* a **metrics registry** (:mod:`repro.telemetry.registry`) — named
  counters/gauges/histograms over the existing monitors;
* a **timeline sampler** (:mod:`repro.telemetry.sampler`) — per-site
  CPU/disk queue lengths, utilizations, and load-information staleness
  on a fixed simulated-time cadence;

plus **exporters** (:mod:`repro.telemetry.exporters`) for JSONL event
logs and CSV/JSON timelines, and a **session** façade
(:mod:`repro.telemetry.session`) that wires everything to one system.
"""

from repro.telemetry.bus import EventBus, EventLog, Handler, Subscription
from repro.telemetry.events import (
    EVENT_REGISTRY,
    EVENT_TYPES,
    LoadBoardUpdated,
    MessageDropped,
    QueryAborted,
    QueryAllocated,
    QueryCompleted,
    QueryCreated,
    QueryLost,
    QueryRetried,
    QueryTransferred,
    RunEnded,
    RunStarted,
    ServiceStarted,
    SiteCrashed,
    SiteRecovered,
    TelemetryEvent,
    TraceMessage,
    WarmupEnded,
    event_from_dict,
    event_to_dict,
)
from repro.telemetry.exporters import (
    events_from_jsonl,
    events_to_jsonl,
    read_events_jsonl,
    read_timeline_csv,
    read_timeline_json,
    timeline_from_csv,
    timeline_from_json,
    timeline_to_csv,
    timeline_to_json,
    write_events_jsonl,
    write_timeline_csv,
    write_timeline_json,
)
from repro.telemetry.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    Metric,
    MetricNamespace,
    MetricsRegistry,
    merge_snapshots,
)
from repro.telemetry.sampler import (
    SAMPLE_PRIORITY,
    TIMELINE_FIELDS,
    TimelineSample,
    TimelineSampler,
    sample_from_dict,
    sample_to_dict,
)
from repro.telemetry.session import TelemetryConfig, TelemetrySession

__all__ = [
    # bus
    "EventBus",
    "EventLog",
    "Handler",
    "Subscription",
    # events
    "TelemetryEvent",
    "RunStarted",
    "WarmupEnded",
    "RunEnded",
    "QueryCreated",
    "QueryAllocated",
    "QueryTransferred",
    "ServiceStarted",
    "QueryCompleted",
    "LoadBoardUpdated",
    "TraceMessage",
    "SiteCrashed",
    "SiteRecovered",
    "QueryAborted",
    "QueryRetried",
    "QueryLost",
    "MessageDropped",
    "EVENT_TYPES",
    "EVENT_REGISTRY",
    "event_to_dict",
    "event_from_dict",
    # registry
    "Metric",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "MetricNamespace",
    "merge_snapshots",
    # sampler
    "SAMPLE_PRIORITY",
    "TIMELINE_FIELDS",
    "TimelineSample",
    "TimelineSampler",
    "sample_to_dict",
    "sample_from_dict",
    # exporters
    "events_to_jsonl",
    "events_from_jsonl",
    "write_events_jsonl",
    "read_events_jsonl",
    "timeline_to_csv",
    "timeline_from_csv",
    "write_timeline_csv",
    "read_timeline_csv",
    "timeline_to_json",
    "timeline_from_json",
    "write_timeline_json",
    "read_timeline_json",
    # session
    "TelemetryConfig",
    "TelemetrySession",
]
