"""The typed event bus: subscribe-by-type dispatch with zero-cost disable.

The :class:`EventBus` is owned by the simulation engine
(``Simulator.bus``) and shared by every model component of a run.
Emitters follow the *guarded emit* idiom::

    bus = sim.bus
    if bus.wants(QueryAllocated):
        bus.emit(QueryAllocated(time=sim.now, ...))

so that when nothing is subscribed the per-emission cost is a single
dictionary membership test and **no event object is ever constructed** —
the property the disabled-telemetry benchmark
(``benchmarks/telemetry_overhead.py``) pins below 3%.

Dispatch is by *exact* event type (no ``isinstance`` walk): a subscriber
for ``QueryCompleted`` sees only ``QueryCompleted`` events.  Catch-all
subscribers (:meth:`EventBus.subscribe_all`) receive every emitted event;
they make :meth:`wants` answer ``True`` for all types **except** the
opt-in high-volume :class:`~repro.telemetry.events.TraceMessage` kernel
events, which are only produced for explicit subscribers (see
:meth:`wants_type`).

Determinism: subscribers are invoked in subscription order, synchronously,
on the emitting thread.  The bus never reorders or buffers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.telemetry.events import TelemetryEvent, TraceMessage

#: A subscriber callable.  Handlers for a specific type may annotate the
#: concrete event class; the bus stores them type-erased.
Handler = Callable[[TelemetryEvent], None]


class Subscription:
    """Token returned by :meth:`EventBus.subscribe`; pass to unsubscribe.

    Attributes:
        event_type: The subscribed type, or ``None`` for catch-all.
        handler: The registered callable.
    """

    __slots__ = ("event_type", "handler", "active")

    def __init__(
        self, event_type: Optional[Type[TelemetryEvent]], handler: Handler
    ) -> None:
        self.event_type = event_type
        self.handler = handler
        self.active = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.event_type.__name__ if self.event_type else "*"
        state = "" if self.active else " inactive"
        return f"<Subscription {kind}{state}>"


class EventBus:
    """Synchronous publish/subscribe hub for :class:`TelemetryEvent`.

    Attributes:
        active: ``True`` while at least one subscription exists.  A plain
            attribute (not a property) so hot kernel paths can test it at
            attribute-load cost.
        trace_wanted: ``True`` while an *explicit*
            :class:`~repro.telemetry.events.TraceMessage` subscriber
            exists (``wants_type(TraceMessage)`` as a plain attribute).
            The engine's event loop keys its fast/slow path off this, so
            an un-traced run never tests the subscription tables at all.
        emitted: Total events dispatched so far.
    """

    def __init__(self) -> None:
        self.active: bool = False
        self.trace_wanted: bool = False
        self.emitted: int = 0
        # type -> immutable handler snapshot (rebuilt on (un)subscribe so
        # emit() can iterate without copying).
        self._by_type: Dict[Type[TelemetryEvent], Tuple[Handler, ...]] = {}
        self._all: Tuple[Handler, ...] = ()
        self._subscriptions: List[Subscription] = []

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self, event_type: Type[TelemetryEvent], handler: Handler
    ) -> Subscription:
        """Receive every emitted event of exactly *event_type*.

        Returns:
            A :class:`Subscription` token for :meth:`unsubscribe`.
        """
        if not (isinstance(event_type, type) and issubclass(event_type, TelemetryEvent)):
            raise TypeError(f"not a telemetry event type: {event_type!r}")
        subscription = Subscription(event_type, handler)
        self._subscriptions.append(subscription)
        self._rebuild()
        return subscription

    def subscribe_all(self, handler: Handler) -> Subscription:
        """Receive every emitted event regardless of type."""
        subscription = Subscription(None, handler)
        self._subscriptions.append(subscription)
        self._rebuild()
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Retract a subscription (idempotent)."""
        if subscription.active:
            subscription.active = False
            self._subscriptions = [
                s for s in self._subscriptions if s is not subscription
            ]
            self._rebuild()

    def _rebuild(self) -> None:
        by_type: Dict[Type[TelemetryEvent], List[Handler]] = {}
        catch_all: List[Handler] = []
        for subscription in self._subscriptions:
            if subscription.event_type is None:
                catch_all.append(subscription.handler)
            else:
                by_type.setdefault(subscription.event_type, []).append(
                    subscription.handler
                )
        self._by_type = {kind: tuple(handlers) for kind, handlers in by_type.items()}
        self._all = tuple(catch_all)
        self.active = bool(self._by_type or self._all)
        self.trace_wanted = TraceMessage in self._by_type

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def wants(self, event_type: Type[TelemetryEvent]) -> bool:
        """Whether emitting an event of *event_type* would reach anyone.

        Emitters call this *before* constructing the event so a disabled
        bus costs one membership test and no allocation.
        """
        return event_type in self._by_type or bool(self._all)

    def wants_type(self, event_type: Type[TelemetryEvent]) -> bool:
        """Whether an *explicit* subscriber for *event_type* exists.

        Unlike :meth:`wants`, catch-all subscribers do not count.  The
        kernel uses this for the high-volume
        :class:`~repro.telemetry.events.TraceMessage` stream so that a
        bulk event log does not drown in per-event trace records.
        """
        return event_type in self._by_type

    def emit(self, event: TelemetryEvent) -> None:
        """Dispatch *event* to its exact-type and catch-all subscribers."""
        self.emitted += 1
        for handler in self._by_type.get(type(event), ()):
            handler(event)
        for handler in self._all:
            handler(event)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def subscription_count(self) -> int:
        """Number of live subscriptions."""
        return len(self._subscriptions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EventBus subs={self.subscription_count} "
            f"emitted={self.emitted} active={self.active}>"
        )


class EventLog:
    """A bounded catch-all collector of emitted events.

    Subscribes to every event on a bus and retains them in emission order.
    With a *capacity*, the oldest events are dropped first (the ``dropped``
    counter records how many).

    Typical use (managed automatically by
    :class:`~repro.telemetry.session.TelemetrySession`)::

        log = EventLog()
        log.attach(sim.bus)
        ...run...
        write_events_jsonl(log.events, "events.jsonl")
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._events: List[TelemetryEvent] = []
        self._subscription: Optional[Subscription] = None
        self._bus: Optional[EventBus] = None

    def attach(self, bus: EventBus) -> None:
        """Start collecting from *bus* (at most one bus at a time)."""
        if self._subscription is not None:
            raise ValueError("EventLog is already attached")
        self._subscription = bus.subscribe_all(self._collect)
        self._bus = bus

    def detach(self) -> None:
        """Stop collecting (idempotent); retained events stay available."""
        if self._subscription is not None and self._bus is not None:
            self._bus.unsubscribe(self._subscription)
            self._subscription = None
            self._bus = None

    def _collect(self, event: TelemetryEvent) -> None:
        events = self._events
        events.append(event)
        if self.capacity is not None and len(events) > self.capacity:
            excess = len(events) - self.capacity
            del events[0:excess]
            self.dropped += excess

    @property
    def events(self) -> Tuple[TelemetryEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


__all__ = ["Handler", "Subscription", "EventBus", "EventLog"]
