"""The typed event taxonomy of the telemetry subsystem.

Every observable state change in a simulation run is described by one
frozen dataclass below.  Events are plain data — only floats, ints, strings
and bools — so an event stream is trivially serializable (JSONL), directly
comparable across runs (the determinism regression tests compare streams
byte for byte), and safe to hold after the run: no event references live
model objects.

Taxonomy (see ``docs/telemetry.md`` for the full narrative):

======================  =====================================================
Event                   Emitted when / by
======================  =====================================================
:class:`RunStarted`     ``DistributedDatabase.run`` begins (model/system.py)
:class:`WarmupEnded`    statistics are truncated at the warmup boundary
:class:`RunEnded`       the measurement window closes
:class:`QueryCreated`   a terminal samples a new query (model/workload.py)
:class:`QueryAllocated` the allocation policy picks a site (model/system.py)
:class:`QueryTransferred`  a query/result crosses the subnet (model/system.py)
:class:`ServiceStarted` execution begins at a DB site (model/site.py)
:class:`QueryCompleted` results arrive home & metrics record the query
                        (model/metrics.py — covers every system kind)
:class:`LoadBoardUpdated`  a query is (de)registered on the load board
                        (model/loadboard.py)
:class:`TraceMessage`   a labelled kernel event fires (sim/engine.py).
                        High-volume; only emitted when something subscribes
                        to ``TraceMessage`` specifically.
:class:`SiteCrashed`    the fault injector takes a site down
                        (faults/injector.py)
:class:`SiteRecovered`  a crashed site comes back up (faults/injector.py)
:class:`QueryAborted`   a site crash aborted an in-flight query
                        (model/system.py, degraded path)
:class:`QueryRetried`   an aborted query re-enters allocation after backoff
                        (model/system.py, degraded path)
:class:`QueryLost`      an aborted query exhausted its retry budget
                        (model/system.py, degraded path)
:class:`MessageDropped` the subnet lost a query/result transfer
                        (model/system.py, degraded path)
:class:`QueryShed`      admission control dropped an open-workload
                        arrival (workloads/driver.py)
:class:`AllocationDecided`  the full decision-audit record of one
                        ``AllocationPolicy.select`` (model/system.py).
                        Opt-in; only emitted when something subscribes to
                        ``AllocationDecided`` specifically.
:class:`ServiceFinished`  a query finished its disk/CPU cycles at its
                        execution site (model/site.py).  Opt-in; only
                        emitted for explicit subscribers.
======================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple, Type, Union

#: The primitive value types an event field may carry.
FieldValue = Union[float, int, str, bool]


@dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """Base class of every telemetry event.

    Attributes:
        time: Simulated time at which the event occurred.
    """

    time: float

    @property
    def name(self) -> str:
        """The event's type name (its JSONL ``event`` tag)."""
        return type(self).__name__


@dataclass(frozen=True, slots=True)
class RunStarted(TelemetryEvent):
    """A ``run()`` call began (before warmup)."""

    policy: str
    seed: int
    warmup: float
    duration: float


@dataclass(frozen=True, slots=True)
class WarmupEnded(TelemetryEvent):
    """Warmup finished; statistics were truncated at this instant."""


@dataclass(frozen=True, slots=True)
class RunEnded(TelemetryEvent):
    """The measurement window closed."""

    completions: int


@dataclass(frozen=True, slots=True)
class QueryCreated(TelemetryEvent):
    """A terminal issued a new query."""

    qid: int
    class_name: str
    home_site: int
    estimated_reads: float


@dataclass(frozen=True, slots=True)
class QueryAllocated(TelemetryEvent):
    """The allocation policy committed a query to an execution site."""

    qid: int
    class_name: str
    home_site: int
    execution_site: int


@dataclass(frozen=True, slots=True)
class QueryTransferred(TelemetryEvent):
    """A query descriptor or result set was handed to the subnet.

    Attributes:
        kind: ``"query"`` (home → execution site) or ``"result"``
            (execution site → home).
        transfer_time: Channel time the transfer will occupy.
    """

    qid: int
    source: int
    destination: int
    kind: str
    transfer_time: float


@dataclass(frozen=True, slots=True)
class ServiceStarted(TelemetryEvent):
    """A query began its disk/CPU cycles at its execution site."""

    qid: int
    site: int
    reads: int


@dataclass(frozen=True, slots=True)
class QueryCompleted(TelemetryEvent):
    """A query's results arrived back home (the full life-cycle record).

    Carries every life-cycle timestamp so consumers (e.g.
    :class:`repro.sim.trace.QueryTracer`) need no access to model objects.
    ``time`` is the completion instant.
    """

    qid: int
    class_name: str
    home_site: int
    execution_site: int
    remote: bool
    created_at: float
    allocated_at: float
    started_at: float
    finished_at: float
    service_time: float
    waiting_time: float
    migrations: int


@dataclass(frozen=True, slots=True)
class LoadBoardUpdated(TelemetryEvent):
    """One site's committed-query counts changed on the load board.

    Attributes:
        site: The site whose counts changed.
        io_queries: I/O-bound queries now committed to the site.
        cpu_queries: CPU-bound queries now committed to the site.
        change: ``+1`` for a registration, ``-1`` for a deregistration.
    """

    site: int
    io_queries: int
    cpu_queries: int
    change: int


@dataclass(frozen=True, slots=True)
class TraceMessage(TelemetryEvent):
    """A labelled kernel event fired (the old ``trace`` hook, typed).

    High-volume: one per labelled event on the future-event list.  The
    engine only constructs these when a subscriber asked for
    ``TraceMessage`` specifically (catch-all subscribers do not trigger
    them), so bulk event logging stays affordable.
    """

    label: str


@dataclass(frozen=True, slots=True)
class SiteCrashed(TelemetryEvent):
    """The fault injector took a site down.

    In-flight queries at the site are aborted (each produces a
    :class:`QueryAborted`) and the site disappears from every
    :class:`~repro.model.view.SystemView` until it recovers.
    """

    site: int


@dataclass(frozen=True, slots=True)
class SiteRecovered(TelemetryEvent):
    """A crashed site came back up and rejoined the candidate set."""

    site: int


@dataclass(frozen=True, slots=True)
class QueryAborted(TelemetryEvent):
    """A site crash aborted a query mid-execution (or mid-transfer).

    Attributes:
        qid: The aborted query.
        site: The site that crashed under it.
        attempt: How many allocation attempts the query has made so far
            (1 for the first abort).
    """

    qid: int
    site: int
    attempt: int


@dataclass(frozen=True, slots=True)
class QueryRetried(TelemetryEvent):
    """An aborted query re-entered allocation after exponential backoff.

    Attributes:
        qid: The retrying query.
        attempt: The attempt number about to start (2 for the first retry).
        backoff: The backoff delay that was waited before this retry.
    """

    qid: int
    attempt: int
    backoff: float


@dataclass(frozen=True, slots=True)
class QueryLost(TelemetryEvent):
    """An aborted query exhausted its bounded retry budget and was dropped.

    Attributes:
        qid: The lost query.
        attempts: Total allocation attempts made before giving up.
    """

    qid: int
    attempts: int


@dataclass(frozen=True, slots=True)
class MessageDropped(TelemetryEvent):
    """The subnet lost a query/result transfer (token-ring message loss).

    Attributes:
        source: Sending site.
        destination: Receiving site.
        kind: ``"query"`` or ``"result"`` (mirrors
            :class:`QueryTransferred`).
        qid: The query whose transfer was dropped.
    """

    source: int
    destination: int
    kind: str
    qid: int


@dataclass(frozen=True, slots=True)
class QueryShed(TelemetryEvent):
    """Admission control dropped an open-workload arrival.

    The arrival still consumed its serial number (so derived random
    streams are independent of the admission limit); it just never
    became a query.

    Attributes:
        site: The home site the arrival was offered to.
        serial: The arrival's per-site serial number.
        pending: Admitted queries pending at the site when it was shed
            (i.e. the admission limit it ran into).
    """

    site: int
    serial: int
    pending: int


@dataclass(frozen=True, slots=True)
class AllocationDecided(TelemetryEvent):
    """The full audit record of one ``AllocationPolicy.select`` call.

    Opt-in like :class:`TraceMessage`: the system only constructs these
    when a subscriber asked for ``AllocationDecided`` specifically
    (``bus.wants_type``), so catch-all event logs — and the golden event
    streams pinned from them — never see one.

    Event fields are restricted to primitives, so the per-site load
    vectors are encoded as comma-joined integer strings (``"3,1,0"``);
    :class:`repro.telemetry.tracing.decisions.DecisionRecord` decodes
    them back into tuples.

    Attributes:
        qid: The query being allocated.
        class_name: The query's class.
        home_site: Site whose terminal issued the query.
        chosen_site: The site the policy selected.
        staleness: Age of the load information the policy saw
            (``SystemView.load_info_age()``; 0.0 under the paper's
            oracle load board).
        seen_loads: Per-site query counts *as the policy saw them*
            (masked/stale under faults or the stale-info extension),
            comma-joined.
        true_loads: The live load board's per-site counts at the same
            instant, comma-joined.
        candidates: The candidate sites the view offered, comma-joined.
        est_service: The optimizer's total service estimate for the
            query (CPU plus I/O demand at the mean disk time).
        est_transfer: Figure 6's ``Transfer_Time(q)`` estimate.
        est_return: Figure 6's ``Return_Time(q)`` estimate.
        attempt: Allocation attempt number (0 for the first attempt;
            positive after fault-driven retries).
    """

    qid: int
    class_name: str
    home_site: int
    chosen_site: int
    staleness: float
    seen_loads: str
    true_loads: str
    candidates: str
    est_service: float
    est_transfer: float
    est_return: float
    attempt: int


@dataclass(frozen=True, slots=True)
class ServiceFinished(TelemetryEvent):
    """A query finished its disk/CPU cycles at its execution site.

    The closing bracket of :class:`ServiceStarted` (which has no
    end-of-service counterpart in the original taxonomy).  Opt-in like
    :class:`AllocationDecided`: only constructed for explicit
    subscribers, so existing catch-all event streams are unchanged.

    Attributes:
        qid: The query that finished.
        site: The execution site.
        service_time: Total disk + CPU service the query acquired there
            (cumulative across retries, matching ``service_acquired``).
    """

    qid: int
    site: int
    service_time: float


#: Every event type, in taxonomy order.
EVENT_TYPES: Tuple[Type[TelemetryEvent], ...] = (
    RunStarted,
    WarmupEnded,
    RunEnded,
    QueryCreated,
    QueryAllocated,
    QueryTransferred,
    ServiceStarted,
    QueryCompleted,
    LoadBoardUpdated,
    TraceMessage,
    SiteCrashed,
    SiteRecovered,
    QueryAborted,
    QueryRetried,
    QueryLost,
    MessageDropped,
    QueryShed,
    AllocationDecided,
    ServiceFinished,
)

#: Event name -> event class (for deserialization).
EVENT_REGISTRY: Dict[str, Type[TelemetryEvent]] = {
    cls.__name__: cls for cls in EVENT_TYPES
}


def event_to_dict(event: TelemetryEvent) -> Dict[str, FieldValue]:
    """Flatten *event* into JSON primitives, tagged with its type name."""
    payload: Dict[str, FieldValue] = {"event": event.name}
    for spec in fields(event):
        payload[spec.name] = getattr(event, spec.name)
    return payload


_COERCERS = {"float": float, "int": int, "str": str, "bool": bool}


def event_from_dict(data: Dict[str, FieldValue]) -> TelemetryEvent:
    """Rebuild a typed event from :func:`event_to_dict` output.

    Field values are coerced to the annotated primitive type (JSON does not
    distinguish ``1`` from ``1.0``), so round-trips restore exact types.

    Raises:
        ValueError: On an unknown event tag or missing fields.
    """
    tag = data.get("event")
    if not isinstance(tag, str) or tag not in EVENT_REGISTRY:
        raise ValueError(f"unknown telemetry event tag {tag!r}")
    cls = EVENT_REGISTRY[tag]
    kwargs: Dict[str, FieldValue] = {}
    for spec in fields(cls):
        if spec.name not in data:
            raise ValueError(f"{tag} record is missing field {spec.name!r}")
        coerce = _COERCERS.get(str(spec.type), str)
        kwargs[spec.name] = coerce(data[spec.name])
    return cls(**kwargs)  # type: ignore[arg-type]


__all__ = [
    "FieldValue",
    "TelemetryEvent",
    "RunStarted",
    "WarmupEnded",
    "RunEnded",
    "QueryCreated",
    "QueryAllocated",
    "QueryTransferred",
    "ServiceStarted",
    "QueryCompleted",
    "LoadBoardUpdated",
    "TraceMessage",
    "SiteCrashed",
    "SiteRecovered",
    "QueryAborted",
    "QueryRetried",
    "QueryLost",
    "MessageDropped",
    "QueryShed",
    "AllocationDecided",
    "ServiceFinished",
    "EVENT_TYPES",
    "EVENT_REGISTRY",
    "event_to_dict",
    "event_from_dict",
]
