"""Exporters: canonical JSONL for events, CSV/JSON for timelines.

Two properties drive the formats:

* **Byte-identical determinism.**  JSON is serialized canonically
  (sorted keys, no whitespace), floats are written with :func:`repr`
  (shortest round-trip representation), and newlines are always ``"\\n"``
  — so two runs with the same seed produce byte-identical files, the
  property the determinism regression test pins.
* **Exact round-trips.**  Reading a file back reconstructs the original
  typed objects exactly (types coerced per dataclass annotation, floats
  recovered bit-for-bit from ``repr``), so exported telemetry is a
  faithful archive, not a lossy report.

The helpers come in pure (``*_to_*`` / ``*_from_*`` on strings) and
file-writing (``write_*`` / ``read_*``) flavours; files are written in
text mode with explicit ``newline=""``/``"\\n"`` handling so exports are
platform-independent.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.telemetry.events import TelemetryEvent, event_from_dict, event_to_dict
from repro.telemetry.sampler import (
    TIMELINE_FIELDS,
    CellValue,
    TimelineSample,
    sample_from_dict,
    sample_to_dict,
)

#: Version tag embedded in the JSON timeline envelope.
TIMELINE_FORMAT_VERSION = 1

#: Anything accepted as a filesystem destination.
PathLike = Union[str, Path]


def _canonical(payload: Dict[str, object]) -> str:
    """Canonical JSON: sorted keys, minimal separators, no NaN."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


# ----------------------------------------------------------------------
# Event log (JSONL)
# ----------------------------------------------------------------------
def events_to_jsonl(events: Iterable[TelemetryEvent]) -> str:
    """Serialize *events* as canonical JSON Lines (one event per line).

    Returns the empty string for an empty stream; otherwise every line —
    including the last — is terminated by ``"\\n"``.
    """
    lines = [_canonical(dict(event_to_dict(event))) for event in events]
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def events_from_jsonl(text: str) -> Tuple[TelemetryEvent, ...]:
    """Parse a JSONL event log back into typed events.

    Blank lines are ignored; anything else must be a valid event record.
    """
    events: List[TelemetryEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: invalid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(f"line {lineno}: expected a JSON object")
        events.append(event_from_dict(data))
    return tuple(events)


def write_events_jsonl(
    events: Iterable[TelemetryEvent], path: PathLike
) -> Path:
    """Write *events* to *path* as JSONL; returns the resolved path."""
    destination = Path(path)
    destination.write_text(events_to_jsonl(events), encoding="utf-8", newline="\n")
    return destination


def read_events_jsonl(path: PathLike) -> Tuple[TelemetryEvent, ...]:
    """Read a JSONL event log written by :func:`write_events_jsonl`."""
    return events_from_jsonl(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Timeline (CSV)
# ----------------------------------------------------------------------
def _cell_to_text(value: CellValue) -> str:
    """Render one cell: ints bare, floats via shortest-round-trip repr."""
    if isinstance(value, bool):  # pragma: no cover - no bool fields today
        raise TypeError("timeline cells must be int or float")
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def timeline_to_csv(samples: Iterable[TimelineSample]) -> str:
    """Serialize *samples* as CSV with a fixed header row.

    The column order is :data:`TIMELINE_FIELDS`; floats use ``repr`` so
    :func:`timeline_from_csv` restores them bit-for-bit.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(TIMELINE_FIELDS)
    for sample in samples:
        record = sample_to_dict(sample)
        writer.writerow([_cell_to_text(record[name]) for name in TIMELINE_FIELDS])
    return buffer.getvalue()


def timeline_from_csv(text: str) -> Tuple[TimelineSample, ...]:
    """Parse CSV produced by :func:`timeline_to_csv` back into samples."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("timeline CSV is empty (missing header)") from None
    if tuple(header) != TIMELINE_FIELDS:
        raise ValueError(
            f"unexpected timeline header {header!r}; expected {list(TIMELINE_FIELDS)}"
        )
    samples: List[TimelineSample] = []
    for row in reader:
        if not row:
            continue
        if len(row) != len(TIMELINE_FIELDS):
            raise ValueError(
                f"timeline row has {len(row)} cells, expected {len(TIMELINE_FIELDS)}"
            )
        record: Dict[str, CellValue] = {
            name: float(cell) for name, cell in zip(TIMELINE_FIELDS, row)
        }
        samples.append(sample_from_dict(record))
    return tuple(samples)


def write_timeline_csv(
    samples: Iterable[TimelineSample], path: PathLike
) -> Path:
    """Write *samples* to *path* as CSV; returns the resolved path."""
    destination = Path(path)
    destination.write_text(timeline_to_csv(samples), encoding="utf-8", newline="")
    return destination


def read_timeline_csv(path: PathLike) -> Tuple[TimelineSample, ...]:
    """Read a CSV timeline written by :func:`write_timeline_csv`."""
    return timeline_from_csv(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Timeline (JSON envelope)
# ----------------------------------------------------------------------
def timeline_to_json(samples: Sequence[TimelineSample]) -> str:
    """Serialize *samples* as one canonical JSON document.

    The envelope carries a ``format_version`` and the column order so
    readers can validate compatibility before touching the rows.
    """
    payload: Dict[str, object] = {
        "format_version": TIMELINE_FORMAT_VERSION,
        "fields": list(TIMELINE_FIELDS),
        "samples": [dict(sample_to_dict(sample)) for sample in samples],
    }
    return _canonical(payload) + "\n"


def timeline_from_json(text: str) -> Tuple[TimelineSample, ...]:
    """Parse a JSON timeline produced by :func:`timeline_to_json`."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError("timeline JSON must be an object")
    version = data.get("format_version")
    if version != TIMELINE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported timeline format_version {version!r} "
            f"(expected {TIMELINE_FORMAT_VERSION})"
        )
    rows = data.get("samples")
    if not isinstance(rows, list):
        raise ValueError("timeline JSON is missing its 'samples' list")
    samples: List[TimelineSample] = []
    for row in rows:
        if not isinstance(row, dict):
            raise ValueError("each timeline sample must be a JSON object")
        samples.append(sample_from_dict(row))
    return tuple(samples)


def write_timeline_json(
    samples: Sequence[TimelineSample], path: PathLike
) -> Path:
    """Write *samples* to *path* as JSON; returns the resolved path."""
    destination = Path(path)
    destination.write_text(timeline_to_json(samples), encoding="utf-8", newline="\n")
    return destination


def read_timeline_json(path: PathLike) -> Tuple[TimelineSample, ...]:
    """Read a JSON timeline written by :func:`write_timeline_json`."""
    return timeline_from_json(Path(path).read_text(encoding="utf-8"))


__all__ = [
    "TIMELINE_FORMAT_VERSION",
    "PathLike",
    "events_to_jsonl",
    "events_from_jsonl",
    "write_events_jsonl",
    "read_events_jsonl",
    "timeline_to_csv",
    "timeline_from_csv",
    "write_timeline_csv",
    "read_timeline_csv",
    "timeline_to_json",
    "timeline_from_json",
    "write_timeline_json",
    "read_timeline_json",
]
