"""Kernel self-profiler: wall-time per engine phase, no external deps.

Answers "where does a run's *real* time go?" by instrumenting the three
seams every simulated event crosses — the future-event list, the
allocation policy, and the telemetry bus — and attributing everything
else to event dispatch (the process callbacks themselves):

========== =========================================================
Phase      What it measures
========== =========================================================
queue_ops  Future-event-list operations (push/rent/pop_due/recycle/
           cancel/peek) — the kernel hot path's data structure.
policy     ``AllocationPolicy.select`` calls.
telemetry  ``EventBus.emit`` dispatch (0 when nothing subscribes:
           guarded emits never reach the bus).
dispatch   Everything else under ``run()`` — event callbacks, the
           loop itself (computed as total minus the other phases).
========== =========================================================

The profiler never touches simulated time, random streams, or event
ordering — a profiled run returns byte-identical
:class:`~repro.model.metrics.SystemResults` — but wrapping the seams
costs real time, so profiled wall-clock numbers are for *attribution*,
not benchmarking (use ``benchmarks/`` for gates).

Implementation notes: :class:`~repro.sim.engine.Simulator` is slotted,
so the queue is instrumented by swapping ``sim._queue`` for a
delegating proxy (legal: ``_drive`` re-hoists its bound methods on
every ``run()`` call); the policy and bus are instrumented with plain
instance-attribute wrappers.  ``time.perf_counter`` is permitted here —
``repro.telemetry`` is outside the kernel's no-wall-clock lint scope
(RL002), which is exactly why the profiler lives in this package.

CLI::

    python -m repro.telemetry.profile --policy BNQRD --duration 5000
    python -m repro.telemetry.profile --spans --decisions --events
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.system import DistributedDatabase


@dataclass(frozen=True)
class PhaseReport:
    """Wall-time attribution of one profiled window.

    Attributes:
        total: Wall seconds between install and uninstall.
        queue_ops: Seconds inside future-event-list operations.
        policy: Seconds inside ``AllocationPolicy.select``.
        telemetry: Seconds inside ``EventBus.emit``.
        dispatch: The remainder (event callbacks and the loop itself).
        queue_calls: Future-event-list operations counted.
        policy_calls: ``select`` calls counted.
        emit_calls: ``emit`` calls counted.
    """

    total: float
    queue_ops: float
    policy: float
    telemetry: float
    dispatch: float
    queue_calls: int
    policy_calls: int
    emit_calls: int

    def phases(self) -> Tuple[Tuple[str, float], ...]:
        """The four phases as ``(name, seconds)`` pairs, fixed order."""
        return (
            ("queue_ops", self.queue_ops),
            ("policy", self.policy),
            ("telemetry", self.telemetry),
            ("dispatch", self.dispatch),
        )

    def format(self) -> str:
        """A fixed-width human-readable table."""
        lines = [
            f"{'phase':<10} {'seconds':>10} {'share':>7}  calls",
            "-" * 42,
        ]
        calls = {
            "queue_ops": self.queue_calls,
            "policy": self.policy_calls,
            "telemetry": self.emit_calls,
            "dispatch": "-",
        }
        for name, seconds in self.phases():
            share = seconds / self.total if self.total > 0 else 0.0
            lines.append(
                f"{name:<10} {seconds:>10.4f} {share:>6.1%}  {calls[name]}"
            )
        lines.append("-" * 42)
        lines.append(f"{'total':<10} {self.total:>10.4f}")
        return "\n".join(lines)


class _TimedQueue:
    """Delegating future-event-list proxy that accumulates wall time.

    Implements the full :class:`~repro.sim.events.EventQueue` surface by
    forwarding to the wrapped queue, adding one ``perf_counter`` pair
    around each call.
    """

    def __init__(self, inner: object, profiler: "KernelProfiler") -> None:
        self._inner = inner
        self._profiler = profiler

    def _timed(self, method: Callable[..., object]) -> Callable[..., object]:
        profiler = self._profiler
        clock = time.perf_counter

        def call(*args: object) -> object:
            start = clock()
            try:
                return method(*args)
            finally:
                profiler._queue_time += clock() - start
                profiler._queue_calls += 1

        return call

    def __getattr__(self, name: str) -> object:
        attr = getattr(self._inner, name)
        if callable(attr):
            timed = self._timed(attr)
            # Cache so _drive's per-run hoisting binds one wrapper.
            setattr(self, name, timed)
            return timed
        return attr

    def __len__(self) -> int:
        return len(self._inner)  # type: ignore[arg-type]

    def __bool__(self) -> bool:
        return bool(self._inner)


class KernelProfiler:
    """Attribute a system's wall time to kernel phases (context manager).

    Example::

        system = DistributedDatabase(config, policy, seed=7)
        profiler = KernelProfiler(system)
        with profiler:
            system.run(warmup=500, duration=5000)
        print(profiler.report().format())

    The instrumentation is installed on ``__enter__`` and fully removed
    on ``__exit__``; the same profiler can be reused (times accumulate
    across windows until :meth:`reset`).
    """

    def __init__(self, system: "DistributedDatabase") -> None:
        self.system = system
        self._queue_time = 0.0
        self._queue_calls = 0
        self._policy_time = 0.0
        self._policy_calls = 0
        self._emit_time = 0.0
        self._emit_calls = 0
        self._total = 0.0
        self._installed = False
        self._started_at = 0.0
        self._saved_queue: Optional[object] = None

    # ------------------------------------------------------------------
    # Install / uninstall
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Instrument the queue, the policy, and the bus."""
        if self._installed:
            raise ValueError("profiler is already installed")
        self._installed = True
        sim = self.system.sim
        self._saved_queue = sim._queue
        sim._queue = _TimedQueue(sim._queue, self)  # type: ignore[assignment]

        policy = self.system.policy
        inner_select = policy.select
        clock = time.perf_counter

        def timed_select(*args: object, **kwargs: object) -> object:
            start = clock()
            try:
                return inner_select(*args, **kwargs)
            finally:
                self._policy_time += clock() - start
                self._policy_calls += 1

        policy.select = timed_select  # type: ignore[method-assign]

        bus = sim.bus
        inner_emit = bus.emit

        def timed_emit(*args: object) -> None:
            start = clock()
            try:
                inner_emit(*args)  # type: ignore[arg-type]
            finally:
                self._emit_time += clock() - start
                self._emit_calls += 1

        bus.emit = timed_emit  # type: ignore[method-assign]
        self._started_at = clock()

    def uninstall(self) -> None:
        """Remove every wrapper and close the timing window."""
        if not self._installed:
            return
        self._total += time.perf_counter() - self._started_at
        self._installed = False
        sim = self.system.sim
        sim._queue = self._saved_queue  # type: ignore[assignment]
        self._saved_queue = None
        # The wrappers live in the instances' __dict__, shadowing the
        # class methods; deleting them restores the originals.
        del self.system.policy.__dict__["select"]
        del sim.bus.__dict__["emit"]

    def __enter__(self) -> "KernelProfiler":
        self.install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero the accumulated times and counts."""
        if self._installed:
            raise ValueError("cannot reset while installed")
        self._queue_time = self._policy_time = self._emit_time = 0.0
        self._total = 0.0
        self._queue_calls = self._policy_calls = self._emit_calls = 0

    def report(self) -> PhaseReport:
        """The accumulated attribution (after ``__exit__``)."""
        if self._installed:
            raise ValueError("cannot report while installed")
        attributed = self._queue_time + self._policy_time + self._emit_time
        return PhaseReport(
            total=self._total,
            queue_ops=self._queue_time,
            policy=self._policy_time,
            telemetry=self._emit_time,
            dispatch=max(0.0, self._total - attributed),
            queue_calls=self._queue_calls,
            policy_calls=self._policy_calls,
            emit_calls=self._emit_calls,
        )


# ----------------------------------------------------------------------
# CLI: python -m repro.telemetry.profile
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    """Profile one paper-scenario run and print the phase table."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.profile",
        description=(
            "Run the paper's system once under the kernel self-profiler "
            "and print wall-time attribution per engine phase."
        ),
    )
    parser.add_argument("--policy", default="BNQRD", help="allocation policy name")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--warmup", type=float, default=500.0)
    parser.add_argument("--duration", type=float, default=5000.0)
    parser.add_argument(
        "--events", action="store_true", help="attach a catch-all event log"
    )
    parser.add_argument(
        "--spans", action="store_true", help="enable query-lifecycle tracing"
    )
    parser.add_argument(
        "--decisions", action="store_true", help="enable the decision audit"
    )
    args = parser.parse_args(argv)

    # Imported here so `import repro.telemetry.profile` stays light and
    # free of model dependencies (the profiler class itself only needs
    # the system passed to it).
    from repro.model.config import paper_defaults
    from repro.model.system import DistributedDatabase
    from repro.policies.registry import make_policy
    from repro.telemetry.session import TelemetryConfig, TelemetrySession

    system = DistributedDatabase(
        paper_defaults(), make_policy(args.policy), seed=args.seed
    )
    profiler = KernelProfiler(system)
    telemetry_on = args.events or args.spans or args.decisions
    if telemetry_on:
        config = TelemetryConfig(
            events=args.events, spans=args.spans, decisions=args.decisions
        )
        with TelemetrySession(system, config), profiler:
            results = system.run(args.warmup, args.duration)
    else:
        with profiler:
            results = system.run(args.warmup, args.duration)

    report = profiler.report()
    print(
        f"policy={args.policy} seed={args.seed} "
        f"warmup={args.warmup:g} duration={args.duration:g} "
        f"events_fired={system.sim.events_fired} "
        f"completions={results.completions}"
    )
    print(report.format())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())


__all__ = ["KernelProfiler", "PhaseReport", "main"]
